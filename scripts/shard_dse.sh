#!/usr/bin/env bash
# Sharded-DSE equivalence check over the checked-in example corpus: runs
# the same sweep unsharded and as three `mamps dse --shard i/3` processes,
# merges the shard files with `mamps dse-merge`, and requires the merged
# report to be byte-for-byte identical to the unsharded one — for both
# the single-application (--binders) sweep and the use-case (--apps)
# sweep. Also exercises the merge's failure modes (missing shard,
# overlapping shards). Used by scripts/smoke.sh and the CI smoke job,
# and runnable locally:
#
#   cargo build --release && scripts/shard_dse.sh
set -euo pipefail
cd "$(dirname "$0")/.."

APP=examples/data/mjpeg_small_app.xml
APP2=examples/data/pipeline_small_app.xml
BIN=${MAMPS_BIN:-target/release/mamps}
N=3

fail() { echo "shard_dse: FAIL: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "$BIN not built (run cargo build --release first)"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== binder sweep: unsharded vs $N-shard merge"
"$BIN" dse "$APP" 4 --binders greedy,spiral > "$tmp/full.txt"
for i in $(seq 0 $((N - 1))); do
  # Independent processes: exactly how the shards would run on a cluster.
  "$BIN" dse "$APP" 4 --binders greedy,spiral \
    --shard "$i/$N" --out "$tmp/binders.$i.jsonl" &
done
wait
"$BIN" dse-merge "$tmp"/binders.*.jsonl > "$tmp/merged.txt"
cmp "$tmp/full.txt" "$tmp/merged.txt" \
  || fail "merged binder sweep differs from the unsharded report"
grep -q "pareto front" "$tmp/merged.txt" \
  || fail "merged report lost the recomputed pareto front"

echo "== use-case sweep: unsharded vs $N-shard merge"
"$BIN" dse 3 --apps "$APP,$APP2" --binders greedy,spiral > "$tmp/ucfull.txt"
for i in $(seq 0 $((N - 1))); do
  "$BIN" dse 3 --apps "$APP,$APP2" --binders greedy,spiral \
    --shard "$i/$N" --out "$tmp/apps.$i.jsonl" &
done
wait
"$BIN" dse-merge "$tmp"/apps.*.jsonl > "$tmp/ucmerged.txt"
cmp "$tmp/ucfull.txt" "$tmp/ucmerged.txt" \
  || fail "merged use-case sweep differs from the unsharded report"

echo "== merge failure modes"
if "$BIN" dse-merge "$tmp/binders.0.jsonl" "$tmp/binders.1.jsonl" >/dev/null 2>"$tmp/err"; then
  fail "merge accepted an incomplete shard set"
fi
grep -q "missing shard" "$tmp/err" || fail "missing-shard error not reported: $(cat "$tmp/err")"
if "$BIN" dse-merge "$tmp"/binders.*.jsonl "$tmp/binders.1.jsonl" >/dev/null 2>"$tmp/err"; then
  fail "merge accepted overlapping shards"
fi
grep -q "overlapping" "$tmp/err" || fail "overlap error not reported: $(cat "$tmp/err")"
if "$BIN" dse-merge "$tmp/binders.0.jsonl" "$tmp/apps.0.jsonl" >/dev/null 2>&1; then
  fail "merge accepted shards of different sweeps"
fi

echo "shard_dse: OK"
