#!/usr/bin/env bash
# End-to-end smoke test of the release `mamps` binary against the
# checked-in interchange pair under examples/data/. Used by the CI smoke
# job and runnable locally:
#
#   cargo build --release && scripts/smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

APP=examples/data/mjpeg_small_app.xml
APP2=examples/data/pipeline_small_app.xml
APP3=examples/data/infeasible_app.xml
ARCH=examples/data/fsl_3tile_arch.xml
BIN=${MAMPS_BIN:-target/release/mamps}

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "$BIN not built (run cargo build --release first)"

echo "== mamps analyze"
out=$("$BIN" analyze "$APP")
echo "$out"
grep -q "consistent" <<<"$out" || fail "analyze did not report consistency"
grep -q "iterations/cycle" <<<"$out" || fail "analyze printed no throughput"

echo "== mamps map"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
out=$("$BIN" map "$APP" "$ARCH" "$tmp/mapping.xml")
echo "$out"
# Guaranteed worst-case throughput must be printed and nonzero: the
# mantissa of the scientific-notation figure must contain a nonzero digit.
bound=$(grep -oE '[0-9]+\.[0-9]+e-?[0-9]+' <<<"$out" | head -1)
[ -n "$bound" ] || fail "map printed no throughput bound"
grep -qE '[1-9]' <<<"${bound%%e*}" || fail "guaranteed throughput is zero: $bound"
[ -s "$tmp/mapping.xml" ] || fail "mapping.xml not written"
grep -q "<mapping>" "$tmp/mapping.xml" || fail "mapping.xml malformed"

echo "== mamps simulate"
out=$("$BIN" simulate "$APP" "$ARCH" 50)
echo "$out"
grep -q "HOLDS" <<<"$out" || fail "throughput guarantee violated in simulation"

echo "== mamps dse"
out=$("$BIN" dse "$APP" 4)
echo "$out"
grep -qE '[1-9]' <<<"$out" || fail "dse printed no nonzero figures"

echo "== mamps dse --cache-dir (cold vs warm runs byte-identical)"
"$BIN" dse "$APP" 4 --cache-dir "$tmp/cache" >"$tmp/dse-cold.txt"
[ -s "$tmp/cache/analysis-cache-0-of-1.jsonl" ] || fail "--cache-dir left no cache file"
"$BIN" dse "$APP" 4 --cache-dir "$tmp/cache" >"$tmp/dse-warm.txt"
diff -u "$tmp/dse-cold.txt" "$tmp/dse-warm.txt" \
  || fail "warm-cache dse report differs from the cold run"

echo "== mamps dse --resume (torn partial, byte-identical to cold)"
"$BIN" dse "$APP" 4 --shard 0/2 --out "$tmp/part.jsonl"
head -n -1 "$tmp/part.jsonl" >"$tmp/part-torn.jsonl"
printf '{"Record":{"seq":9' >>"$tmp/part-torn.jsonl" # simulate a crash mid-write
"$BIN" dse "$APP" 4 --resume "$tmp/part-torn.jsonl" >"$tmp/dse-resumed.txt" 2>"$tmp/resume-err.txt"
diff -u "$tmp/dse-cold.txt" "$tmp/dse-resumed.txt" \
  || fail "resumed dse report differs from the cold run"
grep -q "ends mid-record" "$tmp/resume-err.txt" \
  || fail "torn resume file produced no mid-record warning"

echo "== mamps dse --stats"
"$BIN" dse "$APP" 4 --stats >/dev/null 2>"$tmp/stats.txt"
grep -q "analysis cache:" "$tmp/stats.txt" || fail "--stats printed no cache counters"
grep -q "pass wall time" "$tmp/stats.txt" || fail "--stats printed no per-pass timings"

echo "== mamps map --stats (per-pass table)"
"$BIN" map "$APP" "$ARCH" --stats >/dev/null 2>"$tmp/map-stats.txt"
grep -qE 'pass +runs +hits +wall' "$tmp/map-stats.txt" \
  || fail "map --stats printed no per-pass table header"
for pass in bind wire-alloc schedule buffer-size; do
  grep -q "$pass" "$tmp/map-stats.txt" || fail "map --stats lost the $pass pass"
done

echo "== mamps map --binder spiral"
out=$("$BIN" map "$APP" "$ARCH" --binder spiral)
echo "$out"
grep -q "binder: spiral" <<<"$out" || fail "map did not attribute the spiral binder"

echo "== mamps dse --binders greedy,spiral"
out=$("$BIN" dse "$APP" 4 --binders greedy,spiral)
echo "$out"
grep -q "greedy" <<<"$out" || fail "dse strategy sweep lost the greedy points"
grep -q "spiral" <<<"$out" || fail "dse strategy sweep lost the spiral points"
grep -q "pareto front" <<<"$out" || fail "dse printed no pareto summary"

echo "== mamps map-multi (MJPEG + pipeline + infeasible burst)"
out=$("$BIN" map-multi "$APP" "$APP2" "$APP3" "$ARCH" --iters 60)
echo "$out"
grep -q "2 of 3 applications admitted" <<<"$out" \
  || fail "map-multi did not admit exactly the two feasible apps"
grep -q "mjpeg: ADMITTED" <<<"$out" || fail "map-multi lost the MJPEG app"
grep -q "pipeline: ADMITTED" <<<"$out" || fail "map-multi lost the pipeline app"
grep -q "burst: REJECTED" <<<"$out" || fail "map-multi admitted the infeasible app"
grep -q "reason: mapping failed" <<<"$out" || fail "rejection carries no structured reason"
[ "$(grep -c 'guarantee HOLDS' <<<"$out")" = 2 ] \
  || fail "not every admitted per-app guarantee was validated"

echo "== mamps dse --apps (use-case sweep)"
out=$("$BIN" dse 3 --apps "$APP,$APP2" --jobs 2 --binders greedy,spiral)
echo "$out"
grep -q "2/2" <<<"$out" || fail "use-case sweep found no config admitting both apps"
grep -q "pipeline" <<<"$out" || fail "use-case sweep lost the pipeline app"
grep -q "spiral" <<<"$out" || fail "use-case sweep lost the spiral strategy"

echo "== mamps map-multi --gantt (per-application rows)"
out=$("$BIN" map-multi "$APP" "$APP2" "$ARCH" --iters 40 --gantt 72)
grep -q "gantt of interference group" <<<"$out" || fail "map-multi printed no gantt"
grep -qE '\[mjpeg\]' <<<"$out" || fail "gantt rows are not attributed to mjpeg"
grep -qE '\[pipeline\]' <<<"$out" || fail "gantt rows are not attributed to pipeline"

echo "== sharded dse (mamps dse --shard + dse-merge vs unsharded)"
MAMPS_BIN="$BIN" scripts/shard_dse.sh || fail "sharded dse diverged from the unsharded report"

echo "== simulator equivalence (event vs lockstep, byte-for-byte)"
MAMPS_BIN="$BIN" scripts/sim_equiv.sh || fail "simulator engines diverged"

echo "== incremental equivalence (pass cache: remap + delta sweeps, byte-for-byte)"
MAMPS_BIN="$BIN" scripts/incremental_equiv.sh || fail "incremental re-mapping diverged"

echo "== DSE service fault tolerance (dse-serve/dse-work/dse-submit, byte-for-byte)"
MAMPS_BIN="$BIN" scripts/serve_fault.sh --quick || fail "DSE service diverged or lost work"

echo "== mamps gen (golden corpus regenerates byte-identically)"
GOLD=examples/generated
"$BIN" gen --out "$tmp/generated" --seed 50 --count 8 --actors 6
diff -r "$GOLD" "$tmp/generated" \
  || fail "regenerated corpus differs from the checked-in $GOLD (seed 50 drifted)"

echo "== golden corpus (analyze + map + simulate every manifest entry)"
while read -r app_kv arch_kv rest; do
  app="$GOLD/${app_kv#app=}"
  garch="$GOLD/${arch_kv#arch=}"
  out=$("$BIN" analyze "$app") || fail "analyze $app failed"
  grep -q "consistent" <<<"$out" || fail "$app is not consistent"
  "$BIN" map "$app" "$garch" >/dev/null || fail "map $app failed"
  out=$("$BIN" simulate "$app" "$garch" 40) || fail "simulate $app failed"
  grep -q "HOLDS" <<<"$out" || fail "$app: guarantee violated in simulation"
done < "$GOLD/manifest.txt"

echo "smoke: OK"
