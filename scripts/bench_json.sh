#!/usr/bin/env bash
# Runs the state-space kernel benchmark and assembles the perf-trajectory
# snapshot BENCH_state_space.json at the repository root. Used locally to
# refresh the checked-in figures and by the CI smoke job (quick mode) to
# keep the kernel's perf trajectory visible on every run:
#
#   scripts/bench_json.sh            # full measurement, refreshes the file
#   scripts/bench_json.sh --quick    # CI-scale measurement, written to a
#                                    # temp file and printed (not checked in)
#
# The bench harness appends one JSON line per benchmark to the file named
# by MAMPS_BENCH_JSON; this script wraps those lines into a JSON document.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [ "${1:-}" = "--quick" ]; then
  QUICK=1
fi

lines=$(mktemp)
trap 'rm -f "$lines"' EXIT

if [ "$QUICK" = 1 ]; then
  export MAMPS_BENCH_QUICK=1
  out=$(mktemp -t BENCH_state_space.XXXXXX.json)
else
  out=BENCH_state_space.json
fi

MAMPS_BENCH_JSON="$lines" cargo bench -p mamps_bench --bench state_space

[ -s "$lines" ] || { echo "bench_json: no measurements were emitted" >&2; exit 1; }

{
  echo '{'
  echo "  \"bench\": \"state_space\","
  echo "  \"quick\": $([ "$QUICK" = 1 ] && echo true || echo false),"
  echo "  \"generated_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo '  "results": ['
  sed 's/^/    /; $!s/$/,/' "$lines"
  echo '  ]'
  echo '}'
} > "$out"

echo "bench_json: wrote $out"
cat "$out"
