#!/usr/bin/env bash
# Runs one benchmark target and assembles its perf-trajectory snapshot
# BENCH_<name>.json at the repository root. Used locally to refresh the
# checked-in figures and by the CI smoke job (quick mode) to keep perf
# trajectories visible on every run:
#
#   scripts/bench_json.sh                    # state_space, full measurement
#   scripts/bench_json.sh binders            # strategy comparison bench
#   scripts/bench_json.sh --quick [bench]    # CI-scale measurement, written
#                                            # to target/bench-json/ and
#                                            # printed (uploaded as a CI
#                                            # artifact, not checked in)
#
# The bench harness appends one JSON line per benchmark to the file named
# by MAMPS_BENCH_JSON; this script wraps those lines into a JSON document.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
BENCH=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    -*) echo "bench_json: unknown flag $arg" >&2; exit 2 ;;
    *)
      [ -z "$BENCH" ] || { echo "bench_json: multiple bench names" >&2; exit 2; }
      BENCH=$arg
      ;;
  esac
done
BENCH=${BENCH:-state_space}

lines=$(mktemp)
trap 'rm -f "$lines"' EXIT

if [ "$QUICK" = 1 ]; then
  export MAMPS_BENCH_QUICK=1
  mkdir -p target/bench-json
  out="target/bench-json/BENCH_${BENCH}.quick.json"
else
  out="BENCH_${BENCH}.json"
fi

MAMPS_BENCH_JSON="$lines" cargo bench -p mamps_bench --bench "$BENCH"

[ -s "$lines" ] || { echo "bench_json: no measurements were emitted" >&2; exit 1; }

{
  echo '{'
  echo "  \"bench\": \"${BENCH}\","
  echo "  \"quick\": $([ "$QUICK" = 1 ] && echo true || echo false),"
  echo "  \"generated_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo '  "results": ['
  sed 's/^/    /; $!s/$/,/' "$lines"
  echo '  ]'
  echo '}'
} > "$out"

echo "bench_json: wrote $out"
cat "$out"
