#!/usr/bin/env bash
# Incremental-equivalence gate: re-mapping through the on-disk pass cache
# must be byte-for-byte identical to mapping from scratch — warm replays
# of unchanged inputs, and incremental re-runs after a one-WCET edit,
# over the checked-in example corpus. Only stdout is compared: stderr
# carries the cache/pass statistics, which legitimately differ between
# cold and warm runs. Run by CI's "Incremental equivalence" step and by
# smoke.sh:
#
#   cargo build --release && scripts/incremental_equiv.sh
set -euo pipefail
cd "$(dirname "$0")/.."

APP=examples/data/mjpeg_small_app.xml
APP2=examples/data/pipeline_small_app.xml
ARCH=examples/data/fsl_3tile_arch.xml
BIN=${MAMPS_BIN:-target/release/mamps}

fail() { echo "incremental_equiv: FAIL: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "$BIN not built (run cargo build --release first)"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# The one-WCET edit: the pipeline work actor's execution time 700 -> 707.
# The string "700" appears exactly once in the example, and the edit keeps
# the binder's decreasing-work placement order stable, so only the edited
# application's WCET-sensitive passes recompute.
sed 's/"700"/"707"/g' "$APP2" >"$tmp/pipeline_edit.xml"
cmp -s "$APP2" "$tmp/pipeline_edit.xml" && fail "WCET edit changed nothing"

echo "== map cold -> remap warm (byte-identical)"
"$BIN" map "$APP" "$ARCH" --cache-dir "$tmp/cache" >"$tmp/map-cold.txt"
[ -s "$tmp/cache/pass-cache-0-of-1.jsonl" ] \
  || fail "--cache-dir left no pass-cache file"
"$BIN" remap "$APP" "$ARCH" --cache-dir "$tmp/cache" >"$tmp/remap-warm.txt"
diff -u "$tmp/map-cold.txt" "$tmp/remap-warm.txt" \
  || fail "warm remap differs from the cold map (diff above)"

echo "== remap without --cache-dir is a usage error"
if "$BIN" remap "$APP" "$ARCH" 2>"$tmp/remap-err.txt"; then
  fail "remap without --cache-dir did not fail"
fi
grep -q -- "--cache-dir" "$tmp/remap-err.txt" \
  || fail "remap error does not name --cache-dir"

echo "== map-multi incremental after one-WCET edit (byte-identical to cold)"
"$BIN" map-multi "$APP" "$APP2" "$ARCH" --iters 60 \
  --cache-dir "$tmp/mcache" >/dev/null
"$BIN" map-multi "$APP" "$tmp/pipeline_edit.xml" "$ARCH" --iters 60 \
  --cache-dir "$tmp/mcache" >"$tmp/multi-incr.txt"
"$BIN" map-multi "$APP" "$tmp/pipeline_edit.xml" "$ARCH" --iters 60 \
  >"$tmp/multi-cold.txt"
diff -u "$tmp/multi-cold.txt" "$tmp/multi-incr.txt" \
  || fail "incremental map-multi differs from the cold run (diff above)"

echo "== use-case dse delta sweep after one-WCET edit (byte-identical to cold)"
"$BIN" dse 3 --apps "$APP,$APP2" --cache-dir "$tmp/dcache" >/dev/null
"$BIN" dse 3 --apps "$APP,$tmp/pipeline_edit.xml" \
  --cache-dir "$tmp/dcache" >"$tmp/dse-incr.txt"
"$BIN" dse 3 --apps "$APP,$tmp/pipeline_edit.xml" >"$tmp/dse-cold.txt"
diff -u "$tmp/dse-cold.txt" "$tmp/dse-incr.txt" \
  || fail "delta dse sweep differs from the cold run (diff above)"

echo "== simulate with --cache-dir (byte-identical to plain simulate)"
"$BIN" simulate "$APP" "$ARCH" 50 >"$tmp/sim-plain.txt"
"$BIN" simulate "$APP" "$ARCH" 50 --cache-dir "$tmp/scache" >"$tmp/sim-cold.txt"
"$BIN" simulate "$APP" "$ARCH" 50 --cache-dir "$tmp/scache" >"$tmp/sim-warm.txt"
diff -u "$tmp/sim-plain.txt" "$tmp/sim-cold.txt" \
  || fail "cached simulate differs from the plain run (diff above)"
diff -u "$tmp/sim-cold.txt" "$tmp/sim-warm.txt" \
  || fail "warm simulate differs from the cold run (diff above)"

echo "incremental_equiv: OK"
