#!/usr/bin/env bash
# Corpus-scale differential fuzzing of the release `mamps` binary over
# generated scenarios (scripts counterpart of tests/gen_corpus.rs).
#
# For every (seed, family) cell of a deterministic grid, `mamps gen`
# emits one scenario and the harness holds the whole toolchain against
# its cross-cutting oracles:
#
#   * determinism  — a second generating process is byte-identical;
#   * analyze      — every scenario parses back and is consistent;
#   * engines      — `simulate --engine event` == `--engine lockstep`;
#   * caching      — cold dse == warm `--cache-dir` dse, and a cold
#                    `map --cache-dir` == the warm `remap` replay;
#   * sharding     — 2-way sharded dse merged back == unsharded, and a
#                    torn partial shard resumed == cold;
#   * admission    — an application admitted alone stays admitted when a
#                    second application joins the use case.
#
# Scenarios that are infeasible on the swept platform are fine (some
# greedy partitions of multirate graphs are skipped design points); a
# divergence between two runs that should agree is not. Failing
# scenarios are copied to target/gen-fuzz-failures/ for replay.
#
# Usage:
#   cargo build --release && scripts/gen_fuzz.sh [--quick]
#
# --quick sweeps 13 seeds x 4 families (52 scenarios, ~1 min; the CI
# budget). The default sweeps 40 seeds. MAMPS_GEN_FUZZ_SEEDS overrides
# either.
set -uo pipefail
cd "$(dirname "$0")/.."

BIN=${MAMPS_BIN:-target/release/mamps}
SEEDS=40
[ "${1:-}" = "--quick" ] && SEEDS=13
SEEDS=${MAMPS_GEN_FUZZ_SEEDS:-$SEEDS}
FAILDIR=target/gen-fuzz-failures

[ -x "$BIN" ] || { echo "gen_fuzz: $BIN not built (run cargo build --release first)" >&2; exit 1; }

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
rm -rf "$FAILDIR"

scenarios=0
failures=0
mapped=0

# Records a divergence: keep the scenario for replay, keep going so one
# bad cell does not mask others.
diverge() { # <scenario-dir> <tag> <message>
  failures=$((failures + 1))
  mkdir -p "$FAILDIR"
  cp -r "$1" "$FAILDIR/$(basename "$1")" 2>/dev/null
  echo "gen_fuzz: FAIL [$2] $3 (kept $FAILDIR/$(basename "$1"))" >&2
}

prev_app=
prev_arch=
prev_name=

for family in chain split-join tree cyclic; do
  for ((seed = 0; seed < SEEDS; seed++)); do
    scenarios=$((scenarios + 1))
    actors=$((3 + seed % 4))
    if ((seed % 2)); then arch_spec=mesh:2x2; else arch_spec=fsl:3; fi
    dir="$tmp/${family}_s${seed}"
    tag="$family seed $seed"

    "$BIN" gen --seed "$seed" --family "$family" --actors "$actors" \
      --arch "$arch_spec" --count 1 --out "$dir" >/dev/null \
      || { diverge "$dir" "$tag" "gen failed"; continue; }

    # Determinism: an independent process regenerates identical bytes.
    "$BIN" gen --seed "$seed" --family "$family" --actors "$actors" \
      --arch "$arch_spec" --count 1 --out "$dir.again" >/dev/null
    diff -r "$dir" "$dir.again" >/dev/null \
      || { diverge "$dir" "$tag" "regeneration is not byte-identical"; continue; }

    app=$(ls "$dir"/*_s*.xml)
    arch=$(ls "$dir"/arch_*.xml)

    # Consistency (and thereby parser round-trip, which gen verified
    # before writing).
    "$BIN" analyze "$app" >"$dir/analyze.txt" \
      || { diverge "$dir" "$tag" "analyze failed"; continue; }
    grep -q "consistent" "$dir/analyze.txt" \
      || { diverge "$dir" "$tag" "scenario is not consistent"; continue; }

    # DSE caching: cold == cache-dir cold == cache-dir warm.
    "$BIN" dse "$app" 3 >"$dir/dse-cold.txt" \
      || { diverge "$dir" "$tag" "dse failed"; continue; }
    "$BIN" dse "$app" 3 --cache-dir "$dir/cache" >"$dir/dse-c1.txt"
    "$BIN" dse "$app" 3 --cache-dir "$dir/cache" >"$dir/dse-c2.txt"
    if ! diff "$dir/dse-cold.txt" "$dir/dse-c1.txt" >/dev/null ||
       ! diff "$dir/dse-c1.txt" "$dir/dse-c2.txt" >/dev/null; then
      diverge "$dir" "$tag" "cached dse diverges from cold"
      continue
    fi

    # DSE sharding: 2-way shards merged == unsharded; torn resume == cold.
    "$BIN" dse "$app" 3 --shard 0/2 --out "$dir/s0.jsonl" >/dev/null
    "$BIN" dse "$app" 3 --shard 1/2 --out "$dir/s1.jsonl" >/dev/null
    "$BIN" dse-merge "$dir/s0.jsonl" "$dir/s1.jsonl" >"$dir/dse-merged.txt" \
      || { diverge "$dir" "$tag" "dse-merge failed"; continue; }
    diff "$dir/dse-cold.txt" "$dir/dse-merged.txt" >/dev/null \
      || { diverge "$dir" "$tag" "merged sharded dse diverges from cold"; continue; }
    head -n -1 "$dir/s0.jsonl" >"$dir/s0-torn.jsonl"
    "$BIN" dse "$app" 3 --resume "$dir/s0-torn.jsonl" >"$dir/dse-resumed.txt" 2>/dev/null \
      || { diverge "$dir" "$tag" "dse --resume failed"; continue; }
    diff "$dir/dse-cold.txt" "$dir/dse-resumed.txt" >/dev/null \
      || { diverge "$dir" "$tag" "resumed dse diverges from cold"; continue; }

    # Feasible scenarios additionally sweep the simulate/remap oracles.
    if "$BIN" map "$app" "$arch" >/dev/null 2>&1; then
      mapped=$((mapped + 1))

      "$BIN" simulate "$app" "$arch" 40 --engine event >"$dir/sim-event.txt" \
        || { diverge "$dir" "$tag" "event simulation failed"; continue; }
      "$BIN" simulate "$app" "$arch" 40 --engine lockstep >"$dir/sim-lockstep.txt" \
        || { diverge "$dir" "$tag" "lockstep simulation failed"; continue; }
      diff "$dir/sim-event.txt" "$dir/sim-lockstep.txt" >/dev/null \
        || { diverge "$dir" "$tag" "simulator engines diverge"; continue; }
      grep -q "HOLDS" "$dir/sim-event.txt" \
        || { diverge "$dir" "$tag" "guarantee violated in simulation"; continue; }

      "$BIN" map "$app" "$arch" --cache-dir "$dir/mcache" >"$dir/map-cold.txt"
      "$BIN" remap "$app" "$arch" --cache-dir "$dir/mcache" >"$dir/map-warm.txt" \
        || { diverge "$dir" "$tag" "remap failed"; continue; }
      diff "$dir/map-cold.txt" "$dir/map-warm.txt" >/dev/null \
        || { diverge "$dir" "$tag" "remap diverges from the cold map"; continue; }

      # Admission monotonicity against the previous feasible scenario on
      # the same platform: admitted alone => still admitted in front.
      if [ -n "$prev_app" ] && [ "$prev_arch" = "$arch_spec" ]; then
        "$BIN" map-multi "$prev_app" "$arch" --iters 30 >"$dir/adm-alone.txt" 2>/dev/null
        if grep -q "$prev_name: ADMITTED" "$dir/adm-alone.txt"; then
          "$BIN" map-multi "$prev_app" "$app" "$arch" --iters 30 \
            >"$dir/adm-joint.txt" 2>/dev/null
          grep -q "$prev_name: ADMITTED" "$dir/adm-joint.txt" \
            || { diverge "$dir" "$tag" "later app evicted an earlier admission"; continue; }
        fi
      fi
      prev_app=$app
      prev_arch=$arch_spec
      prev_name=$(basename "$app" .xml)
    fi

    rm -rf "$dir" "$dir.again"
  done
done

echo "gen_fuzz: swept $scenarios scenarios ($mapped mapped) with $failures divergence(s)"
if ((failures > 0)); then
  echo "gen_fuzz: failing scenarios kept under $FAILDIR" >&2
  exit 1
fi
if ((mapped * 2 < scenarios)); then
  echo "gen_fuzz: only $mapped/$scenarios scenarios mapped — flow or generator regressed" >&2
  exit 1
fi
echo "gen_fuzz: OK"
