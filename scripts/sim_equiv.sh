#!/usr/bin/env bash
# Simulator-equivalence gate: the discrete-event kernel (--engine event)
# and the lockstep reference oracle (--engine lockstep) must produce
# byte-for-byte identical output — guarantee verdicts, trace text, and
# Gantt charts — over every checked-in example pair, single-app and
# multi-app. Run by CI's "Simulator equivalence" step and by smoke.sh:
#
#   cargo build --release && scripts/sim_equiv.sh
set -euo pipefail
cd "$(dirname "$0")/.."

APP=examples/data/mjpeg_small_app.xml
APP2=examples/data/pipeline_small_app.xml
APP3=examples/data/infeasible_app.xml
ARCH=examples/data/fsl_3tile_arch.xml
BIN=${MAMPS_BIN:-target/release/mamps}

fail() { echo "sim_equiv: FAIL: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "$BIN not built (run cargo build --release first)"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Runs the same command under both engines and byte-diffs the output
# (stdout and stderr combined, so error verdicts are compared too).
check() {
  local label=$1; shift
  echo "== $label"
  "$BIN" "$@" --engine event >"$tmp/event.txt" 2>&1 || true
  "$BIN" "$@" --engine lockstep >"$tmp/lockstep.txt" 2>&1 || true
  diff -u "$tmp/event.txt" "$tmp/lockstep.txt" \
    || fail "$label: engines diverge (diff above)"
  [ -s "$tmp/event.txt" ] || fail "$label: produced no output"
}

check "simulate mjpeg (verdict + trace + gantt)" \
  simulate "$APP" "$ARCH" 50 --trace 40 --gantt 72
check "simulate pipeline (verdict + trace + gantt)" \
  simulate "$APP2" "$ARCH" 50 --trace 40 --gantt 72
check "map-multi 3-app union (verdicts + gantt)" \
  map-multi "$APP" "$APP2" "$APP3" "$ARCH" --iters 60 --gantt 72

# Trace-only runs: a long event log with no Gantt rendering, so every
# individual event's ordering is compared, not just the chart rollup.
check "simulate mjpeg (trace only, long)" \
  simulate "$APP" "$ARCH" 50 --trace 200
check "simulate pipeline (trace only, long)" \
  simulate "$APP2" "$ARCH" 50 --trace 200

echo "sim_equiv: OK"
