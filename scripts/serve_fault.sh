#!/usr/bin/env bash
# Fault-injection harness for the DSE coordinator service (`mamps
# dse-serve` / `dse-work` / `dse-submit`): the scripts counterpart of
# tests/serve_protocol.rs, driving the real binaries over Unix sockets
# and injecting the two faults the service is built to survive.
#
# Three phases, each ending in a byte-diff against a cold single-process
# `mamps dse` run of the same sweep:
#
#   * happy path  — coordinator + 3 workers sweep every corpus app
#                   (examples/data and examples/generated); each merged
#                   report must be byte-identical to `mamps dse`;
#   * worker kill — one worker is `kill -9`ed while it holds a leased
#                   range (MAMPS_DSE_WORK_DELAY_MS widens the window);
#                   the coordinator must revert the lease, a surviving
#                   worker re-evaluates it, and the report is still
#                   byte-identical;
#   * coordinator restart — the coordinator takes SIGTERM mid-sweep,
#                   flushes its spool, and a restarted coordinator seeds
#                   the resubmission from that spool: only the missing
#                   points are re-evaluated and the report is still
#                   byte-identical.
#
# On failure the coordinator logs and partial spool JSONLs are kept
# under target/serve-fault-failures/ for offline replay.
#
# Usage:
#   cargo build --release && scripts/serve_fault.sh [--quick]
#
# --quick sweeps 2 apps instead of 6 in the happy-path phase (the CI
# budget); the fault phases are identical in both modes.
set -uo pipefail
cd "$(dirname "$0")/.."

BIN=${MAMPS_BIN:-target/release/mamps}
FAILDIR=target/serve-fault-failures
QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

[ -x "$BIN" ] || { echo "serve_fault: $BIN not built (run cargo build --release first)" >&2; exit 1; }

tmp=$(mktemp -d)
SOCK="$tmp/serve.sock"
STATE="$tmp/serve-state"
CPID=
WPIDS=()

# Kill whatever service processes are still up, quietly; every phase
# also shuts its own processes down on the success path.
cleanup() {
  [ -n "$CPID" ] && kill -9 "$CPID" 2>/dev/null
  for pid in ${WPIDS[@]+"${WPIDS[@]}"}; do kill -9 "$pid" 2>/dev/null; done
  wait 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

# Keeps the evidence (coordinator logs + partial spools) and exits.
fail() {
  echo "serve_fault: FAIL: $*" >&2
  mkdir -p "$FAILDIR"
  cp "$tmp"/coordinator-*.log "$FAILDIR/" 2>/dev/null
  cp "$STATE"/*.jsonl "$FAILDIR/" 2>/dev/null
  echo "serve_fault: evidence kept under $FAILDIR" >&2
  exit 1
}

start_coordinator() { # <log-tag> [extra args...]
  local tag=$1
  shift
  "$BIN" dse-serve --socket "$SOCK" --state-dir "$STATE" --chunk 1 "$@" \
    2>"$tmp/coordinator-$tag.log" &
  CPID=$!
  for _ in $(seq 50); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "coordinator ($tag) did not create $SOCK"
}

start_worker() { # [delay-ms]
  MAMPS_DSE_WORK_DELAY_MS=${1:-0} "$BIN" dse-work --socket "$SOCK" 2>/dev/null &
  WPIDS+=($!)
}

stop_all() { # graceful: SIGTERM the coordinator, workers exit on Shutdown
  kill -TERM "$CPID" 2>/dev/null
  wait "$CPID" 2>/dev/null || fail "coordinator exited nonzero on SIGTERM"
  CPID=
  for pid in ${WPIDS[@]+"${WPIDS[@]}"}; do
    wait "$pid" 2>/dev/null || fail "worker $pid exited nonzero on coordinator shutdown"
  done
  WPIDS=()
}

# The sweep corpus: "app max-tiles" pairs. Generated scenarios reuse the
# gen_fuzz grid (3 tiles); the interchange pair sweeps to 4.
SWEEPS=(
  "examples/data/mjpeg_small_app.xml 4"
  "examples/generated/chain_s50.xml 3"
)
if ((!QUICK)); then
  SWEEPS+=(
    "examples/data/pipeline_small_app.xml 4"
    "examples/generated/split_join_s51.xml 3"
    "examples/generated/tree_s52.xml 3"
    "examples/generated/cyclic_s53.xml 3"
  )
fi

echo "== serve_fault: happy path (coordinator + 3 workers, ${#SWEEPS[@]} sweeps)"
start_coordinator happy
start_worker
start_worker
start_worker
for sweep in "${SWEEPS[@]}"; do
  read -r app max <<<"$sweep"
  name=$(basename "$app" .xml)
  "$BIN" dse "$app" "$max" >"$tmp/ref-$name.txt" || fail "cold dse $name failed"
  "$BIN" dse-submit "$app" "$max" --socket "$SOCK" >"$tmp/serve-$name.txt" \
    || fail "dse-submit $name failed"
  diff "$tmp/ref-$name.txt" "$tmp/serve-$name.txt" >/dev/null \
    || fail "$name: served report differs from single-process dse"
done
stop_all
echo "   ${#SWEEPS[@]} sweep(s) byte-identical to single-process dse"

APP=examples/data/mjpeg_small_app.xml
REF="$tmp/ref-mjpeg_small_app.txt"

echo "== serve_fault: kill -9 a worker holding a leased range"
rm -rf "$STATE"
start_coordinator kill
start_worker 600 # the victim: holds each completed range for 600ms
start_worker
start_worker
"$BIN" dse-submit "$APP" 4 --socket "$SOCK" --stats \
  >"$tmp/serve-kill.txt" 2>"$tmp/serve-kill.err" &
SUBPID=$!
sleep 0.4 # mid-sweep: the victim is inside its delay window
victim=${WPIDS[0]}
kill -9 "$victim" || fail "could not kill the victim worker"
wait "$victim" 2>/dev/null # reap quietly; 137 is the point
WPIDS=("${WPIDS[@]:1}")
wait "$SUBPID" || fail "dse-submit did not survive the worker kill ($(cat "$tmp/serve-kill.err"))"
diff "$REF" "$tmp/serve-kill.txt" >/dev/null \
  || fail "report after worker kill differs from single-process dse"
grep -q "reverted" "$tmp/coordinator-kill.log" \
  || fail "coordinator never reverted the dead worker's leases"
stop_all
echo "   lease reverted, report still byte-identical"

echo "== serve_fault: SIGTERM the coordinator mid-sweep, restart, resubmit"
rm -rf "$STATE"
start_coordinator restart-1
start_worker 300 # slow worker so the sweep is mid-flight at SIGTERM time
"$BIN" dse-submit "$APP" 4 --socket "$SOCK" \
  >"$tmp/serve-restart.txt" 2>"$tmp/serve-restart.err" &
SUBPID=$!
sleep 1.0 # some points done and spooled, more outstanding
kill -TERM "$CPID"
wait "$CPID" || fail "coordinator exited nonzero on mid-sweep SIGTERM"
CPID=
if wait "$SUBPID"; then
  fail "mid-shutdown submission did not report the interruption"
fi
grep -q "spooled" "$tmp/serve-restart.err" \
  || fail "interrupted submit did not mention the spooled partial sweep"
ls "$STATE"/job-*.jsonl >/dev/null 2>&1 \
  || fail "shutdown left no resumable spool in $STATE"
# The orphaned worker notices the EOF and exits 0 on its own.
for pid in ${WPIDS[@]+"${WPIDS[@]}"}; do
  wait "$pid" 2>/dev/null || fail "worker $pid exited nonzero after coordinator death"
done
WPIDS=()

start_coordinator restart-2
start_worker
start_worker
"$BIN" dse-submit "$APP" 4 --socket "$SOCK" --stats \
  >"$tmp/serve-resumed.txt" 2>"$tmp/serve-resumed.err" \
  || fail "resubmission after restart failed"
diff "$REF" "$tmp/serve-resumed.txt" >/dev/null \
  || fail "report after coordinator restart differs from single-process dse"
# The spool must have seeded at least one point: the resumed sweep
# evaluates strictly fewer points than the full sweep.
grep -qE "cache hits [1-9]" "$tmp/serve-resumed.err" \
  || fail "restarted coordinator re-evaluated everything (spool not seeded): $(grep 'serve stats' "$tmp/serve-resumed.err")"
stop_all
echo "   spool seeded the restart, report still byte-identical"

echo "serve_fault: OK"
