//! `mamps` — command-line front end of the automated design flow.
//!
//! Drives the flow from XML files in the common interchange format:
//!
//! ```text
//! mamps analyze  <app.xml>                       # consistency + unbounded throughput
//! mamps map      <app.xml> <arch.xml> [out.xml]  # bind/schedule/size, print bound
//! mamps generate <app.xml> <arch.xml> <dir>      # full project generation
//! mamps simulate <app.xml> <arch.xml> [iters]    # flow + WCET platform run
//! mamps dse      <app.xml> <max_tiles> [--jobs N] # design-space sweep
//! ```

use std::process::ExitCode;

use mamps::flow::report::render_dse_report;
use mamps::flow::{run_flow_with_arch, FlowOptions, GuaranteeReport};
use mamps::mapping::xml::mapping_to_xml;
use mamps::platform::xml::architecture_from_xml;
use mamps::sdf::state_space::{throughput, AnalysisOptions};
use mamps::sdf::xml::application_from_xml;
use mamps::sim::{System, WcetTimes};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mamps analyze  <app.xml>\n  mamps map      <app.xml> <arch.xml> [mapping-out.xml]\n  mamps generate <app.xml> <arch.xml> <out-dir>\n  mamps simulate <app.xml> <arch.xml> [iterations]\n  mamps dse      <app.xml> <max-tiles> [--jobs N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_app(path: &str) -> Result<mamps::sdf::model::ApplicationModel, Box<dyn std::error::Error>> {
    let xml = std::fs::read_to_string(path)?;
    Ok(application_from_xml(&xml)?)
}

fn load_arch(
    path: &str,
) -> Result<mamps::platform::arch::Architecture, Box<dyn std::error::Error>> {
    let xml = std::fs::read_to_string(path)?;
    Ok(architecture_from_xml(&xml)?)
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let cmd = match args.first() {
        Some(c) => c.as_str(),
        None => return Ok(usage()),
    };
    match (cmd, args.len()) {
        ("analyze", 2) => {
            let app = load_app(&args[1])?;
            let q = mamps::sdf::repetition::repetition_vector(app.graph())?;
            println!(
                "graph `{}` is consistent; repetition vector:",
                app.graph().name()
            );
            for (aid, a) in app.graph().actors() {
                println!("  {:<16} q = {}", a.name(), q.of(aid));
            }
            let t = throughput(app.graph(), &AnalysisOptions::default())?;
            println!(
                "unbounded self-timed throughput: {} iterations/cycle ({:.0} cycles/iteration)",
                t.iterations_per_cycle,
                t.cycles_per_iteration()
            );
            Ok(ExitCode::SUCCESS)
        }
        ("map", 3) | ("map", 4) => {
            let app = load_app(&args[1])?;
            let arch = load_arch(&args[2])?;
            let flow = run_flow_with_arch(&app, arch, &FlowOptions::default())?;
            println!(
                "guaranteed worst-case throughput: {:.6e} iterations/cycle ({:.0} cycles/iteration)",
                flow.guaranteed_throughput(),
                1.0 / flow.guaranteed_throughput()
            );
            if let Some(out) = args.get(3) {
                std::fs::write(out, mapping_to_xml(&flow.mapped.mapping, app.graph()))?;
                println!("mapping written to {out}");
            }
            Ok(ExitCode::SUCCESS)
        }
        ("generate", 4) => {
            let app = load_app(&args[1])?;
            let arch = load_arch(&args[2])?;
            let flow = run_flow_with_arch(&app, arch, &FlowOptions::default())?;
            let dir = std::path::Path::new(&args[3]);
            flow.project.write_to(dir)?;
            println!(
                "project ({} files, {} bytes) written to {}",
                flow.project.file_count(),
                flow.project.total_bytes(),
                dir.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        ("simulate", 3) | ("simulate", 4) => {
            let app = load_app(&args[1])?;
            let arch = load_arch(&args[2])?;
            let iters: u64 = args.get(3).map(|s| s.parse()).transpose()?.unwrap_or(200);
            let flow = run_flow_with_arch(&app, arch, &FlowOptions::default())?;
            let times = WcetTimes::new(flow.mapped.mapping.binding.wcet_of.clone());
            let system = System::new(app.graph(), &flow.mapped.mapping, &flow.arch, &times)?;
            let m = system.run(iters, u64::MAX / 4)?;
            let rep = GuaranteeReport::new(flow.guaranteed_throughput(), m.steady_throughput());
            println!(
                "bound {:.6e}, measured {:.6e} iterations/cycle (margin {:.3}x): guarantee {}",
                rep.bound,
                rep.measured,
                rep.margin,
                if rep.holds() { "HOLDS" } else { "VIOLATED" }
            );
            Ok(if rep.holds() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        ("dse", 3) | ("dse", 5) => {
            let app = load_app(&args[1])?;
            let max: usize = args[2].parse()?;
            let jobs = match args.get(3) {
                None => 1,
                Some(flag) if flag == "--jobs" => {
                    let n: usize = args[4].parse()?;
                    if n == 0 {
                        mamps::flow::parallel::default_jobs()
                    } else {
                        n
                    }
                }
                Some(_) => return Ok(usage()),
            };
            let tiles: Vec<usize> = (1..=max.max(1)).collect();
            let opts = FlowOptions {
                jobs,
                ..FlowOptions::default()
            };
            let report = mamps::flow::dse::explore_report(&app, &tiles, true, &opts);
            print!("{}", render_dse_report(&report));
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}
