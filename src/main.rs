//! `mamps` — command-line front end of the automated design flow.
//!
//! Drives the flow from XML files in the common interchange format:
//!
//! ```text
//! mamps gen       --out DIR [--seed S] [--family F|mixed] [--actors N]
//!                 [--count K] [--arch fsl:N|mesh:WxH] [--max-rate R]
//!                 [--slack K]                     # seeded scenario generation
//! mamps analyze   <app.xml>                       # consistency + unbounded throughput
//! mamps map       <app.xml> <arch.xml> [out.xml] [--binder <name>]
//!                 [--cache-dir DIR] [--stats]
//! mamps remap     <app.xml> <arch.xml> [out.xml] [--binder <name>]
//!                 --cache-dir DIR [--stats]       # incremental re-map
//! mamps map-multi <app.xml>... <arch.xml> [--binder <name>] [--iters N]
//!                 [--engine event|lockstep] [--cache-dir DIR] [--stats]
//! mamps generate  <app.xml> <arch.xml> <dir>      # full project generation
//! mamps simulate  <app.xml> <arch.xml> [iters]    # flow + WCET platform run
//!                 [--engine event|lockstep] [--gantt COLS] [--trace N]
//!                 [--cache-dir DIR] [--stats]
//! mamps dse       <app.xml> <max_tiles> [--jobs N] [--binders a,b,c]
//!                 [--shard i/n --out points.jsonl] [--cache-dir DIR]
//!                 [--resume points.jsonl]... [--stats]
//! mamps dse       <max_tiles> --apps a.xml,b.xml [--jobs N] [--binders ...]
//!                 [--shard i/n --out points.jsonl] [--cache-dir DIR]
//!                 [--resume points.jsonl]... [--stats]
//! mamps dse-merge <points.jsonl>...
//! mamps dse-serve  --socket S [--state-dir DIR] [--cache-dir DIR]
//!                  [--lease-timeout MS] [--chunk N]  # DSE coordinator service
//! mamps dse-work   --socket S [--jobs N]             # DSE worker process
//! mamps dse-submit <app.xml> <max_tiles> --socket S [--binders a,b,c] [--stats]
//! mamps dse-submit <max_tiles> --apps a.xml,b.xml --socket S
//!                  [--binders a,b,c] [--stats]
//! ```
//!
//! `--engine` selects the simulator kernel: `event` (default, discrete-
//! event) or `lockstep` (the reference oracle). Both are bit-identical by
//! contract — `scripts/sim_equiv.sh` diffs their output byte for byte over
//! the whole example corpus; the flag exists for that cross-check and for
//! perf comparison. `--trace N` prints the first `N` completed operations
//! in a diff-friendly text format.
//!
//! `map-multi` admits several applications one at a time onto one shared
//! platform (each keeping its own throughput guarantee), validates every
//! admitted guarantee with one concurrent cycle-level simulation, and
//! reports rejected applications with structured reasons. Individual
//! rejections do not fail the run; the exit code is nonzero only when a
//! validated guarantee is violated or when *no* application could be
//! admitted (nothing deployable). `dse --apps` sweeps which application
//! subsets fit each platform configuration.
//!
//! `dse --shard i/n` evaluates only the design points shard `i` of `n`
//! owns and writes them — serialized, one JSON object per line — to the
//! `--out` file instead of rendering a report; the shards of one sweep
//! can run on different machines. `dse-merge` reads the shard files back,
//! verifies they form a complete, non-overlapping partition of one sweep
//! (exit is nonzero otherwise), and renders exactly the report the
//! unsharded `mamps dse` would have printed, Pareto front included.
//!
//! Every `dse` run memoizes throughput analyses in a global in-process
//! cache. `--cache-dir DIR` makes caching persistent — and it is now
//! accepted by `map`, `remap`, `map-multi` and `simulate` too, not just
//! `dse`: the run loads the `*.jsonl` analysis-cache files *and* the
//! `pass-cache-*.jsonl` whole-pass memo files in `DIR` at startup and
//! writes its own (per-shard-named) files back. The pass cache memoizes
//! entire flow passes (bind, wire-alloc, schedule, buffer-size,
//! verify-shared) by input fingerprint, so a warm run replays every
//! unchanged pass — `mamps remap` is the incremental workflow: after
//! editing one WCET, only the invalidated passes re-execute, and the
//! report stays byte-identical to a cold run. `--resume f.jsonl`
//! (repeatable) seeds a sweep with the evaluated points of partial
//! shard files from a crashed run of the same sweep — a torn trailing
//! line is dropped, the rest is reused, and the output stays
//! byte-identical to a cold run. `--stats` prints cache hit/miss/insert
//! counters and a per-pass table (name, runs, cache hits, wall time) to
//! stderr.
//!
//! `dse-serve` runs the long-lived DSE coordinator service
//! ([`mamps::flow::serve`]): `dse-submit` sends it a sweep (same shape as
//! `dse`, application XML shipped inline), `dse-work` processes fetch
//! leased seq ranges and evaluate them. Ranges lease with a timeout and
//! are reassigned when a worker hangs or disconnects; every completed
//! point is spooled to a resumable shard-format JSONL under
//! `--state-dir`, so a killed coordinator resumes a resubmitted sweep
//! where it stopped; and the coordinator keeps one warm analysis + pass
//! cache across all submissions (persisted via `--cache-dir`). The
//! merged report on stdout is byte-identical to single-process
//! `mamps dse` — `scripts/serve_fault.sh` enforces that under injected
//! worker kills and a coordinator restart.
//!
//! Binding strategies (`--binder` / `--binders`) are resolved through
//! [`mamps::mapping::strategy::registry`]: `greedy` (default), `spiral`,
//! `genetic`.

use std::process::ExitCode;

use mamps::flow::dse::cache as dse_cache;
use mamps::flow::dse::shard;
use mamps::flow::report::{
    render_dse_report, render_mapping_summary, render_multi_report, render_use_case_report,
};
use mamps::flow::serve;
use mamps::flow::{run_flow_with_arch, run_multi_flow, FlowOptions, GuaranteeReport};
use mamps::mapping::strategy::{self, StrategyHandle};
use mamps::mapping::xml::mapping_to_xml;
use mamps::platform::gen::{synthesize, ArchSpec};
use mamps::platform::xml::{architecture_from_xml, architecture_to_xml};
use mamps::sdf::gen::{generate as generate_scenario, Family, GenConfig};
use mamps::sdf::state_space::{throughput, AnalysisOptions};
use mamps::sdf::xml::{application_from_xml, application_to_xml};
use mamps::sim::{System, WcetTimes};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mamps gen       --out DIR [--seed S] [--family chain|split-join|tree|cyclic|mixed] [--actors N] [--count K] [--arch fsl:N|mesh:WxH] [--max-rate R] [--slack K]\n  mamps analyze   <app.xml>\n  mamps map       <app.xml> <arch.xml> [mapping-out.xml] [--binder <name>] [--cache-dir DIR] [--stats]\n  mamps remap     <app.xml> <arch.xml> [mapping-out.xml] [--binder <name>] --cache-dir DIR [--stats]\n  mamps map-multi <app.xml>... <arch.xml> [--binder <name>] [--iters N] [--gantt COLS] [--engine event|lockstep] [--cache-dir DIR] [--stats]\n  mamps generate  <app.xml> <arch.xml> <out-dir>\n  mamps simulate  <app.xml> <arch.xml> [iterations] [--engine event|lockstep] [--gantt COLS] [--trace N] [--cache-dir DIR] [--stats]\n  mamps dse       <app.xml> <max-tiles> [--jobs N] [--binders a,b,c] [--shard i/n --out f.jsonl] [--cache-dir DIR] [--resume f.jsonl]... [--stats]\n  mamps dse       <max-tiles> --apps a.xml,b.xml [--jobs N] [--binders a,b,c] [--shard i/n --out f.jsonl] [--cache-dir DIR] [--resume f.jsonl]... [--stats]\n  mamps dse-merge <points.jsonl>...\n  mamps dse-serve  --socket S [--state-dir DIR] [--cache-dir DIR] [--lease-timeout MS] [--chunk N]\n  mamps dse-work   --socket S [--jobs N]\n  mamps dse-submit <app.xml> <max-tiles> --socket S [--binders a,b,c] [--stats]\n  mamps dse-submit <max-tiles> --apps a.xml,b.xml --socket S [--binders a,b,c] [--stats]\nbinders: {}",
        strategy::names().join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

// Both loaders prefix errors with the offending file, so a failing
// scenario out of a whole generated corpus is diagnosable from the
// message alone (the parser adds line/column context).
fn load_app(path: &str) -> Result<mamps::sdf::model::ApplicationModel, Box<dyn std::error::Error>> {
    let xml = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    application_from_xml(&xml).map_err(|e| format!("{path}: {e}").into())
}

fn load_arch(
    path: &str,
) -> Result<mamps::platform::arch::Architecture, Box<dyn std::error::Error>> {
    let xml = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    architecture_from_xml(&xml).map_err(|e| format!("{path}: {e}").into())
}

/// Positional arguments plus `--flag value` pairs, as split by [`split_flags`].
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

/// Splits `args` into positional arguments and `--flag value` pairs.
/// Flags listed in `boolean` take no value and come back with an empty
/// one. Unknown flags and value flags without a value produce an error.
/// A flag may repeat; every occurrence is returned in order.
fn split_flags(args: &[String], known: &[&str], boolean: &[&str]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if boolean.contains(&name) {
                flags.push((name.to_string(), String::new()));
                i += 1;
                continue;
            }
            if !known.contains(&name) {
                return Err(format!("unknown flag `--{name}`"));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag `--{name}` needs a value"))?;
            flags.push((name.to_string(), value.clone()));
            i += 2;
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

/// Writes a shard run's JSON lines and prints the one-line summary the
/// report would otherwise occupy.
fn write_shard(s: &shard::DseShard, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::write(path, s.to_jsonl())?;
    println!(
        "shard {}: {} of {} design points evaluated -> {path}",
        s.header.shard,
        s.records.len(),
        s.header.total_configs
    );
    Ok(())
}

/// The caches and pass runner a run was configured with, for persisting
/// and reporting after the flow completes.
struct RunCaches {
    dir: Option<std::path::PathBuf>,
    analysis: Option<std::sync::Arc<mamps::sdf::GlobalAnalysisCache>>,
    passes: std::sync::Arc<mamps::sdf::PassCache>,
    runner: std::sync::Arc<mamps::mapping::PassRunner>,
    warmed_analysis: Option<dse_cache::CacheDirLoad>,
    warmed_passes: Option<dse_cache::CacheDirLoad>,
    show_stats: bool,
    started: std::time::Instant,
}

/// Wires the analysis cache, the whole-pass memo cache and the pass
/// runner into `opts`, as requested by `--cache-dir` / `--stats`.
///
/// * `--cache-dir DIR` warms both caches from `DIR` and attaches them, so
///   unchanged passes (and repeated analyses) replay from previous runs;
///   [`finish_caches`] persists them back.
/// * `--stats` alone attaches an uncached runner, purely for the
///   per-pass wall-time table.
/// * `always_analysis` (the `dse` sweep) attaches the in-process analysis
///   cache even without a cache directory, as sweeps always did.
///
/// Returns `None` when nothing was requested: the flow then runs with
/// zero cache or accounting overhead.
fn setup_caches(
    opts: &mut FlowOptions,
    cache_dir: Option<std::path::PathBuf>,
    show_stats: bool,
    always_analysis: bool,
) -> Result<Option<RunCaches>, Box<dyn std::error::Error>> {
    if cache_dir.is_none() && !show_stats && !always_analysis {
        return Ok(None);
    }
    let passes = std::sync::Arc::new(mamps::sdf::PassCache::new());
    let mut analysis = None;
    let mut warmed_analysis = None;
    let mut warmed_passes = None;
    if cache_dir.is_some() || always_analysis {
        let cache = std::sync::Arc::new(mamps::sdf::GlobalAnalysisCache::new());
        if let Some(dir) = &cache_dir {
            warmed_analysis = Some(dse_cache::load_cache_dir(&cache, dir)?);
            warmed_passes = Some(dse_cache::load_pass_cache_dir(&passes, dir)?);
        }
        opts.map.cache = Some(std::sync::Arc::clone(&cache));
        analysis = Some(cache);
    }
    let runner = if cache_dir.is_some() {
        std::sync::Arc::new(mamps::mapping::PassRunner::with_cache(
            std::sync::Arc::clone(&passes),
        ))
    } else {
        std::sync::Arc::new(mamps::mapping::PassRunner::new())
    };
    opts.map.passes = Some(std::sync::Arc::clone(&runner));
    Ok(Some(RunCaches {
        dir: cache_dir,
        analysis,
        passes,
        runner,
        warmed_analysis,
        warmed_passes,
        show_stats,
        started: std::time::Instant::now(),
    }))
}

/// Persists the caches of [`setup_caches`] back to their directory and
/// prints the `--stats` report. Stats go to stderr: wall times (and
/// hit/miss counts under parallel evaluation) are nondeterministic, and
/// stdout must stay byte-comparable across cold, warm and incremental
/// runs.
fn finish_caches(c: &RunCaches, spec: shard::ShardSpec) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(dir) = &c.dir {
        let ppath = dse_cache::persist_pass_cache(&c.passes, dir, spec)?;
        let apath = match &c.analysis {
            Some(a) => Some(dse_cache::persist_cache(a, dir, spec)?),
            None => None,
        };
        if c.show_stats {
            if let (Some(a), Some(path)) = (&c.analysis, apath) {
                eprintln!("cache persisted: {} entries -> {}", a.len(), path.display());
            }
            eprintln!(
                "pass cache persisted: {} entries -> {}",
                c.passes.len(),
                ppath.display()
            );
        }
    }
    if c.show_stats {
        if let Some(w) = &c.warmed_analysis {
            eprintln!("cache warmed from disk: {w}");
        }
        if let Some(w) = &c.warmed_passes {
            eprintln!("pass cache warmed from disk: {w}");
        }
        if let Some(a) = &c.analysis {
            eprintln!("analysis cache: {}", a.stats());
        }
        if c.runner.cache().is_some() {
            eprintln!("pass cache: {}", c.passes.stats());
        }
        eprintln!(
            "pass wall time (run total {:.1?}):\n{}",
            c.started.elapsed(),
            c.runner.report()
        );
    }
    Ok(())
}

fn resolve_binder(name: &str) -> Result<StrategyHandle, String> {
    strategy::by_name(name).ok_or_else(|| {
        format!(
            "unknown binder `{name}` (available: {})",
            strategy::names().join(", ")
        )
    })
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let cmd = match args.first() {
        Some(c) => c.as_str(),
        None => return Ok(usage()),
    };
    match (cmd, args.len()) {
        // Seeded scenario generation: writes `--count` application XMLs
        // (plus one platform XML and a manifest) into `--out`. Fully
        // deterministic — equal flags produce byte-identical files — and
        // every emitted scenario is verified to round-trip the
        // interchange parser before it is written.
        ("gen", _) => {
            let (pos, flags) = split_flags(
                &args[1..],
                &[
                    "seed", "family", "actors", "count", "arch", "out", "max-rate", "slack",
                ],
                &[],
            )?;
            if !pos.is_empty() {
                return Ok(usage());
            }
            let mut seed: u64 = 1;
            let mut family: Option<Family> = None; // None = mixed
            let mut actors: usize = 6;
            let mut count: usize = 1;
            let mut arch_spec: ArchSpec = ArchSpec::Fsl { tiles: 3 };
            let mut out: Option<std::path::PathBuf> = None;
            let mut max_rate: u64 = 3;
            let mut slack: Option<u64> = None;
            for (name, value) in &flags {
                match name.as_str() {
                    "seed" => seed = value.parse()?,
                    "family" => {
                        family = match value.as_str() {
                            "mixed" => None,
                            f => Some(f.parse::<Family>()?),
                        }
                    }
                    "actors" => actors = value.parse()?,
                    "count" => count = value.parse::<usize>()?.max(1),
                    "arch" => arch_spec = value.parse()?,
                    "out" => out = Some(value.into()),
                    "max-rate" => max_rate = value.parse()?,
                    "slack" => slack = Some(value.parse()?),
                    _ => unreachable!("split_flags rejects unknown flags"),
                }
            }
            let dir = out.ok_or("`mamps gen` requires `--out DIR`")?;
            std::fs::create_dir_all(&dir)?;

            let arch = synthesize(&arch_spec, &format!("gen_{}", arch_spec.slug()))?;
            let arch_xml = architecture_to_xml(&arch);
            if architecture_to_xml(&architecture_from_xml(&arch_xml)?) != arch_xml {
                return Err("generated platform does not round-trip the parser".into());
            }
            let arch_file = format!("arch_{}.xml", arch_spec.slug());
            std::fs::write(dir.join(&arch_file), &arch_xml)?;

            let mut manifest = String::new();
            for k in 0..count {
                let cfg = GenConfig {
                    seed: seed + k as u64,
                    family: family.unwrap_or(Family::ALL[k % Family::ALL.len()]),
                    actors,
                    max_rate,
                    constraint_slack: slack,
                    ..GenConfig::default()
                };
                let app = generate_scenario(&cfg)?;
                let xml = application_to_xml(&app);
                let reparsed = application_from_xml(&xml)
                    .map_err(|e| format!("generated scenario does not re-parse: {e}"))?;
                if application_to_xml(&reparsed) != xml {
                    return Err(format!(
                        "scenario {} does not round-trip the parser byte-identically",
                        app.graph().name()
                    )
                    .into());
                }
                let file = format!("{}_s{}.xml", cfg.family.slug(), cfg.seed);
                std::fs::write(dir.join(&file), &xml)?;
                let channels = app.graph().channels().count();
                manifest.push_str(&format!(
                    "app={file} arch={arch_file} family={} seed={} actors={} channels={} constrained={}\n",
                    cfg.family,
                    cfg.seed,
                    app.graph().actors().count(),
                    channels,
                    if slack.is_some() { "yes" } else { "no" },
                ));
            }
            std::fs::write(dir.join("manifest.txt"), &manifest)?;
            println!(
                "generated {count} scenario(s) ({} arch {arch_spec}) -> {}",
                if family.is_none() {
                    "mixed families,".to_string()
                } else {
                    format!("family {},", family.unwrap_or(Family::Chain))
                },
                dir.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        ("analyze", 2) => {
            let app = load_app(&args[1])?;
            let q = mamps::sdf::repetition::repetition_vector(app.graph())?;
            println!(
                "graph `{}` is consistent; repetition vector:",
                app.graph().name()
            );
            for (aid, a) in app.graph().actors() {
                println!("  {:<16} q = {}", a.name(), q.of(aid));
            }
            let t = throughput(app.graph(), &AnalysisOptions::default())?;
            println!(
                "unbounded self-timed throughput: {} iterations/cycle ({:.0} cycles/iteration)",
                t.iterations_per_cycle,
                t.cycles_per_iteration()
            );
            Ok(ExitCode::SUCCESS)
        }
        // `remap` is `map` with a mandatory `--cache-dir`: the incremental
        // re-mapping workflow. Identical code path, so its stdout is
        // byte-identical to `map`'s by construction.
        ("map" | "remap", _) => {
            let (pos, flags) = split_flags(&args[1..], &["binder", "cache-dir"], &["stats"])?;
            if pos.len() < 2 || pos.len() > 3 {
                return Ok(usage());
            }
            let app = load_app(&pos[0])?;
            let arch = load_arch(&pos[1])?;
            let mut opts = FlowOptions::default();
            let mut cache_dir: Option<std::path::PathBuf> = None;
            let mut show_stats = false;
            for (name, value) in &flags {
                match name.as_str() {
                    "binder" => opts.map.bind.strategy = resolve_binder(value)?,
                    "cache-dir" => cache_dir = Some(value.into()),
                    "stats" => show_stats = true,
                    _ => unreachable!("split_flags rejects unknown flags"),
                }
            }
            if cmd == "remap" && cache_dir.is_none() {
                return Err("`mamps remap` requires `--cache-dir DIR` \
                            (the pass cache is what makes re-mapping incremental)"
                    .into());
            }
            let caches = setup_caches(&mut opts, cache_dir, show_stats, false)?;
            let flow = run_flow_with_arch(&app, arch, &opts)?;
            println!(
                "guaranteed worst-case throughput: {:.6e} iterations/cycle ({:.0} cycles/iteration)",
                flow.guaranteed_throughput(),
                1.0 / flow.guaranteed_throughput()
            );
            print!("{}", render_mapping_summary(&app, &flow.arch, &flow.mapped));
            if let Some(out) = pos.get(2) {
                std::fs::write(out, mapping_to_xml(&flow.mapped.mapping, app.graph()))?;
                println!("mapping written to {out}");
            }
            if let Some(c) = &caches {
                finish_caches(c, shard::ShardSpec::full())?;
            }
            Ok(ExitCode::SUCCESS)
        }
        ("map-multi", _) => {
            let (pos, flags) = split_flags(
                &args[1..],
                &["binder", "iters", "gantt", "engine", "cache-dir"],
                &["stats"],
            )?;
            if pos.len() < 2 {
                return Ok(usage());
            }
            let (app_paths, arch_path) = pos.split_at(pos.len() - 1);
            let apps = app_paths
                .iter()
                .map(|p| load_app(p))
                .collect::<Result<Vec<_>, _>>()?;
            let arch = load_arch(&arch_path[0])?;
            let mut opts = FlowOptions::default();
            let mut iters: u64 = 100;
            let mut gantt_cols: Option<usize> = None;
            let mut cache_dir: Option<std::path::PathBuf> = None;
            let mut show_stats = false;
            for (name, value) in &flags {
                match name.as_str() {
                    "binder" => opts.map.bind.strategy = resolve_binder(value)?,
                    "iters" => iters = value.parse()?,
                    "gantt" => gantt_cols = Some(value.parse()?),
                    "engine" => opts.sim_engine = value.parse::<mamps::sim::Engine>()?,
                    "cache-dir" => cache_dir = Some(value.into()),
                    "stats" => show_stats = true,
                    _ => unreachable!("split_flags rejects unknown flags"),
                }
            }
            let caches = setup_caches(&mut opts, cache_dir, show_stats, false)?;
            let result = run_multi_flow(apps, arch, &opts, iters)?;
            print!("{}", render_multi_report(&result));
            if let Some(cols) = gantt_cols {
                // Re-run each interference group with tracing and render
                // the Gantt with one row per (worker, application), so
                // contention on shared tiles is attributable.
                for gi in 0..result.outcome.groups.len() {
                    let (m, events) = result.trace_group(gi, iters, 100_000)?;
                    let attribution = result.group_attribution(gi);
                    // Show the first few iterations: enough to see the
                    // interleaving, short enough to stay readable.
                    let until = m
                        .iteration_times
                        .get(3)
                        .or(m.iteration_times.last())
                        .copied()
                        .unwrap_or(m.total_cycles);
                    println!(
                        "gantt of interference group {gi} ({}):",
                        attribution.names.join(" + ")
                    );
                    print!(
                        "{}",
                        mamps::sim::render_gantt_labeled(
                            &events,
                            until,
                            cols.clamp(16, 512),
                            Some(&attribution)
                        )
                    );
                }
            }
            if let Some(c) = &caches {
                finish_caches(c, shard::ShardSpec::full())?;
            }
            Ok(
                if result.admitted_count() >= 1 && result.all_guarantees_hold() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                },
            )
        }
        ("generate", 4) => {
            let app = load_app(&args[1])?;
            let arch = load_arch(&args[2])?;
            let flow = run_flow_with_arch(&app, arch, &FlowOptions::default())?;
            let dir = std::path::Path::new(&args[3]);
            flow.project.write_to(dir)?;
            println!(
                "project ({} files, {} bytes) written to {}",
                flow.project.file_count(),
                flow.project.total_bytes(),
                dir.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        ("simulate", _) => {
            let (pos, flags) = split_flags(
                &args[1..],
                &["engine", "gantt", "trace", "cache-dir"],
                &["stats"],
            )?;
            if pos.len() < 2 || pos.len() > 3 {
                return Ok(usage());
            }
            let app = load_app(&pos[0])?;
            let arch = load_arch(&pos[1])?;
            let iters: u64 = pos.get(2).map(|s| s.parse()).transpose()?.unwrap_or(200);
            let mut opts = FlowOptions::default();
            let mut gantt_cols: Option<usize> = None;
            let mut trace_events: Option<usize> = None;
            let mut cache_dir: Option<std::path::PathBuf> = None;
            let mut show_stats = false;
            for (name, value) in &flags {
                match name.as_str() {
                    "engine" => opts.sim_engine = value.parse::<mamps::sim::Engine>()?,
                    "gantt" => gantt_cols = Some(value.parse()?),
                    "trace" => trace_events = Some(value.parse()?),
                    "cache-dir" => cache_dir = Some(value.into()),
                    "stats" => show_stats = true,
                    _ => unreachable!("split_flags rejects unknown flags"),
                }
            }
            let caches = setup_caches(&mut opts, cache_dir, show_stats, false)?;
            let flow = run_flow_with_arch(&app, arch, &opts)?;
            let times = WcetTimes::new(flow.mapped.mapping.binding.wcet_of.clone());
            let system = System::new(app.graph(), &flow.mapped.mapping, &flow.arch, &times)?
                .with_engine(opts.sim_engine);
            let m = if gantt_cols.is_some() || trace_events.is_some() {
                let cap = trace_events.unwrap_or(0).max(100_000);
                let (m, events) = system.run_traced(iters, u64::MAX / 4, cap)?;
                if let Some(n) = trace_events {
                    print!(
                        "{}",
                        mamps::sim::render_trace(&events[..events.len().min(n)])
                    );
                }
                if let Some(cols) = gantt_cols {
                    // Show the first few iterations, like map-multi --gantt.
                    let until = m
                        .iteration_times
                        .get(3)
                        .or(m.iteration_times.last())
                        .copied()
                        .unwrap_or(m.total_cycles);
                    print!(
                        "{}",
                        mamps::sim::render_gantt(&events, until, cols.clamp(16, 512))
                    );
                }
                m
            } else {
                system.run(iters, u64::MAX / 4)?
            };
            let rep = GuaranteeReport::new(flow.guaranteed_throughput(), m.steady_throughput());
            println!(
                "bound {:.6e}, measured {:.6e} iterations/cycle (margin {:.3}x): guarantee {}",
                rep.bound,
                rep.measured,
                rep.margin,
                if rep.holds() { "HOLDS" } else { "VIOLATED" }
            );
            if let Some(c) = &caches {
                finish_caches(c, shard::ShardSpec::full())?;
            }
            Ok(if rep.holds() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        ("dse", _) => {
            let (pos, flags) = split_flags(
                &args[1..],
                &[
                    "jobs",
                    "binders",
                    "apps",
                    "shard",
                    "out",
                    "cache-dir",
                    "resume",
                ],
                &["stats"],
            )?;
            let mut opts = FlowOptions::default();
            let mut multi_apps: Option<Vec<mamps::sdf::model::ApplicationModel>> = None;
            let mut out_path: Option<String> = None;
            let mut cache_dir: Option<std::path::PathBuf> = None;
            let mut resume_paths: Vec<String> = Vec::new();
            let mut show_stats = false;
            for (name, value) in &flags {
                match name.as_str() {
                    "jobs" => {
                        let n: usize = value.parse()?;
                        opts.jobs = if n == 0 {
                            mamps::flow::parallel::default_jobs()
                        } else {
                            n
                        };
                    }
                    "binders" => {
                        opts.binders = value
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(resolve_binder)
                            .collect::<Result<Vec<_>, _>>()?;
                    }
                    "apps" => {
                        multi_apps = Some(
                            value
                                .split(',')
                                .filter(|s| !s.is_empty())
                                .map(load_app)
                                .collect::<Result<Vec<_>, _>>()?,
                        );
                    }
                    "shard" => opts.shard = Some(value.parse::<shard::ShardSpec>()?),
                    "out" => out_path = Some(value.clone()),
                    "cache-dir" => cache_dir = Some(value.into()),
                    "resume" => resume_paths.push(value.clone()),
                    "stats" => show_stats = true,
                    _ => unreachable!("split_flags rejects unknown flags"),
                }
            }
            if opts.shard.is_some() && out_path.is_none() {
                return Err("flag `--shard` requires `--out <file.jsonl>` \
                            (sharded runs emit JSON lines, not a report)"
                    .into());
            }

            // The global analysis cache backs every dse run; --cache-dir
            // additionally warms it (and the whole-pass memo cache) from
            // disk and persists both afterwards.
            let caches = setup_caches(&mut opts, cache_dir, show_stats, true)?
                .expect("dse always attaches the analysis cache");

            // Partial shard files of a crashed run of this same sweep:
            // their design points are reused, not re-evaluated.
            let mut resume_shards = Vec::with_capacity(resume_paths.len());
            for path in &resume_paths {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read resume file `{path}`: {e}"))?;
                let (s, dropped) =
                    shard::DseShard::from_jsonl_lossy(&text).map_err(|e| format!("{path}: {e}"))?;
                if dropped {
                    eprintln!("note: `{path}` ends mid-record (crashed run?); dropped that line");
                }
                resume_shards.push(s);
            }

            let code = match multi_apps {
                // Use-case sweep: which subsets of the applications fit on
                // each platform configuration.
                Some(apps) => {
                    if pos.len() != 1 {
                        return Ok(usage());
                    }
                    let max: usize = pos[0].parse()?;
                    let tiles: Vec<usize> = (1..=max.max(1)).collect();
                    let s = shard::explore_use_case_shard_with_resume(
                        &apps,
                        &tiles,
                        true,
                        &opts,
                        &resume_shards,
                    )?;
                    match out_path {
                        Some(path) => write_shard(&s, &path)?,
                        None => print!("{}", render_use_case_report(&s.into_use_case_report())),
                    }
                    ExitCode::SUCCESS
                }
                None => {
                    if pos.len() != 2 {
                        return Ok(usage());
                    }
                    let app = load_app(&pos[0])?;
                    let max: usize = pos[1].parse()?;
                    let tiles: Vec<usize> = (1..=max.max(1)).collect();
                    let s = shard::explore_shard_with_resume(
                        &app,
                        &tiles,
                        true,
                        &opts,
                        &resume_shards,
                    )?;
                    match out_path {
                        Some(path) => write_shard(&s, &path)?,
                        None => print!("{}", render_dse_report(&s.into_dse_report())),
                    }
                    ExitCode::SUCCESS
                }
            };

            finish_caches(&caches, opts.shard.unwrap_or_else(shard::ShardSpec::full))?;
            Ok(code)
        }
        ("dse-merge", n) if n >= 2 => {
            let mut shards = Vec::with_capacity(n - 1);
            for path in &args[1..] {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read shard file `{path}`: {e}"))?;
                shards
                    .push(shard::DseShard::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?);
            }
            let merged = shard::merge_reports(&shards)?;
            print!("{}", merged.render());
            Ok(ExitCode::SUCCESS)
        }
        // The DSE coordinator service: runs until SIGTERM/SIGINT, then
        // shuts down gracefully (spools flushed, caches persisted).
        ("dse-serve", _) => {
            let (pos, flags) = split_flags(
                &args[1..],
                &["socket", "state-dir", "cache-dir", "lease-timeout", "chunk"],
                &[],
            )?;
            if !pos.is_empty() {
                return Ok(usage());
            }
            let mut cfg = serve::ServeConfig::default();
            let mut socket: Option<std::path::PathBuf> = None;
            let mut state_dir: Option<std::path::PathBuf> = None;
            for (name, value) in &flags {
                match name.as_str() {
                    "socket" => socket = Some(value.into()),
                    "state-dir" => state_dir = Some(value.into()),
                    "cache-dir" => cfg.cache_dir = Some(value.into()),
                    "lease-timeout" => cfg.lease_timeout_ms = value.parse()?,
                    "chunk" => cfg.chunk = value.parse::<u64>()?.max(1),
                    _ => unreachable!("split_flags rejects unknown flags"),
                }
            }
            let socket = socket.ok_or("`mamps dse-serve` requires `--socket PATH`")?;
            // State defaults next to the socket, so coordinator restarts
            // with the same `--socket` find their spools without extra flags.
            cfg.state_dir = state_dir
                .unwrap_or_else(|| std::path::PathBuf::from(format!("{}.state", socket.display())));
            cfg.socket = socket;
            serve::run_coordinator(cfg)?;
            Ok(ExitCode::SUCCESS)
        }
        // A worker process: fetches leased seq ranges from the coordinator
        // and evaluates them until told to shut down (or the coordinator
        // disappears — an expected event, exit 0 either way).
        ("dse-work", _) => {
            let (pos, flags) = split_flags(&args[1..], &["socket", "jobs"], &[])?;
            if !pos.is_empty() {
                return Ok(usage());
            }
            let mut socket: Option<std::path::PathBuf> = None;
            let mut jobs: usize = 1;
            for (name, value) in &flags {
                match name.as_str() {
                    "socket" => socket = Some(value.into()),
                    "jobs" => {
                        let n: usize = value.parse()?;
                        jobs = if n == 0 {
                            mamps::flow::parallel::default_jobs()
                        } else {
                            n
                        };
                    }
                    _ => unreachable!("split_flags rejects unknown flags"),
                }
            }
            let cfg = serve::WorkerConfig {
                socket: socket.ok_or("`mamps dse-work` requires `--socket PATH`")?,
                jobs,
            };
            let summary = serve::run_worker(&cfg)?;
            eprintln!(
                "dse-work: evaluated {} design point(s) in {} range(s)",
                summary.points, summary.ranges
            );
            Ok(ExitCode::SUCCESS)
        }
        // Submit a sweep to a running coordinator: same sweep shape as
        // `dse` (app XML shipped inline), report on stdout byte-identical
        // to single-process `mamps dse` on the same inputs.
        ("dse-submit", _) => {
            let (pos, flags) = split_flags(&args[1..], &["socket", "binders", "apps"], &["stats"])?;
            let mut socket: Option<std::path::PathBuf> = None;
            let mut binder_names: Vec<String> = Vec::new();
            let mut app_paths: Option<Vec<String>> = None;
            let mut show_stats = false;
            for (name, value) in &flags {
                match name.as_str() {
                    "socket" => socket = Some(value.into()),
                    "binders" => {
                        binder_names = value
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                        // Fail locally with the registry's clear error
                        // instead of a coordinator round-trip.
                        for b in &binder_names {
                            resolve_binder(b)?;
                        }
                    }
                    "apps" => {
                        app_paths = Some(
                            value
                                .split(',')
                                .filter(|s| !s.is_empty())
                                .map(str::to_string)
                                .collect(),
                        )
                    }
                    "stats" => show_stats = true,
                    _ => unreachable!("split_flags rejects unknown flags"),
                }
            }
            let socket = socket.ok_or("`mamps dse-submit` requires `--socket PATH`")?;
            let read_xml = |path: &str| -> Result<String, Box<dyn std::error::Error>> {
                Ok(std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?)
            };
            let spec = match app_paths {
                Some(paths) => {
                    if pos.len() != 1 {
                        return Ok(usage());
                    }
                    let max: usize = pos[0].parse()?;
                    serve::SweepSpec {
                        mode: shard::SweepMode::UseCases,
                        apps_xml: paths
                            .iter()
                            .map(|p| read_xml(p))
                            .collect::<Result<Vec<_>, _>>()?,
                        tile_counts: (1..=max.max(1)).collect(),
                        include_noc: true,
                        binders: binder_names,
                    }
                }
                None => {
                    if pos.len() != 2 {
                        return Ok(usage());
                    }
                    let max: usize = pos[1].parse()?;
                    serve::SweepSpec {
                        mode: shard::SweepMode::Binders,
                        apps_xml: vec![read_xml(&pos[0])?],
                        tile_counts: (1..=max.max(1)).collect(),
                        include_noc: true,
                        binders: binder_names,
                    }
                }
            };
            let outcome = serve::run_submit(&socket, &spec, |done, total| {
                if show_stats {
                    eprintln!("serve: {done}/{total} design points done");
                }
            })?;
            // Report on stdout (byte-comparable); counters on stderr.
            print!("{}", outcome.report);
            if show_stats {
                let s = outcome.stats;
                eprintln!(
                    "serve stats: {} design points; evaluated {}, cache hits {}, \
                     duplicates {}, reassigned {}",
                    s.total, s.evaluated, s.seeded, s.duplicates, s.reassigned
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}
