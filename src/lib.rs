//! # mamps — an automated flow to map throughput-constrained applications
//! to a MPSoC
//!
//! Facade crate of the reproduction of R. Jordans, F. Siyoum, S. Stuijk,
//! A. Kumar, H. Corporaal, *An Automated Flow to Map Throughput Constrained
//! Applications to a MPSoC* (PPES 2011). It re-exports the workspace
//! crates:
//!
//! * [`sdf`] — SDF graphs, repetition vectors, liveness, state-space and
//!   MCR throughput analysis, buffer sizing, application models.
//! * [`platform`] — the MAMPS architecture template: tiles, FSL and SDM
//!   NoC interconnects, area model.
//! * [`mapping`] — binding, static-order scheduling, buffer allocation,
//!   the Fig. 4 interconnect-model expansion, and multi-application
//!   use-case admission (`mapping::multi`).
//! * [`sim`] — the deterministic cycle-level platform simulator (the
//!   FPGA stand-in).
//! * [`mjpeg`] — the MJPEG decoder case study with its cycle-cost model.
//! * [`codegen`] — the MAMPS platform generator (C wrappers, schedules,
//!   netlist, memory maps, XPS TCL).
//! * [`flow`] — the end-to-end automated flow, experiments and DSE.
//!
//! ## Quickstart
//!
//! ```
//! use mamps::flow::{run_flow, FlowOptions};
//! use mamps::platform::interconnect::Interconnect;
//! use mamps::sdf::graph::SdfGraphBuilder;
//! use mamps::sdf::model::HomogeneousModelBuilder;
//!
//! let mut b = SdfGraphBuilder::new("app");
//! let producer = b.add_actor("producer", 1);
//! let consumer = b.add_actor("consumer", 1);
//! b.add_channel("data", producer, 1, consumer, 1);
//! let graph = b.build().unwrap();
//!
//! let mut model = HomogeneousModelBuilder::new("microblaze");
//! model.actor("producer", 50, 2048, 128).actor("consumer", 90, 2048, 128);
//! let app = model.finish(graph, None).unwrap();
//!
//! let result = run_flow(&app, 2, Interconnect::fsl(), &FlowOptions::default()).unwrap();
//! println!("guaranteed: {} iterations/cycle", result.guaranteed_throughput());
//! ```

pub use mamps_codegen as codegen;
pub use mamps_core as flow;
pub use mamps_mapping as mapping;
pub use mamps_mjpeg as mjpeg;
pub use mamps_platform as platform;
pub use mamps_sdf as sdf;
pub use mamps_sim as sim;
