//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset of the rand API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over integer
//! ranges — backed by the SplitMix64 generator. Deterministic for a given
//! seed, which is exactly what the MJPEG test-sequence generator needs
//! (the paper's sequences are reproducible fixtures, not cryptographic
//! material).

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// High-level sampling interface mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_integer_sampling {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as i128;
                let width = (self.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )+};
}

impl_integer_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush on 64-bit outputs — more
    /// than enough statistical quality for generating test imagery.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i16 = rng.gen_range(-8..=8);
            assert!((-8..=8).contains(&v));
            let u: u8 = rng.gen_range(0..=255);
            let _ = u;
            let w: u64 = rng.gen_range(1..5);
            assert!((1..5).contains(&w));
        }
    }
}
