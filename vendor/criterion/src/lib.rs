//! Offline stand-in for `criterion` 0.5.
//!
//! A self-contained micro-benchmark harness with Criterion's surface API
//! (`Criterion`, `Bencher`, `BenchmarkGroup`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`, `black_box`). Measurements are
//! real — warm-up, then `sample_size` timed samples whose mean, min and
//! max are reported — but there is no HTML reporting, statistics engine,
//! or state persistence. `--bench`/`--test` CLI arguments passed by
//! `cargo bench`/`cargo test` are accepted and benchmark name filters are
//! honoured.
//!
//! Machine-readable output: when the `MAMPS_BENCH_JSON` environment
//! variable names a file, every measured benchmark appends one JSON line
//! (`{"id": ..., "median_ns": ..., "mean_ns": ..., "min_ns": ...,
//! "max_ns": ..., "samples": ...}`) to it. `scripts/bench_json.sh` uses
//! this to assemble the checked-in `BENCH_*.json` perf-trajectory files.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub use std::hint::black_box;

/// Benchmark driver holding the measurement configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    list_only: bool,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut filter = None;
        let mut list_only = false;
        // `cargo bench` invokes the target with `--bench`; `cargo test`
        // (on harness = false targets it does not, but keep parity with
        // real Criterion) passes `--test`. Anything that is not a flag is
        // a name filter.
        let mut bench_mode = false;
        for arg in &args[1..] {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                "--list" => list_only = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter,
            list_only,
            bench_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.list_only {
            println!("{id}: benchmark");
            return;
        }
        if !self.bench_mode {
            // `cargo test` runs bench targets once for sanity: execute a
            // single iteration without the timing loop.
            let mut b = Bencher {
                mode: Mode::TestOnce,
                samples: Vec::new(),
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }

        // Warm-up.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut b = Bencher {
            mode: Mode::Timed { iters: 1 },
            samples: Vec::new(),
        };
        while Instant::now() < warm_deadline {
            f(&mut b);
        }
        b.samples.clear();

        // Measurement: split the measurement budget over sample_size
        // samples, each sample timing one closure invocation.
        let per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let deadline = Instant::now() + per_sample;
            f(&mut b);
            while Instant::now() < deadline && b.samples.len() < self.sample_size * 64 {
                f(&mut b);
            }
        }

        let samples = &b.samples;
        if samples.is_empty() {
            println!("{id}: no samples collected");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let median = {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            sorted[sorted.len() / 2]
        };
        if let Ok(path) = std::env::var("MAMPS_BENCH_JSON") {
            if !path.is_empty() {
                append_json_line(&path, id, median, mean, min, max, samples.len());
            }
        }
        println!(
            "{id}\n                        time:   [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
    }
}

/// Appends one JSON-lines record for a measured benchmark to `path`.
/// Failures are reported on stderr but never fail the benchmark run.
#[allow(clippy::too_many_arguments)]
fn append_json_line(
    path: &str,
    id: &str,
    median: Duration,
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
) {
    use std::io::Write as _;
    let mut escaped = String::with_capacity(id.len());
    for c in id.chars() {
        match c {
            '"' | '\\' => {
                escaped.push('\\');
                escaped.push(c);
            }
            c if c.is_control() => {
                // JSON-style escape (Rust's escape_default would emit the
                // invalid `\u{..}` form).
                escaped.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => escaped.push(c),
        }
    }
    let line = format!(
        "{{\"id\": \"{escaped}\", \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \
         \"max_ns\": {}, \"samples\": {}}}\n",
        median.as_nanos(),
        mean.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
        samples
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion: cannot append to {path}: {e}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

enum Mode {
    TestOnce,
    Timed { iters: u64 },
}

/// Passed to the benchmark closure; times calls to [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one invocation of `routine` per configured iteration.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
            }
            Mode::Timed { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.samples.push(start.elapsed() / iters as u32);
            }
        }
    }
}

/// Identifier combining a function name and an input parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against one `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks a function with no per-input parameter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
