//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Lengths accepted by [`vec`]: a fixed size or a half-open range.
pub trait SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty length range");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(
            self.start() <= self.end(),
            "cannot sample empty length range"
        );
        self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: a vector whose length is drawn from
/// `len` and whose elements come from `element`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
