//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the runner's RNG.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate; the runner treats
    /// exhaustion as a rejected case.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy producing a clone of a fixed value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as i128;
                let width = (self.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Types with a canonical "generate anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_full_range_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )+};
}

impl_arbitrary_full_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
