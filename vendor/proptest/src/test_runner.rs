//! Deterministic case runner behind the `proptest!` macro.

use crate::strategy::Strategy;

/// SplitMix64 RNG driving value generation. Seeded deterministically per
/// test case so failures reproduce byte-for-byte across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Runner configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated before the
    /// runner gives up (counted globally, like proptest's
    /// `max_global_rejects`).
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is not counted.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Executes the configured number of cases against a strategy.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Runs `test` on `config.cases` generated inputs, panicking on the
    /// first failing case (there is no shrinking; the reported seed index
    /// identifies the failing input deterministically).
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng::new(0x5EED_0000_0000_0000 ^ case_index);
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest: too many global rejects ({} cases passed, {} rejected)",
                            passed, rejected
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed (deterministic case index {case_index}, \
                         after {passed} passing cases): {msg}"
                    );
                }
            }
            case_index += 1;
        }
    }
}
