//! The glob-importable prelude (`use proptest::prelude::*`).

pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (without failing the test) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)*)),
            );
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::Config::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let strategy = ($($strategy,)+);
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(
                &strategy,
                |($($pat,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}
