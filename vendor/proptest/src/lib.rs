//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! integer-range and tuple strategies, [`strategy::Just`], `prop_oneof!`,
//! [`collection::vec`], [`option::of`], `any::<bool>()`, the `proptest!`
//! test macro with `#![proptest_config(...)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking (failures report the case number of a
//! deterministic seed instead of a minimized input), and case generation
//! is deterministic per test so CI failures always reproduce.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
