//! Option strategies (`proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option`s of an inner strategy's values.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Match real proptest's default of mostly-Some (weight 4:1).
        if rng.next_u64().is_multiple_of(5) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `proptest::option::of`: `None` sometimes, `Some(value)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
