//! Deterministic JSON text for the [`Value`](crate::Value) data model.
//!
//! The emitter is canonical: a given `Value` always produces the same
//! bytes (no whitespace, map entries in order, floats in Rust's shortest
//! round-trip decimal form), which is what lets sharded DSE runs be
//! compared and merged byte-for-byte. The parser accepts ordinary JSON
//! (whitespace, escapes, exponent notation).

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes `value` to canonical JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    out
}

/// Parses JSON text and deserializes `T` from it.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Renders `value` as canonical JSON into `out`.
pub fn emit(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            // Rust's Display for floats is the shortest decimal string
            // that round-trips; add ".0" when it looks like an integer so
            // the token parses back as a float.
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(v, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document.
///
/// # Errors
///
/// [`Error`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {pos} of JSON input"
        )));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::custom(format!(
            "expected `{}` at byte {pos} of JSON input",
            c as char
        )))
    }
}

/// Maximum container nesting the parser accepts. Recursion tracks
/// nesting depth, so untrusted input must not be able to turn depth into
/// an uncatchable stack overflow; 128 is far beyond any shard record.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::custom(format!(
            "JSON nesting deeper than {MAX_DEPTH} levels"
        )));
    }
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(Error::custom("unexpected end of JSON input"));
    };
    match b {
        b'n' => parse_keyword(bytes, pos, "null", Value::Null),
        b't' => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::custom("expected `,` or `]` in JSON array")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::custom("expected `,` or `}` in JSON object")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(Error::custom(format!(
            "unexpected character `{}` at byte {pos} of JSON input",
            other as char
        ))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error::custom(format!(
            "invalid JSON literal at byte {pos} (expected `{keyword}`)"
        )))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let token = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::custom("non-UTF-8 number token"))?;
    if float {
        token
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid JSON number `{token}`")))
    } else {
        token
            .parse::<i128>()
            .map(Value::Int)
            .map_err(|_| Error::custom(format!("invalid JSON number `{token}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!(
            "expected a JSON string at byte {pos}"
        )));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(Error::custom("unterminated JSON string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::custom("unterminated escape in JSON string"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("unpaired surrogate in JSON string"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error::custom("unpaired surrogate in JSON string"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "invalid escape `\\{}` in JSON string",
                            other as char
                        )))
                    }
                }
            }
            _ => {
                // Consume one UTF-8 scalar: validate only the next
                // sequence (its length comes from the lead byte), not the
                // whole remaining input — the latter would make string
                // parsing quadratic in the document length.
                let len = match b {
                    0x00..=0x7F => 1,
                    0xC2..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF4 => 4,
                    _ => return Err(Error::custom("non-UTF-8 JSON string")),
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| Error::custom("truncated UTF-8 in JSON string"))?;
                let s = std::str::from_utf8(chunk)
                    .map_err(|_| Error::custom("non-UTF-8 JSON string"))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err(Error::custom("truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| Error::custom("non-UTF-8 \\u escape"))?;
    *pos = end;
    u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-7", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(to_string_value(&v), text);
        }
    }

    fn to_string_value(v: &Value) -> String {
        let mut s = String::new();
        emit(v, &mut s);
        s
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.5, 1.0, -2.25, 1e-5, 2.4414e-5, f64::MIN_POSITIVE] {
            let text = to_string_value(&Value::Float(f));
            let back = parse(&text).unwrap();
            match back {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits(), "{text}"),
                Value::Int(i) => assert_eq!(f, i as f64),
                other => panic!("expected a number, got {other:?}"),
            }
        }
        assert_eq!(to_string_value(&Value::Float(1.0)), "1.0");
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-1.5e3}"#;
        let v = parse(text).unwrap();
        let emitted = to_string_value(&v);
        assert_eq!(parse(&emitted).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""quote \" back \\ newline \n unicode é pair 😀""#).unwrap();
        assert_eq!(
            v,
            Value::Str("quote \" back \\ newline \n unicode é pair 😀".into())
        );
        let emitted = to_string_value(&v);
        assert_eq!(parse(&emitted).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        // 200 000 nested arrays must come back as an error, not a stack
        // overflow abort (dse-merge feeds untrusted files through here).
        let deep = "[".repeat(200_000) + &"]".repeat(200_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.to_string().contains("nesting"), "{e}");
        // Reasonable nesting still parses.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn malformed_surrogate_pairs_are_errors() {
        // High surrogate followed by a non-low-surrogate escape must not
        // underflow in the pair arithmetic.
        assert!(parse(r#""\ud800\u0041""#).is_err());
        assert!(parse(r#""\ud800""#).is_err());
        assert!(parse(r#""\ud800x""#).is_err());
        // A valid pair still decodes.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn typed_entry_points() {
        let v: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v), "[1,2,3]");
    }
}
