//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no network access, so the
//! real serde cannot be fetched. The workspace types only *derive*
//! `Serialize`/`Deserialize` (nothing serializes at runtime), so marker
//! traits with blanket implementations are sufficient: every type
//! satisfies the bounds, and the no-op derives in [`serde_derive`] keep
//! the attribute syntax compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
