//! Offline stand-in for `serde` — a real, minimal, value-based
//! serialization framework.
//!
//! The container this workspace builds in has no network access, so the
//! real serde cannot be fetched. Earlier revisions of this stand-in were
//! no-op marker traits; the sharded-DSE layer (`mamps_core::dse::shard`)
//! now serializes design points to JSON lines and reads them back, so the
//! traits have grown a real data model:
//!
//! * [`Serialize`] maps a type into a [`Value`] tree; [`Deserialize`]
//!   rebuilds the type from one.
//! * [`json`] renders a [`Value`] as deterministic JSON text and parses
//!   JSON text back — [`json::to_string`] / [`json::from_str`] are the
//!   entry points callers use.
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   stand-in) generates the impls for plain structs and enums, honouring
//!   `#[serde(skip)]`.
//!
//! Deliberate differences from real serde, acceptable offline:
//!
//! * The data model is a concrete [`Value`] tree instead of the
//!   `Serializer`/`Deserializer` visitor pair — simpler, and fast enough
//!   for report-sized payloads.
//! * Map keys serialize in a deterministic order (`HashMap` keys are
//!   sorted), so equal values always produce identical bytes.
//! * Non-finite floats serialize as the strings `"NaN"`, `"inf"` and
//!   `"-inf"` (JSON has no literal for them) and parse back.
//! * `&'static str` deserializes through a process-wide intern table
//!   (strategy and interconnect names are 'static in the DSE types).

// Let the generated `::serde::...` paths resolve inside this crate's own
// tests as well.
extern crate self as serde;

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasher;
use std::sync::Mutex;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// The serialized form of any value: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any integer (covers `u64`, `i64`, `usize`, `i128` losslessly).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; entries keep their insertion order.
    Map(Vec<(String, Value)>),
}

/// A `Value::Null` with a `'static` address, used as the fallback for
/// absent object keys (so `Option` fields tolerate missing entries).
static NULL: Value = Value::Null;

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer of an integer value.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

// --- stable hashing --------------------------------------------------------

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over raw bytes. Deliberately not `std::hash::Hasher`:
/// the std trait gives no stability promise across releases, and this hash
/// is persisted to disk (analysis-cache keys), so the algorithm is pinned
/// here byte for byte.
struct Fnv(u64);

impl Fnv {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

fn hash_into(value: &Value, h: &mut Fnv) {
    // Every variant contributes a distinct tag byte and every
    // variable-length payload a length prefix, so structurally different
    // trees never produce the same byte stream.
    match value {
        Value::Null => h.write(&[0]),
        Value::Bool(b) => h.write(&[1, u8::from(*b)]),
        Value::Int(i) => {
            h.write(&[2]);
            h.write(&i.to_le_bytes());
        }
        Value::Float(f) => {
            h.write(&[3]);
            // Bit pattern, not text: the canonical JSON emitter prints the
            // shortest string that round-trips to exactly these bits, so
            // distinct bits <=> distinct canonical text.
            h.write(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            h.write(&[4]);
            h.write_u64(s.len() as u64);
            h.write(s.as_bytes());
        }
        Value::Seq(items) => {
            h.write(&[5]);
            h.write_u64(items.len() as u64);
            for item in items {
                hash_into(item, h);
            }
        }
        Value::Map(entries) => {
            h.write(&[6]);
            h.write_u64(entries.len() as u64);
            for (k, v) in entries {
                h.write_u64(k.len() as u64);
                h.write(k.as_bytes());
                hash_into(v, h);
            }
        }
    }
}

/// Stable 64-bit hash of a [`Value`] tree: FNV-1a over a type-tagged,
/// length-prefixed walk, without materializing the JSON text.
///
/// "Stable" means the result depends only on the value — not on the
/// process, platform, pointer layout, or std release — so it is safe to
/// persist (the analysis cache keys its on-disk entries by this hash).
/// Two values hash equal exactly when their canonical JSON bytes are
/// equal; map entries hash in their stored order, which for serialized
/// `HashMap`s is already sorted (see [`Serialize`] for `HashMap`).
pub fn stable_hash(value: &Value) -> u64 {
    let mut h = Fnv(FNV_OFFSET);
    hash_into(value, &mut h);
    h.0
}

/// [`stable_hash`] of `value.to_value()`.
pub fn stable_hash_of<T: Serialize + ?Sized>(value: &T) -> u64 {
    stable_hash(&value.to_value())
}

/// Looks up `key` in a map's entries, falling back to `null` when the key
/// is absent (derived `Option` fields then read as `None`).
pub fn map_get<'v>(entries: &'v [(String, Value)], key: &str) -> &'v Value {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a preformatted message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// "expected X while deserializing Y" construction helper.
    pub fn expected(what: &str, context: &str) -> Error {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization failed: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
///
/// The lifetime parameter mirrors real serde's `Deserialize<'de>` so
/// existing `use serde::{Deserialize, Serialize}` derive sites keep
/// compiling; this stand-in never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// [`Error`] when `value` does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// A value tree serializes as itself: this lets containers carry opaque
/// pass or checkpoint state (`Value` payloads of unknown shape) through
/// the same derive-based plumbing as concrete types.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// --- primitive impls -------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_int()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

fn float_to_value(f: f64) -> Value {
    if f.is_nan() {
        Value::Str("NaN".into())
    } else if f == f64::INFINITY {
        Value::Str("inf".into())
    } else if f == f64::NEG_INFINITY {
        Value::Str("-inf".into())
    } else {
        Value::Float(f)
    }
}

fn float_from_value(value: &Value) -> Result<f64, Error> {
    match value {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        Value::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            _ => Err(Error::expected("number", "f64")),
        },
        _ => Err(Error::expected("number", "f64")),
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        float_to_value(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        float_from_value(value)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        float_to_value(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        float_from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Process-wide intern table backing `&'static str` deserialization: the
/// DSE types store strategy and interconnect names as `&'static str`, so
/// reading them back requires a `'static` home for each distinct string.
/// The table is bounded by the number of distinct strings ever read.
static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Interns `s`, returning a `'static` copy (leaked once per distinct
/// string).
pub fn intern(s: &str) -> &'static str {
    let mut table = INTERNED.lock().expect("intern table poisoned");
    if let Some(hit) = table.iter().find(|x| **x == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

impl<'de> Deserialize<'de> for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(intern)
            .ok_or_else(|| Error::expected("string", "&'static str"))
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// Externally tagged, like real serde: `{"Ok": v}` / `{"Err": e}`.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(v) => Value::Map(vec![("Ok".to_string(), v.to_value())]),
            Err(e) => Value::Map(vec![("Err".to_string(), e.to_value())]),
        }
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_map() {
            Some([(tag, v)]) if tag == "Ok" => T::from_value(v).map(Ok),
            Some([(tag, v)]) if tag == "Err" => E::from_value(v).map(Err),
            _ => Err(Error::expected("{\"Ok\": …} or {\"Err\": …}", "Result")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $i; 1 })+;
                let s = value
                    .as_seq()
                    .ok_or_else(|| Error::expected("array", "tuple"))?;
                if s.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected a {LEN}-element array for a tuple, found {}",
                        s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize, S: BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sorted keys: equal maps must always serialize to identical bytes.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>, S: BuildHasher + Default> Deserialize<'de>
    for HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(
            f64::from_value(&f64::NEG_INFINITY.to_value()),
            Ok(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn integer_range_checked() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert_eq!(u64::from_value(&Value::Int(u64::MAX as i128)), Ok(u64::MAX));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        assert_eq!(Vec::<(u64, String)>::from_value(&v.to_value()), Ok(v));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Option::<u32>::from_value(&Some(3u32).to_value()),
            Ok(Some(3))
        );
        let mut m = HashMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(HashMap::<String, u64>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn hashmap_keys_sorted() {
        let mut m = HashMap::new();
        m.insert("zz".to_string(), 1u64);
        m.insert("aa".to_string(), 2u64);
        let Value::Map(entries) = m.to_value() else {
            panic!("map expected");
        };
        assert_eq!(entries[0].0, "aa");
        assert_eq!(entries[1].0, "zz");
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("greedy-test-name");
        let b = intern("greedy-test-name");
        assert!(std::ptr::eq(a, b));
        assert_eq!(
            <&'static str>::from_value(&Value::Str("x1".into())),
            Ok("x1")
        );
    }

    #[test]
    fn result_round_trips() {
        let ok: Result<u64, String> = Ok(5);
        let err: Result<u64, String> = Err("boom".into());
        assert_eq!(Result::from_value(&ok.to_value()), Ok(ok));
        assert_eq!(Result::from_value(&err.to_value()), Ok(err));
        assert!(Result::<u64, String>::from_value(&Value::Int(1)).is_err());
        assert!(Result::<u64, String>::from_value(&Value::Map(vec![(
            "Huh".into(),
            Value::Int(1)
        )]))
        .is_err());
    }

    #[test]
    fn stable_hash_is_pinned() {
        // The hash is persisted to disk, so the algorithm must never
        // drift: pin a few values to their current results.
        assert_eq!(stable_hash(&Value::Null), 0xaf63_bd4c_8601_b7df);
        assert_eq!(stable_hash_of(&0u64), stable_hash(&Value::Int(0)));
        assert_eq!(
            stable_hash_of(&vec![1u64, 2, 3]),
            stable_hash(&Value::Seq(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
    }

    #[test]
    fn stable_hash_distinguishes_shapes() {
        // Tag + length prefixes: values whose flattened payload bytes
        // coincide must still hash apart.
        let cases = [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::Float(0.0),
            Value::Str(String::new()),
            Value::Seq(vec![]),
            Value::Map(vec![]),
            Value::Str("ab".into()),
            Value::Seq(vec![Value::Str("a".into()), Value::Str("b".into())]),
            Value::Map(vec![("a".into(), Value::Str("b".into()))]),
            Value::Seq(vec![Value::Seq(vec![Value::Int(1)])]),
            Value::Seq(vec![Value::Seq(vec![]), Value::Int(1)]),
        ];
        for (i, a) in cases.iter().enumerate() {
            for b in &cases[i + 1..] {
                assert_ne!(stable_hash(a), stable_hash(b), "{a:?} vs {b:?}");
            }
        }
        assert_eq!(
            stable_hash(&Value::Float(1.0)),
            stable_hash(&Value::Float(1.0))
        );
        assert_ne!(
            stable_hash(&Value::Float(0.0)),
            stable_hash(&Value::Float(-0.0)),
            "distinct canonical text (0 vs -0) must hash apart"
        );
    }

    #[test]
    fn missing_map_keys_read_as_null() {
        let entries = vec![("present".to_string(), Value::Int(1))];
        assert!(map_get(&entries, "absent").is_null());
        assert_eq!(map_get(&entries, "present").as_int(), Some(1));
    }
}
