//! Real derive macros standing in for `serde_derive`, built on
//! `proc_macro` alone (the offline container has no `syn`/`quote`).
//!
//! The derives target the value-based data model of the sibling `serde`
//! stand-in: `Serialize::to_value(&self) -> Value` and
//! `Deserialize::from_value(&Value) -> Result<Self, Error>`. Supported
//! shapes — which cover every derive site in this workspace:
//!
//! * structs with named fields → `Value::Map` in declaration order;
//! * newtype structs (one unnamed field) → the inner value transparently;
//! * tuple structs → `Value::Seq`;
//! * unit structs → `Value::Null`;
//! * enums: unit variants → `Value::Str(name)`; data variants →
//!   single-entry `Value::Map` keyed by the variant name (newtype payloads
//!   inline, tuple payloads as a `Seq`, struct payloads as a `Map`) — the
//!   externally-tagged representation real serde uses;
//! * `#[serde(skip)]` on named fields (omitted on write, `Default` on
//!   read).
//!
//! Generic type/lifetime parameters are rejected with a compile error;
//! nothing in this workspace derives on a generic type. Field *types*
//! never need parsing: the generated code calls trait methods and lets
//! inference resolve them against the struct definition.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A field of a named-field struct or struct enum variant.
struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    /// Unnamed fields (tuple struct / tuple variant); the count.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("generated code must tokenize")
}

// --- input parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected a type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive: generic type `{name}` is not supported by the offline stand-in"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                _ => {
                    return Err(format!(
                        "serde derive: unsupported struct body for `{name}`"
                    ))
                }
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err(format!("serde derive: expected an enum body for `{name}`")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("serde derive: unsupported item `{other}`")),
    }
}

/// Advances past leading attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`), returning whether any skipped attribute was
/// `#[serde(skip)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    skip |= attr_is_serde_skip(g.stream());
                    *i += 2;
                } else {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return skip,
        }
    }
}

/// True for the token stream of a `[serde(skip)]` attribute body.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Skips one field type: everything up to a comma at angle-bracket depth
/// zero (commas inside `HashMap<K, V>` are at the same token level, so
/// `<`/`>` must be tracked; parenthesised types are opaque groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde derive: expected a field name, got {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde derive: expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the comma (or past the end)
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        i += 1; // the comma
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde derive: expected a variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// --- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let mut b = String::from("let mut entries = ::std::vec::Vec::new();\n");
                    for f in fields.iter().filter(|f| !f.skip) {
                        b.push_str(&format!(
                            "entries.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                            f.name, f.name
                        ));
                    }
                    b.push_str("::serde::Value::Map(entries)");
                    b
                }
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut payload =
                            String::from("{ let mut entries = ::std::vec::Vec::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            payload.push_str(&format!(
                                "entries.push(({:?}.to_string(), ::serde::Serialize::to_value({})));\n",
                                f.name, f.name
                            ));
                        }
                        payload.push_str("::serde::Value::Map(entries) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![({vn:?}.to_string(), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// `Foo { a: ..., b: ... }` construction from a map's entries.
fn named_ctor(path: &str, fields: &[Field], entries_expr: &str, context: &str) -> String {
    let mut b = format!("{path} {{\n");
    for f in fields {
        if f.skip {
            b.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            b.push_str(&format!(
                "{}: ::serde::Deserialize::from_value(::serde::map_get({entries_expr}, {:?}))\
                 .map_err(|e| ::serde::Error::custom(format!(\"{context}.{}: {{e}}\")))?,\n",
                f.name, f.name, f.name
            ));
        }
    }
    b.push('}');
    b
}

/// `Foo(seq[0]..., seq[1]...)` construction from a checked sequence.
fn tuple_ctor(path: &str, n: usize, seq_expr: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{seq_expr}[{i}])?"))
        .collect();
    format!("{path}({})", items.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => format!(
                    "let entries = value.as_map().ok_or_else(|| \
                         ::serde::Error::expected(\"object\", {name:?}))?;\n\
                     ::std::result::Result::Ok({})",
                    named_ctor(name, fields, "entries", name)
                ),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                Shape::Tuple(n) => format!(
                    "let seq = value.as_seq().ok_or_else(|| \
                         ::serde::Error::expected(\"array\", {name:?}))?;\n\
                     if seq.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"expected {n} elements for {name}, found {{}}\", seq.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({})",
                    tuple_ctor(name, *n, "seq")
                ),
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Shape::Tuple(n) => data_arms.push_str(&format!(
                        "{vn:?} => {{\n\
                             let seq = payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::expected(\"array\", {vn:?}))?;\n\
                             if seq.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"expected {n} elements for {name}::{vn}, found {{}}\", seq.len())));\n\
                             }}\n\
                             return ::std::result::Result::Ok({});\n\
                         }}\n",
                        tuple_ctor(&format!("{name}::{vn}"), *n, "seq")
                    )),
                    Shape::Named(fields) => data_arms.push_str(&format!(
                        "{vn:?} => {{\n\
                             let entries = payload.as_map().ok_or_else(|| \
                                 ::serde::Error::expected(\"object\", {vn:?}))?;\n\
                             return ::std::result::Result::Ok({});\n\
                         }}\n",
                        named_ctor(&format!("{name}::{vn}"), fields, "entries", vn)
                    )),
                }
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::std::option::Option::Some(tag) = value.as_str() {{\n\
                             match tag {{\n{unit_arms}\
                                 other => return ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }}\n\
                         }}\n\
                         if let ::std::option::Option::Some(entries) = value.as_map() {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                                 match tag.as_str() {{\n{data_arms}\
                                     other => return ::std::result::Result::Err(::serde::Error::custom(\
                                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::Error::expected(\
                             \"a variant tag\", {name:?}))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
