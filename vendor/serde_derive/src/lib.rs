//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds in an offline container, so the real crates.io
//! dependency graph is unavailable. Nothing in this repository serializes
//! through serde at runtime — the `#[derive(Serialize, Deserialize)]`
//! attributes only declare intent for downstream users — so the derives
//! expand to nothing. The `attributes(serde)` registration keeps field
//! attributes like `#[serde(skip)]` compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
