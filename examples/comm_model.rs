//! The Fig. 4 communication model, explored interactively.
//!
//! Expands a single inter-tile channel into the paper's parameterized
//! interconnect model, prints the resulting SDF graph, and shows how the
//! guaranteed throughput reacts to the model parameters: token size
//! (fragmentation into 32-bit words), SDM wire count (bandwidth), mesh
//! distance (latency/pipelining), and CA offloading.
//!
//! Run with: `cargo run --release --example comm_model`

use mamps::mapping::flow::{map_application, MapOptions};
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::{CommParams, Interconnect};
use mamps::platform::types::TileId;
use mamps::sdf::dot::to_dot;
use mamps::sdf::graph::SdfGraphBuilder;
use mamps::sdf::model::HomogeneousModelBuilder;

fn two_actor_app(token_size: u64) -> mamps::sdf::model::ApplicationModel {
    let mut b = SdfGraphBuilder::new("pair");
    let src = b.add_actor("src", 1);
    let dst = b.add_actor("dst", 1);
    b.add_channel_full("link", src, 1, dst, 1, 0, token_size);
    let g = b.build().unwrap();
    let mut mb = HomogeneousModelBuilder::new("microblaze");
    mb.actor("src", 200, 2048, 256).actor("dst", 200, 2048, 256);
    mb.finish(g, None).unwrap()
}

fn bound(app: &mamps::sdf::model::ApplicationModel, arch: &Architecture) -> f64 {
    map_application(app, arch, &MapOptions::default())
        .map(|m| m.analysis.as_f64())
        .unwrap_or(0.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Show the expansion of one channel.
    let app = two_actor_app(128); // 32-word tokens
    let arch = Architecture::homogeneous("demo", 2, Interconnect::fsl())?;
    let mapped = map_application(&app, &arch, &MapOptions::default())?;
    println!("--- Fig. 4 expansion of channel `link` (DOT) ---");
    println!("{}", to_dot(&mapped.expanded.graph));
    println!(
        "expanded graph: {} actors, {} channels (from 2 actors, 1 channel)",
        mapped.expanded.graph.actor_count(),
        mapped.expanded.graph.channel_count()
    );

    // Fig. 4 parameters per interconnect.
    println!("\n--- connection parameters ---");
    let fsl = CommParams::for_connection(&Interconnect::fsl(), TileId(0), TileId(1), 0);
    println!(
        "FSL:           w={} alpha_n={} latency={} cycles/word={}",
        fsl.w, fsl.alpha_n, fsl.latency, fsl.cycles_per_word
    );
    let noc = Interconnect::noc_for_tiles(9);
    for (to, wires) in [(1usize, 1u32), (1, 4), (8, 4)] {
        let p = CommParams::for_connection(&noc, TileId(0), TileId(to), wires);
        println!(
            "NoC to tile {to} ({wires} wires): w={} alpha_n={} latency={} cycles/word={}",
            p.w, p.alpha_n, p.latency, p.cycles_per_word
        );
    }

    // Sensitivity of the guaranteed bound.
    println!("\n--- guaranteed bound vs token size (FSL, 2 tiles) ---");
    for ts in [4u64, 32, 128, 512] {
        let app = two_actor_app(ts);
        println!(
            "  {ts:>4}-byte tokens: {:.4e} iterations/cycle",
            bound(&app, &arch)
        );
    }

    println!("\n--- guaranteed bound vs serialization engine (512-byte tokens) ---");
    let big = two_actor_app(512);
    let plain = bound(&big, &arch);
    let ca_arch = Architecture::homogeneous_with_ca("ca", 2, Interconnect::fsl())?;
    let ca = bound(&big, &ca_arch);
    println!("  PE serialization: {plain:.4e}");
    println!("  CA offload:       {ca:.4e}  (x{:.2})", ca / plain);
    assert!(ca > plain);
    Ok(())
}
