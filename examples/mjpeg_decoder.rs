//! The paper's case study (§6): the MJPEG decoder mapped to MAMPS.
//!
//! Reproduces the evaluation end to end: runs the automated flow on the
//! Fig. 5 application, prints the Table 1 designer-effort report (automated
//! rows timed live), regenerates both panels of Fig. 6 (FSL and NoC), and
//! writes the generated Xilinx-style project to `target/mamps_mjpeg/`.
//!
//! Run with: `cargo run --release --example mjpeg_decoder`

use mamps::flow::experiments::{fig6_experiment, table1};
use mamps::flow::report::{render_fig6, render_table1};
use mamps::mjpeg::encoder::StreamConfig;
use mamps::platform::interconnect::Interconnect;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = StreamConfig::small();
    println!(
        "MJPEG case study: {}x{} 4:2:0, quality {}, {} MCUs/frame\n",
        cfg.width,
        cfg.height,
        cfg.quality,
        cfg.mcus_per_frame()
    );

    let tiles = 3;
    let iterations = 300;

    let (flow_fsl, rows_fsl) = fig6_experiment(&cfg, tiles, Interconnect::fsl(), iterations)?;
    println!("{}", render_table1(&table1(&flow_fsl.timings)));
    println!(
        "{}",
        render_fig6("Fig 6(a): FSL interconnect (MCU/MHz/s)", &rows_fsl)
    );

    let (_, rows_noc) =
        fig6_experiment(&cfg, tiles, Interconnect::noc_for_tiles(tiles), iterations)?;
    println!(
        "{}",
        render_fig6("Fig 6(b): NoC interconnect (MCU/MHz/s)", &rows_noc)
    );

    // Every sequence must honour the guarantee (the paper's headline).
    for r in rows_fsl.iter().chain(rows_noc.iter()) {
        assert!(
            r.guarantee().holds(),
            "{} violates the guarantee",
            r.sequence
        );
    }
    println!("guarantee holds for all sequences on both interconnects.");

    // Write the generated platform project.
    let out = std::path::Path::new("target/mamps_mjpeg");
    flow_fsl.project.write_to(out)?;
    println!(
        "generated project ({} files) written to {}",
        flow_fsl.project.file_count(),
        out.display()
    );
    Ok(())
}
