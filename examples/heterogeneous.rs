//! Heterogeneous mapping: a hardware IDCT accelerator (Tile 4 of paper
//! Fig. 3).
//!
//! The application model lists *two* implementations of the IDCT actor —
//! the MicroBlaze C function and a hardware IP block with a much lower
//! WCET (paper §3: "the application model can specify multiple
//! implementations for each actor ... allows the tool flow to map the
//! actors on a heterogeneous platform"). The flow picks the implementation
//! matching each tile's processor type; adding the IP tile raises the
//! guaranteed bound.
//!
//! Run with: `cargo run --release --example heterogeneous`

use std::collections::HashMap;

use mamps::flow::{run_flow, run_flow_with_arch, FlowOptions};
use mamps::mjpeg::app_model::mjpeg_application;
use mamps::mjpeg::encoder::StreamConfig;
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::Interconnect;
use mamps::platform::tile::TileConfig;
use mamps::sdf::model::{ActorImplementation, ApplicationModel};

/// Clones the MJPEG model, adding a hardware implementation of IDCT.
fn with_hardware_idct(cfg: &StreamConfig) -> ApplicationModel {
    let base = mjpeg_application(cfg, None).unwrap();
    let graph = base.graph().clone();
    let mut impls: HashMap<String, Vec<ActorImplementation>> = HashMap::new();
    for (aid, actor) in graph.actors() {
        let mut list = base.implementations(aid).to_vec();
        if actor.name() == "IDCT" {
            let sw = &list[0];
            list.push(ActorImplementation {
                processor_type: "hardware-ip".into(),
                function_name: "idct_ip_core".into(),
                wcet: sw.wcet / 12, // dedicated pipeline, ~one coefficient/cycle
                instruction_memory: 0,
                data_memory: 0,
                args: sw.args.clone(),
            });
        }
        impls.insert(actor.name().to_string(), list);
    }
    ApplicationModel::new(graph, impls, None).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = StreamConfig::small();
    let app = with_hardware_idct(&cfg);

    // Baseline: three MicroBlaze tiles.
    let sw = run_flow(&app, 3, Interconnect::fsl(), &FlowOptions::default())?;
    println!(
        "software-only (3 MicroBlaze):   {:>8.0} cycles/MCU",
        1.0 / sw.guaranteed_throughput()
    );

    // Heterogeneous: two MicroBlaze tiles + the IDCT IP block on the NI.
    let tiles = vec![
        TileConfig::master("tile0"),
        TileConfig::slave("tile1"),
        TileConfig::hardware_ip("idct_ip"),
    ];
    let arch = Architecture::new("hetero", tiles, Interconnect::fsl())?;
    let hw = run_flow_with_arch(&app, arch, &FlowOptions::default())?;
    println!(
        "with IDCT accelerator:          {:>8.0} cycles/MCU",
        1.0 / hw.guaranteed_throughput()
    );

    let idct = app.graph().actor_by_name("IDCT").unwrap();
    let chosen = &hw.mapped.mapping.binding.processor_of[idct.0];
    println!("IDCT implementation chosen:     {chosen}");
    assert_eq!(chosen.name(), "hardware-ip");
    assert!(
        hw.guaranteed_throughput() > sw.guaranteed_throughput(),
        "the accelerator should raise the bound"
    );
    println!(
        "speedup of the guaranteed bound: {:.2}x",
        hw.guaranteed_throughput() / sw.guaranteed_throughput()
    );
    Ok(())
}
