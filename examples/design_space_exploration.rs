//! Fast design-space exploration with the automated flow (paper §7).
//!
//! Sweeps tile counts × interconnects × binding strategies for the MJPEG
//! decoder, printing every feasible design point (guaranteed throughput,
//! platform area, allocated NoC wire-links) with its Pareto front — the
//! "very fast design space exploration" the paper's conclusion highlights,
//! made possible because one flow run takes milliseconds instead of days.
//! The strategy column shows where a non-greedy binder matches or beats
//! the default heuristic.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use mamps::flow::dse::explore_report;
use mamps::flow::report::render_dse_report;
use mamps::flow::FlowOptions;
use mamps::mapping::strategy;
use mamps::mjpeg::app_model::mjpeg_application;
use mamps::mjpeg::encoder::StreamConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = StreamConfig::small();
    let app = mjpeg_application(&cfg, None)?;

    // Sweep every registered binding strategy over 1..=5 tiles, both
    // interconnects, with one worker per core.
    let opts = FlowOptions {
        binders: strategy::registry()
            .iter()
            .map(|(_, make)| make())
            .collect(),
        jobs: mamps::flow::parallel::default_jobs(),
        ..FlowOptions::default()
    };
    let report = explore_report(&app, &[1, 2, 3, 4, 5], true, &opts);
    println!("--- design points, all binders (Pareto front marked *) ---");
    println!("{}", render_dse_report(&report));

    let best = &report.points[0];
    println!(
        "best throughput: {} binder, {} tiles over {} at {:.3e} iterations/cycle ({:.0} cycles/MCU)",
        best.strategy,
        best.tiles,
        best.interconnect,
        best.guaranteed,
        1.0 / best.guaranteed
    );
    assert!(!report.points.is_empty());
    Ok(())
}
