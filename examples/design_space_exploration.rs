//! Fast design-space exploration with the automated flow (paper §7).
//!
//! Sweeps tile counts and interconnects for the MJPEG decoder, printing
//! every feasible design point (guaranteed throughput and platform area)
//! plus the Pareto front — the "very fast design space exploration" the
//! paper's conclusion highlights, made possible because one flow run takes
//! milliseconds instead of days.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use mamps::flow::dse::{explore, pareto_front};
use mamps::flow::report::render_dse;
use mamps::mjpeg::app_model::mjpeg_application;
use mamps::mjpeg::encoder::StreamConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = StreamConfig::small();
    let app = mjpeg_application(&cfg, None)?;

    let points = explore(&app, &[1, 2, 3, 4, 5], true);
    println!("--- all design points (sorted by guaranteed throughput) ---");
    println!("{}", render_dse(&points));

    let front = pareto_front(&points);
    println!("--- Pareto front (throughput vs area) ---");
    println!("{}", render_dse(&front));

    let best = &points[0];
    println!(
        "best throughput: {} tiles over {} at {:.3e} iterations/cycle ({:.0} cycles/MCU)",
        best.tiles,
        best.interconnect,
        best.guaranteed,
        1.0 / best.guaranteed
    );
    assert!(!front.is_empty());
    Ok(())
}
