//! Regenerates the checked-in interchange XML pair under `examples/data/`:
//! a one-frame small-geometry MJPEG decoder application and a 3-tile
//! homogeneous FSL architecture. The CI smoke job feeds these files to the
//! `mamps` CLI.
//!
//! ```text
//! cargo run --example export_interchange [out-dir]
//! ```

use mamps::mjpeg::app_model::mjpeg_application;
use mamps::mjpeg::encoder::StreamConfig;
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::Interconnect;
use mamps::platform::xml::architecture_to_xml;
use mamps::sdf::xml::application_to_xml;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/data".to_string());
    let dir = std::path::Path::new(&out);
    std::fs::create_dir_all(dir)?;

    let cfg = StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    };
    let app = mjpeg_application(&cfg, None)?;
    let app_path = dir.join("mjpeg_small_app.xml");
    std::fs::write(&app_path, application_to_xml(&app))?;
    println!("wrote {}", app_path.display());

    let arch = Architecture::homogeneous("fsl3", 3, Interconnect::fsl())?;
    let arch_path = dir.join("fsl_3tile_arch.xml");
    std::fs::write(&arch_path, architecture_to_xml(&arch))?;
    println!("wrote {}", arch_path.display());

    Ok(())
}
