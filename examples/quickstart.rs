//! Quickstart: the complete flow on the example graph of paper Fig. 2.
//!
//! Builds the three-actor SDF graph with a stateful actor (self-edge),
//! attaches an application model, runs the automated flow on a two-tile
//! FSL platform, and validates the guarantee by executing the generated
//! platform.
//!
//! Run with: `cargo run --example quickstart`

use mamps::flow::{run_flow, FlowOptions, GuaranteeReport};
use mamps::platform::interconnect::Interconnect;
use mamps::sdf::dot::to_dot;
use mamps::sdf::graph::SdfGraphBuilder;
use mamps::sdf::model::HomogeneousModelBuilder;
use mamps::sdf::repetition::repetition_vector;
use mamps::sim::{render_gantt, System, WcetTimes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The SDF graph of paper Fig. 2: A (stateful), B, C.
    let mut b = SdfGraphBuilder::new("fig2");
    let a = b.add_actor("A", 500);
    let bb = b.add_actor("B", 300);
    let c = b.add_actor("C", 400);
    b.add_channel("a2b", a, 2, bb, 1);
    b.add_channel("a2c", a, 1, c, 1);
    b.add_channel("b2c", bb, 1, c, 2);
    b.add_channel_with_tokens("selfA", a, 1, a, 1, 1); // explicit actor state
    let graph = b.build()?;

    println!("--- application graph (Graphviz DOT) ---");
    println!("{}", to_dot(&graph));
    let q = repetition_vector(&graph)?;
    println!(
        "repetition vector: A={} B={} C={}",
        q.of(a),
        q.of(bb),
        q.of(c)
    );

    // Application model: one MicroBlaze implementation per actor
    // (WCET, instruction memory, data memory).
    let mut model = HomogeneousModelBuilder::new("microblaze");
    model
        .actor("A", 500, 6 * 1024, 1024)
        .actor("B", 300, 4 * 1024, 512)
        .actor("C", 400, 4 * 1024, 512);
    let app = model.finish(graph, None)?;

    // The automated flow: architecture generation, mapping, platform
    // generation, synthesis (executable platform elaboration).
    let result = run_flow(&app, 2, Interconnect::fsl(), &FlowOptions::default())?;
    println!("\n--- flow results ---");
    println!(
        "guaranteed worst-case throughput: {:.3e} iterations/cycle ({:.0} cycles/iteration)",
        result.guaranteed_throughput(),
        1.0 / result.guaranteed_throughput()
    );
    println!("generated project files:");
    for f in result.project.files.keys() {
        println!("  {f}");
    }

    // Validate by running the generated platform at WCET, with a trace of
    // the first iterations for the Gantt view.
    let times = WcetTimes::new(result.mapped.mapping.binding.wcet_of.clone());
    let system = System::new(app.graph(), &result.mapped.mapping, &result.arch, &times)?;
    let (measurement, events) = system.run_traced(200, 100_000_000, 4000)?;
    println!("\n--- first 5000 cycles of the platform ---");
    println!("{}", render_gantt(&events, 5000, 100));
    let report = GuaranteeReport::new(
        result.guaranteed_throughput(),
        measurement.steady_throughput(),
    );
    println!(
        "\nmeasured at WCET: {:.3e} iterations/cycle (margin {:.3}x) -> guarantee {}",
        report.measured,
        report.margin,
        if report.holds() { "HOLDS" } else { "VIOLATED" }
    );
    assert!(report.holds());
    Ok(())
}
