//! Cross-crate integration: the complete flow on the MJPEG case study, and
//! the paper's headline guarantees as assertions.

use mamps::flow::experiments::{ca_overhead_experiment, fig6_experiment};
use mamps::flow::{run_flow, FlowOptions};
use mamps::mjpeg::app_model::mjpeg_application;
use mamps::mjpeg::encoder::StreamConfig;
use mamps::platform::interconnect::Interconnect;

fn small_cfg() -> StreamConfig {
    StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    }
}

/// Fig. 6(a): on FSL, every sequence honours the guarantee, the synthetic
/// sequence has the smallest margin, and expected tracks measured closely.
#[test]
fn fig6a_fsl_guarantees_and_shape() {
    let (_, rows) = fig6_experiment(&small_cfg(), 3, Interconnect::fsl(), 80).unwrap();
    assert_eq!(rows.len(), 6);
    let synth = &rows[0];
    assert_eq!(synth.sequence, "synthetic");
    for r in &rows {
        assert!(r.guarantee().holds(), "{} violated", r.sequence);
        assert!(r.expected >= r.worst_case * (1.0 - 1e-9));
        assert!(
            r.expected_measured_gap() < 0.02,
            "{}: expected/measured gap {}",
            r.sequence,
            r.expected_measured_gap()
        );
        assert!(
            synth.guarantee().margin <= r.guarantee().margin + 1e-9,
            "synthetic must have the tightest margin"
        );
    }
    // The synthetic margin is tight-ish: the bound is meaningful.
    assert!(synth.guarantee().margin < 1.6);
}

/// Fig. 6(b): the same holds on the NoC, with a lower absolute bound
/// (higher latency and per-word cost, paper §5.3.1).
#[test]
fn fig6b_noc_guarantees_and_comparison() {
    let (flow_noc, rows_noc) =
        fig6_experiment(&small_cfg(), 3, Interconnect::noc_for_tiles(3), 80).unwrap();
    for r in &rows_noc {
        assert!(r.guarantee().holds(), "{} violated on NoC", r.sequence);
    }
    let (flow_fsl, _) = fig6_experiment(&small_cfg(), 3, Interconnect::fsl(), 10).unwrap();
    assert!(
        flow_noc.guaranteed_throughput() <= flow_fsl.guaranteed_throughput(),
        "NoC bound must not beat FSL on the same mapping scale"
    );
}

/// §6.3: moving (de-)serialization to a CA increases the predicted
/// throughput substantially (paper: up to 300 %).
#[test]
fn ca_overhead_study() {
    let r = ca_overhead_experiment(&small_cfg(), 3, Interconnect::fsl()).unwrap();
    assert!(
        r.speedup() > 1.05,
        "expected a clear speedup, got {:.3}",
        r.speedup()
    );
    assert!(r.speedup() < 5.0, "speedup {:.3} implausible", r.speedup());
}

/// The generated project is complete and writable for the case study.
#[test]
fn mjpeg_project_generation() {
    let app = mjpeg_application(&small_cfg(), None).unwrap();
    let flow = run_flow(&app, 3, Interconnect::fsl(), &FlowOptions::default()).unwrap();
    let p = &flow.project;
    assert!(p.files.contains_key("mamps_system.mhs"));
    assert!(p.files.contains_key("system.tcl"));
    assert!(p.files.keys().any(|k| k.ends_with("main.c")));
    // The netlist instantiates every tile and the schedule tables mention
    // the decoder actors.
    let mains: String = p
        .files
        .iter()
        .filter(|(k, _)| k.ends_with("main.c"))
        .map(|(_, v)| v.clone())
        .collect();
    for actor in ["VLD", "IQZZ", "IDCT", "CC", "Raster"] {
        assert!(mains.contains(&format!("fire_{actor}")), "{actor} missing");
    }
    // Memory maps respect the MAMPS limit.
    for m in &p.memory {
        assert!(m.imem_bytes + m.dmem_bytes <= 256 * 1024);
    }
}

/// A throughput constraint is honoured end to end or rejected.
#[test]
fn throughput_constraint_respected() {
    use mamps::sdf::model::ThroughputConstraint;
    // Achievable: one MCU per 100k cycles.
    let app = mjpeg_application(
        &small_cfg(),
        Some(ThroughputConstraint {
            iterations: 1,
            cycles: 100_000,
        }),
    )
    .unwrap();
    let flow = run_flow(&app, 3, Interconnect::fsl(), &FlowOptions::default()).unwrap();
    assert!(flow.guaranteed_throughput() >= 1.0 / 100_000.0);

    // Unachievable: one MCU per 100 cycles.
    let app = mjpeg_application(
        &small_cfg(),
        Some(ThroughputConstraint {
            iterations: 1,
            cycles: 100,
        }),
    )
    .unwrap();
    assert!(run_flow(&app, 3, Interconnect::fsl(), &FlowOptions::default()).is_err());
}
