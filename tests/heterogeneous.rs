//! Heterogeneous platform integration: multiple implementations per actor
//! (paper §3), hardware-IP tiles (Fig. 3 Tile 4), and CA tiles, verified
//! through analysis *and* simulation.

use std::collections::HashMap;

use mamps::flow::{run_flow, run_flow_with_arch, FlowOptions};
use mamps::mjpeg::app_model::mjpeg_application;
use mamps::mjpeg::encoder::StreamConfig;
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::Interconnect;
use mamps::platform::tile::TileConfig;
use mamps::sdf::model::{ActorImplementation, ApplicationModel};
use mamps::sim::{System, WcetTimes};

fn cfg() -> StreamConfig {
    StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    }
}

fn with_hardware_idct() -> ApplicationModel {
    let base = mjpeg_application(&cfg(), None).unwrap();
    let graph = base.graph().clone();
    let mut impls: HashMap<String, Vec<ActorImplementation>> = HashMap::new();
    for (aid, actor) in graph.actors() {
        let mut list = base.implementations(aid).to_vec();
        if actor.name() == "IDCT" {
            let sw = &list[0];
            list.push(ActorImplementation {
                processor_type: "hardware-ip".into(),
                function_name: "idct_ip_core".into(),
                wcet: sw.wcet / 12,
                instruction_memory: 0,
                data_memory: 0,
                args: sw.args.clone(),
            });
        }
        impls.insert(actor.name().to_string(), list);
    }
    ApplicationModel::new(graph, impls, None).unwrap()
}

fn hetero_arch() -> Architecture {
    Architecture::new(
        "hetero",
        vec![
            TileConfig::master("tile0"),
            TileConfig::slave("tile1"),
            TileConfig::hardware_ip("idct_ip"),
        ],
        Interconnect::fsl(),
    )
    .unwrap()
}

#[test]
fn binder_selects_hardware_implementation() {
    let app = with_hardware_idct();
    let hw = run_flow_with_arch(&app, hetero_arch(), &FlowOptions::default()).unwrap();
    let idct = app.graph().actor_by_name("IDCT").unwrap();
    assert_eq!(
        hw.mapped.mapping.binding.processor_of[idct.0].name(),
        "hardware-ip"
    );
    // Other actors stay on MicroBlaze tiles.
    let vld = app.graph().actor_by_name("VLD").unwrap();
    assert_eq!(
        hw.mapped.mapping.binding.processor_of[vld.0].name(),
        "microblaze"
    );
}

#[test]
fn accelerator_improves_bound_and_guarantee_still_holds() {
    let app = with_hardware_idct();
    let sw = run_flow(&app, 3, Interconnect::fsl(), &FlowOptions::default()).unwrap();
    let hw = run_flow_with_arch(&app, hetero_arch(), &FlowOptions::default()).unwrap();
    assert!(hw.guaranteed_throughput() > sw.guaranteed_throughput());

    // The simulated heterogeneous platform (autonomous IP worker, NI
    // streaming) still honours the analysed bound at WCET.
    let times = WcetTimes::new(hw.mapped.mapping.binding.wcet_of.clone());
    let system = System::new(app.graph(), &hw.mapped.mapping, &hw.arch, &times).unwrap();
    let measured = system.run(100, 10_000_000_000).unwrap().steady_throughput();
    assert!(
        measured >= hw.guaranteed_throughput() * (1.0 - 1e-9),
        "measured {measured} below bound {}",
        hw.guaranteed_throughput()
    );
}

#[test]
fn ca_platform_simulates_and_honours_bound() {
    let app = mjpeg_application(&cfg(), None).unwrap();
    let arch = Architecture::homogeneous_with_ca("ca", 3, Interconnect::fsl()).unwrap();
    let flow = run_flow_with_arch(&app, arch, &FlowOptions::default()).unwrap();
    let times = WcetTimes::new(flow.mapped.mapping.binding.wcet_of.clone());
    let system = System::new(app.graph(), &flow.mapped.mapping, &flow.arch, &times).unwrap();
    let measured = system.run(100, 10_000_000_000).unwrap().steady_throughput();
    assert!(measured >= flow.guaranteed_throughput() * (1.0 - 1e-9));
}

#[test]
fn missing_hardware_implementation_keeps_ip_tile_empty() {
    // Without a hardware IDCT implementation no actor fits the IP tile;
    // mapping must still succeed using the MicroBlaze tiles only.
    let app = mjpeg_application(&cfg(), None).unwrap();
    let flow = run_flow_with_arch(&app, hetero_arch(), &FlowOptions::default()).unwrap();
    for (aid, _) in app.graph().actors() {
        assert_ne!(
            flow.mapped.mapping.binding.tile_of[aid.0].0, 2,
            "no actor should land on the IP tile"
        );
    }
}
