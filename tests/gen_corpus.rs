//! Corpus-scale differential harness, in-process: sweep a deterministic
//! grid of generated scenarios (every topology family × seeds) and hold
//! each one against the cross-cutting oracles the flow already promises
//! individually:
//!
//! * interchange — generation is deterministic and the XML round trip is
//!   canonical;
//! * engines — discrete-event and lockstep simulation agree on every
//!   observable for every feasible mapping;
//! * caching — a pass-runner-attached map (cold and warm) is
//!   byte-identical to the plain flow's mapping;
//! * DSE — a sharded sweep merged back, and a resumed sweep seeded with a
//!   torn partial shard, render byte-identically to the cold unsharded
//!   report;
//! * admission — use-case admission is incremental: an application
//!   admitted alone keeps its exact mapping when later applications join
//!   the use case.
//!
//! Infeasible (scenario, platform) pairs are expected (some greedy
//! partitions of multirate graphs deadlock and are skipped as design
//! points); the sweep asserts a healthy feasible fraction instead of
//! per-scenario feasibility. `scripts/gen_fuzz.sh` runs the same oracles
//! against the CLI at corpus scale.

use std::sync::Arc;

use mamps::flow::dse::explore_report;
use mamps::flow::dse::shard::{
    self, explore_shard, explore_shard_with_resume, DseShard, ShardSpec,
};
use mamps::flow::report::render_dse_report;
use mamps::flow::FlowOptions;
use mamps::mapping::flow::{map_application, MapOptions};
use mamps::mapping::multi::{map_use_case, UseCase};
use mamps::mapping::{PassCache, PassRunner};
use mamps::platform::arch::Architecture;
use mamps::platform::gen::{synthesize, ArchSpec};
use mamps::sdf::gen::{generate, Family, GenConfig};
use mamps::sdf::model::ApplicationModel;
use mamps::sdf::xml::{application_from_xml, application_to_xml};
use mamps::sdf::GlobalAnalysisCache;
use mamps::sim::{render_trace, Engine, System, WcetTimes};
use serde::Serialize as _;

/// The deterministic corpus grid: every family × this many seeds.
const SEEDS: u64 = 6;

fn corpus() -> Vec<(GenConfig, ApplicationModel)> {
    let mut out = Vec::new();
    for family in Family::ALL {
        for seed in 0..SEEDS {
            let cfg = GenConfig {
                actors: 3 + (seed as usize % 4),
                max_rate: 1 + seed % 3,
                self_edge: seed % 5 == 0,
                ..GenConfig::new(seed, family)
            };
            let app = generate(&cfg).unwrap();
            out.push((cfg, app));
        }
    }
    out
}

fn mapping_bytes(m: &mamps::mapping::Mapping) -> String {
    let mut out = String::new();
    serde::json::emit(&m.to_value(), &mut out);
    out
}

fn arch3() -> Architecture {
    synthesize(&ArchSpec::Fsl { tiles: 3 }, "corpus").unwrap()
}

#[test]
fn corpus_generation_is_deterministic_and_round_trips() {
    for (cfg, app) in corpus() {
        let xml = application_to_xml(&app);
        let again = application_to_xml(&generate(&cfg).unwrap());
        assert_eq!(
            xml, again,
            "{} seed {}: nondeterministic",
            cfg.family, cfg.seed
        );
        let back = application_from_xml(&xml).unwrap();
        assert_eq!(
            application_to_xml(&back),
            xml,
            "{} seed {}: round trip not canonical",
            cfg.family,
            cfg.seed
        );
    }
}

#[test]
fn corpus_cached_mapping_matches_plain_flow_and_engines_agree() {
    let arch = arch3();
    let (mut feasible, mut total) = (0usize, 0usize);
    for (cfg, app) in corpus() {
        total += 1;
        let plain = match map_application(&app, &arch, &MapOptions::default()) {
            Ok(m) => m,
            Err(_) => continue, // infeasible design point, tracked below
        };
        feasible += 1;

        // Pass-cached cold run, then a warm run replaying the same cache:
        // all three mappings must serialize to the same bytes.
        let pass_cache = Arc::new(PassCache::new());
        let cached = MapOptions {
            cache: Some(Arc::new(GlobalAnalysisCache::new())),
            passes: Some(Arc::new(PassRunner::with_cache(Arc::clone(&pass_cache)))),
            ..MapOptions::default()
        };
        let cold = map_application(&app, &arch, &cached).unwrap();
        let warm = map_application(&app, &arch, &cached).unwrap();
        let tag = format!("{} seed {}", cfg.family, cfg.seed);
        assert_eq!(
            mapping_bytes(&plain.mapping),
            mapping_bytes(&cold.mapping),
            "{tag}: pass runner changed the mapping"
        );
        assert_eq!(
            mapping_bytes(&cold.mapping),
            mapping_bytes(&warm.mapping),
            "{tag}: warm cache changed the mapping"
        );

        // Both engines over the feasible mapping: identical measurements
        // and traces.
        let times = WcetTimes::new(plain.mapping.binding.wcet_of.clone());
        let run = |engine| {
            System::new(app.graph(), &plain.mapping, &arch, &times)
                .unwrap()
                .with_engine(engine)
                .run_traced(40, 500_000_000, 20_000)
        };
        match (run(Engine::Event), run(Engine::Lockstep)) {
            (Ok((me, te)), Ok((ml, tl))) => {
                assert_eq!(me, ml, "{tag}: measurements diverge");
                assert_eq!(
                    render_trace(&te),
                    render_trace(&tl),
                    "{tag}: traces diverge"
                );
            }
            (e, l) => assert_eq!(
                e.map(|(m, _)| m),
                l.map(|(m, _)| m),
                "{tag}: engine verdicts diverge"
            ),
        }
    }
    // The corpus is tuned so most scenarios map onto three FSL tiles;
    // regressions in the flow (or a degenerate generator) show up here.
    assert!(
        feasible * 2 >= total,
        "only {feasible}/{total} corpus scenarios mapped — generator or flow regressed"
    );
}

#[test]
fn corpus_sharded_and_resumed_dse_match_cold_sweeps() {
    // DSE sweeps are the expensive oracle: run them on one scenario per
    // family (seed chosen where the sweep has both feasible and skipped
    // points).
    let tile_counts = [1usize, 2, 3];
    for family in Family::ALL {
        let cfg = GenConfig {
            actors: 4,
            ..GenConfig::new(1, family)
        };
        let app = generate(&cfg).unwrap();
        let opts = FlowOptions::default();
        let cold = render_dse_report(&explore_report(&app, &tile_counts, true, &opts));

        // Two shards merged back.
        let shards: Vec<DseShard> = (0..2)
            .map(|i| {
                let opts = FlowOptions {
                    shard: Some(ShardSpec::new(i, 2).unwrap()),
                    ..FlowOptions::default()
                };
                explore_shard(&app, &tile_counts, true, &opts)
            })
            .collect();
        let merged = shard::merge_reports(&shards).unwrap().render();
        assert_eq!(merged, cold, "{family}: merged sharded sweep diverges");

        // Resume from a torn partial shard: drop the tail of shard 0 and
        // let the resumed sweep finish it.
        let mut partial = shards[0].clone();
        partial.records.truncate(partial.records.len() / 2);
        let opts0 = FlowOptions {
            shard: Some(ShardSpec::new(0, 2).unwrap()),
            ..FlowOptions::default()
        };
        let resumed =
            explore_shard_with_resume(&app, &tile_counts, true, &opts0, &[partial]).unwrap();
        assert_eq!(
            resumed, shards[0],
            "{family}: resumed shard diverges from the cold shard"
        );
    }
}

#[test]
fn corpus_admission_is_incremental() {
    let arch = arch3();
    let all = corpus();
    let mut checked = 0usize;
    // Pair scenario k with scenario k+1 (wrapping) and compare admission
    // of the first app alone vs in front of the second.
    for pair in all.chunks(2) {
        let [(cfg_a, a), (_, b)] = pair else { continue };
        let alone = map_use_case(
            &UseCase::new(vec![a.clone()]).unwrap(),
            &arch,
            &MapOptions::default(),
        );
        let Some(first) = alone.admitted.first() else {
            continue; // a alone is rejected; nothing to compare
        };
        let joint = map_use_case(
            &UseCase::new(vec![a.clone(), b.clone()]).unwrap(),
            &arch,
            &MapOptions::default(),
        );
        let tag = format!("{} seed {}", cfg_a.family, cfg_a.seed);
        let again = joint
            .admitted
            .iter()
            .find(|adm| adm.name == first.name)
            .unwrap_or_else(|| panic!("{tag}: admitted alone but rejected with a companion"));
        assert_eq!(
            mapping_bytes(&first.mapped.mapping),
            mapping_bytes(&again.mapped.mapping),
            "{tag}: a later application changed an earlier admission's mapping"
        );
        checked += 1;
    }
    assert!(
        checked >= 4,
        "only {checked} admission pairs were comparable"
    );
}
