//! Cross-crate validation of the analysis machinery on the real case-study
//! graph: the two independent throughput analyses agree, and the modelling
//! overheads discussed in paper §6.3 are quantified.

use mamps::mjpeg::app_model::fig5_graph;
use mamps::mjpeg::cost;
use mamps::mjpeg::encoder::StreamConfig;
use mamps::sdf::mcr::mcr_throughput;
use mamps::sdf::repetition::repetition_vector;
use mamps::sdf::state_space::{throughput, AnalysisOptions};

#[test]
fn state_space_and_mcr_agree_on_fig5() {
    let g = fig5_graph(&StreamConfig::small());
    let ss = throughput(&g, &AnalysisOptions::default()).unwrap();
    let mcr = mcr_throughput(&g).unwrap();
    assert_eq!(
        ss.iterations_per_cycle, mcr,
        "the two throughput analyses disagree on the MJPEG graph"
    );
}

#[test]
fn unbounded_fig5_bottleneck_is_the_block_chain() {
    // With infinite resources, IQZZ+IDCT fire 10x per MCU sequentially per
    // actor; the per-actor bottleneck is max over actors of wcet * q.
    let g = fig5_graph(&StreamConfig::small());
    let q = repetition_vector(&g).unwrap();
    let expected_bottleneck = g
        .actors()
        .map(|(aid, a)| a.execution_time() * q.of(aid))
        .max()
        .unwrap();
    let ss = throughput(&g, &AnalysisOptions::default()).unwrap();
    assert_eq!(ss.cycles_per_iteration(), expected_bottleneck as f64);
}

#[test]
fn vld_padding_is_modelling_overhead() {
    // Paper §6.3: the fixed output rate of 10 blocks per MCU pads unused
    // slots. For 4:2:0 (6 real blocks), 40 % of the vld2iqzz tokens are
    // padding; they cost communication but no VLD parsing time.
    let cfg = StreamConfig::small();
    assert_eq!(cfg.blocks_per_mcu(), 6);
    let padding_fraction = 1.0 - cfg.blocks_per_mcu() as f64 / cost::MAX_BLOCKS_PER_MCU as f64;
    assert!((padding_fraction - 0.4).abs() < 1e-12);
    // The VLD WCET reflects only the parsed blocks.
    assert!(cost::wcet_vld(6) < cost::wcet_vld(10));
}

#[test]
fn decoder_profiles_drive_simulator_traces() {
    use mamps::mjpeg::sequences::{profile_sequence, synthetic, traces_of};
    let cfg = StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    };
    let res = profile_sequence(&cfg, synthetic()).unwrap();
    let traces = traces_of(&res.profile);
    // Trace lengths follow the repetition vector: 1 VLD firing per MCU,
    // 10 IQZZ/IDCT firings, 1 CC, 1 Raster.
    let mcus = cfg.total_mcus();
    assert_eq!(traces[0].len(), mcus);
    assert_eq!(traces[1].len(), mcus * 10);
    assert_eq!(traces[2].len(), mcus * 10);
    assert_eq!(traces[3].len(), mcus);
    assert_eq!(traces[4].len(), mcus);
}
