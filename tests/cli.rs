//! End-to-end test of the `mamps` command-line binary: write interchange
//! files, run every subcommand, check the outputs.

use std::path::PathBuf;
use std::process::Command;

use mamps::mjpeg::app_model::mjpeg_application;
use mamps::mjpeg::encoder::StreamConfig;
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::Interconnect;
use mamps::platform::xml::architecture_to_xml;
use mamps::sdf::xml::application_to_xml;

fn bin() -> PathBuf {
    // target/{debug,release}/mamps next to the test executable's dir.
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop(); // debug|release/
    p.push(format!("mamps{}", std::env::consts::EXE_SUFFIX));
    p
}

fn setup_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mamps_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    };
    let app = mjpeg_application(&cfg, None).unwrap();
    std::fs::write(dir.join("app.xml"), application_to_xml(&app)).unwrap();
    let arch = Architecture::homogeneous("cli", 3, Interconnect::fsl()).unwrap();
    std::fs::write(dir.join("arch.xml"), architecture_to_xml(&arch)).unwrap();
    dir
}

#[test]
fn cli_subcommands_work_end_to_end() {
    if !bin().exists() {
        // The binary is only present when the package's bins were built
        // (cargo test builds them for integration tests of the same
        // package, but guard against exotic invocations).
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = setup_dir();
    let app = dir.join("app.xml");
    let arch = dir.join("arch.xml");

    // analyze
    let out = Command::new(bin())
        .arg("analyze")
        .arg(&app)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("consistent"));
    assert!(text.contains("VLD"));

    // map with mapping output
    let map_out = dir.join("mapping.xml");
    let out = Command::new(bin())
        .args(["map"])
        .arg(&app)
        .arg(&arch)
        .arg(&map_out)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(map_out.exists());
    assert!(std::fs::read_to_string(&map_out)
        .unwrap()
        .contains("<mapping>"));

    // map with an explicit binder: the summary must attribute the strategy.
    let out = Command::new(bin())
        .args(["map"])
        .arg(&app)
        .arg(&arch)
        .args(["--binder", "spiral"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("binder: spiral"), "summary: {text}");
    assert!(text.contains("tile"), "per-tile load table missing: {text}");

    // unknown binder fails with the available names.
    let out = Command::new(bin())
        .args(["map"])
        .arg(&app)
        .arg(&arch)
        .args(["--binder", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("greedy"));

    // dse with a strategy sweep: every point is attributed to a binder.
    let out = Command::new(bin())
        .arg("dse")
        .arg(&app)
        .args(["2", "--binders", "greedy,spiral"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("greedy") && text.contains("spiral"), "{text}");
    assert!(text.contains("pareto front"), "{text}");

    // generate
    let proj = dir.join("proj");
    let out = Command::new(bin())
        .arg("generate")
        .arg(&app)
        .arg(&arch)
        .arg(&proj)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(proj.join("system.tcl").exists());

    // simulate: exit code reflects the guarantee.
    let out = Command::new(bin())
        .args(["simulate"])
        .arg(&app)
        .arg(&arch)
        .arg("50")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("HOLDS"));

    // map-multi: a second app joins the MJPEG decoder on the same
    // platform; both guarantees must be validated by the concurrent run.
    let second = dir.join("second.xml");
    {
        use mamps::sdf::graph::SdfGraphBuilder;
        use mamps::sdf::model::{HomogeneousModelBuilder, ThroughputConstraint};
        let mut b = SdfGraphBuilder::new("sidecar");
        let x = b.add_actor("sc_in", 1);
        let y = b.add_actor("sc_out", 1);
        b.add_channel_full("sc_e", x, 1, y, 1, 0, 16);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("sc_in", 200, 2048, 256)
            .actor("sc_out", 300, 2048, 256);
        let side = mb
            .finish(
                g,
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 10_000_000,
                }),
            )
            .unwrap();
        std::fs::write(&second, application_to_xml(&side)).unwrap();
    }
    let out = Command::new(bin())
        .arg("map-multi")
        .arg(&app)
        .arg(&second)
        .arg(&arch)
        .args(["--iters", "60"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 of 2 applications admitted"), "{text}");
    assert!(text.contains("guarantee HOLDS"), "{text}");

    // dse --apps: the use-case sweep reports admitted subsets per config.
    let out = Command::new(bin())
        .arg("dse")
        .arg("2")
        .arg("--apps")
        .arg(format!("{},{}", app.display(), second.display()))
        .args(["--jobs", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("admitted"), "{text}");
    assert!(text.contains("sidecar"), "{text}");

    // bad usage
    let out = Command::new(bin()).arg("bogus").output().unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_remap_replays_from_the_pass_cache() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mamps_cli_remap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    };
    let app = dir.join("app.xml");
    std::fs::write(
        &app,
        application_to_xml(&mjpeg_application(&cfg, None).unwrap()),
    )
    .unwrap();
    let arch = dir.join("arch.xml");
    std::fs::write(
        &arch,
        architecture_to_xml(&Architecture::homogeneous("cli", 3, Interconnect::fsl()).unwrap()),
    )
    .unwrap();
    let cache = dir.join("cache");

    // Cold map populates the on-disk pass cache.
    let cold = Command::new(bin())
        .arg("map")
        .arg(&app)
        .arg(&arch)
        .arg("--cache-dir")
        .arg(&cache)
        .args(["--stats"])
        .output()
        .unwrap();
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert!(
        String::from_utf8_lossy(&cold.stderr).contains("pass cache persisted"),
        "stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );

    // Warm remap: stdout byte-identical, every flow pass replayed.
    let warm = Command::new(bin())
        .arg("remap")
        .arg(&app)
        .arg(&arch)
        .arg("--cache-dir")
        .arg(&cache)
        .args(["--stats"])
        .output()
        .unwrap();
    assert!(
        warm.status.success(),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(
        warm.stdout, cold.stdout,
        "remap must reproduce the cold map output byte for byte"
    );
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(
        stderr.contains("pass cache warmed from disk"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("pass wall time"), "stderr: {stderr}");

    // remap without --cache-dir is a usage error, not a silent cold run.
    let bad = Command::new(bin())
        .arg("remap")
        .arg(&app)
        .arg(&arch)
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--cache-dir"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_gen_is_deterministic_across_processes_and_round_trips() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mamps_cli_gen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Two separate processes with the same seed must emit byte-identical
    // scenario directories — file names and file contents.
    let gen = |out: &std::path::Path| {
        let o = Command::new(bin())
            .args(["gen", "--seed", "42", "--count", "4", "--actors", "5"])
            .args(["--arch", "mesh:2x2"])
            .arg("--out")
            .arg(out)
            .output()
            .unwrap();
        assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    };
    let (d1, d2) = (dir.join("one"), dir.join("two"));
    gen(&d1);
    gen(&d2);
    let listing = |d: &std::path::Path| {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    let names = listing(&d1);
    assert_eq!(names, listing(&d2), "different file sets for the same seed");
    assert!(names.iter().any(|n| n == "manifest.txt"));
    assert!(names.iter().any(|n| n.starts_with("arch_")));
    for name in &names {
        assert_eq!(
            std::fs::read(d1.join(name)).unwrap(),
            std::fs::read(d2.join(name)).unwrap(),
            "{name} differs between identically-seeded runs"
        );
    }

    // Every generated application parses back and serializes canonically,
    // and `mamps analyze` accepts it.
    for name in names
        .iter()
        .filter(|n| n.ends_with(".xml") && !n.starts_with("arch_"))
    {
        let xml = std::fs::read_to_string(d1.join(name)).unwrap();
        let app = mamps::sdf::xml::application_from_xml(&xml).unwrap();
        assert_eq!(application_to_xml(&app), xml, "{name} does not round-trip");
        let out = Command::new(bin())
            .arg("analyze")
            .arg(d1.join(name))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "analyze {name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("consistent"));
    }

    // Unknown family: usage error naming the valid ones.
    let bad = Command::new(bin())
        .args(["gen", "--family", "banyan", "--out"])
        .arg(dir.join("bad"))
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("chain"),
        "stderr should list valid families: {}",
        String::from_utf8_lossy(&bad.stderr)
    );

    // Missing --out: usage error, nothing written.
    let bad = Command::new(bin()).arg("gen").output().unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--out"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_xml_errors_name_the_file_and_line() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mamps_cli_xmlerr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Corrupt a real scenario: drop the `name` attribute from the first
    // actor (line 3 of the canonical serialization).
    let gen = Command::new(bin())
        .args(["gen", "--seed", "1", "--count", "1", "--family", "chain"])
        .arg("--out")
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );
    let good = std::fs::read_to_string(dir.join("chain_s1.xml")).unwrap();
    let corrupted: Vec<String> = good
        .lines()
        .map(|l| {
            if l.trim_start().starts_with("<actor") {
                l.replacen(" name=\"chain_s1_a0\"", "", 1)
            } else {
                l.to_string()
            }
        })
        .collect();
    let bad = dir.join("broken.xml");
    std::fs::write(&bad, corrupted.join("\n")).unwrap();
    let out = Command::new(bin())
        .arg("analyze")
        .arg(&bad)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("broken.xml"), "no file path: {stderr}");
    assert!(stderr.contains("line 3"), "no line number: {stderr}");
    assert!(stderr.contains("attribute `name`"), "wrong error: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_sharded_dse_merges_to_the_unsharded_report() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mamps_cli_shard_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    };
    let app = dir.join("app.xml");
    std::fs::write(
        &app,
        application_to_xml(&mjpeg_application(&cfg, None).unwrap()),
    )
    .unwrap();

    // Unsharded reference report.
    let full = Command::new(bin())
        .arg("dse")
        .arg(&app)
        .args(["3", "--binders", "greedy,spiral"])
        .output()
        .unwrap();
    assert!(full.status.success());

    // Two shard runs writing JSONL, then a merge.
    for i in 0..2 {
        let out = Command::new(bin())
            .arg("dse")
            .arg(&app)
            .args(["3", "--binders", "greedy,spiral"])
            .args(["--shard", &format!("{i}/2")])
            .arg("--out")
            .arg(dir.join(format!("s{i}.jsonl")))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let merged = Command::new(bin())
        .arg("dse-merge")
        .arg(dir.join("s0.jsonl"))
        .arg(dir.join("s1.jsonl"))
        .output()
        .unwrap();
    assert!(
        merged.status.success(),
        "{}",
        String::from_utf8_lossy(&merged.stderr)
    );
    assert_eq!(
        merged.stdout, full.stdout,
        "merged report must be byte-identical to the unsharded one"
    );

    // Missing shard: nonzero exit, named reason.
    let incomplete = Command::new(bin())
        .arg("dse-merge")
        .arg(dir.join("s0.jsonl"))
        .arg(dir.join("s0.jsonl"))
        .output()
        .unwrap();
    assert!(!incomplete.status.success());
    assert!(String::from_utf8_lossy(&incomplete.stderr).contains("overlapping"));

    // --shard without --out is a usage error, not a silent full run.
    let bad = Command::new(bin())
        .arg("dse")
        .arg(&app)
        .args(["3", "--shard", "0/2"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--out"));

    std::fs::remove_dir_all(&dir).ok();
}

/// Kills a spawned service process on drop, so a failing assertion does
/// not leak a coordinator/worker holding the test's socket.
struct Reap(std::process::Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The DSE coordinator service end to end: a dead socket fails with a
/// clear error, a 2-worker run matches single-process `mamps dse` byte
/// for byte, and a second identical submission is served entirely from
/// the coordinator's warm history (`--stats` reports the cache hits).
#[cfg(unix)]
#[test]
fn dse_serve_cli_round_trip() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mamps_cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    };
    let app = dir.join("app.xml");
    std::fs::write(
        &app,
        application_to_xml(&mjpeg_application(&cfg, None).unwrap()),
    )
    .unwrap();
    let socket = dir.join("serve.sock");

    // Submitting to a dead socket: clear error, nonzero exit.
    let out = Command::new(bin())
        .arg("dse-submit")
        .arg(&app)
        .args(["2", "--socket"])
        .arg(&socket)
        .output()
        .unwrap();
    assert!(!out.status.success(), "submit to a dead socket must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot connect to coordinator") && err.contains("dse-serve"),
        "unhelpful dead-socket error: {err}"
    );

    // The single-process reference the service must reproduce.
    let reference = Command::new(bin())
        .arg("dse")
        .arg(&app)
        .arg("2")
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );

    let serve = Reap(
        Command::new(bin())
            .arg("dse-serve")
            .args(["--socket"])
            .arg(&socket)
            .args(["--chunk", "1"])
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap(),
    );
    for _ in 0..100 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(socket.exists(), "coordinator did not come up");
    let workers: Vec<Reap> = (0..2)
        .map(|_| {
            Reap(
                Command::new(bin())
                    .arg("dse-work")
                    .args(["--socket"])
                    .arg(&socket)
                    .stderr(std::process::Stdio::null())
                    .spawn()
                    .unwrap(),
            )
        })
        .collect();

    let submit = |tag: &str| {
        let out = Command::new(bin())
            .arg("dse-submit")
            .arg(&app)
            .args(["2", "--stats", "--socket"])
            .arg(&socket)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{tag}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, reference.stdout,
            "{tag}: serve report must be byte-identical to `mamps dse`"
        );
        String::from_utf8_lossy(&out.stderr).into_owned()
    };

    // Happy path: report byte-identical, stats on stderr.
    let err = submit("first submission");
    assert!(err.contains("serve stats:"), "missing stats: {err}");
    assert!(
        err.contains("4 design points"),
        "2 tiles x fsl/noc is 4 points: {err}"
    );

    // Second identical submission: nothing re-evaluated, all cache hits.
    let err = submit("second submission");
    assert!(
        err.contains("evaluated 0, cache hits 4"),
        "second submission must be served from the warm history: {err}"
    );

    // Graceful shutdown lets the workers exit cleanly on their own.
    let term = Command::new("kill")
        .args(["-TERM", &serve.0.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());
    for mut w in workers {
        let status = w.0.wait().unwrap();
        assert!(
            status.success(),
            "worker must exit 0 on coordinator shutdown"
        );
    }
    drop(serve);
    std::fs::remove_dir_all(&dir).ok();
}
