//! Multi-application admission control, end to end:
//!
//! * property test — for random use-cases, every admitted application's
//!   throughput, measured by the cycle-level simulator running all
//!   admitted applications *concurrently* on the shared tiles, meets both
//!   the shared (resource-share-reduced) guarantee and the application's
//!   own constraint;
//! * regression tests — rejection reasons are deterministic across runs
//!   and surface verbatim in the rendered use-case DSE report.

use proptest::prelude::*;

use mamps::flow::report::{render_multi_report, render_use_case_report};
use mamps::flow::{explore_use_cases, run_multi_flow, FlowOptions};
use mamps::mapping::flow::MapOptions;
use mamps::mapping::multi::{map_use_case, UseCase};
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::Interconnect;
use mamps::sdf::gen::pipeline_app;
use mamps::sdf::model::{ApplicationModel, ThroughputConstraint};
use mamps::sim::{System, WcetTimes};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Admission soundness: whatever subset gets admitted, the concurrent
    /// WCET simulation of every interference group meets the lockstep
    /// bound, every member progresses at least at that rate, and every
    /// admitted application's constraint is honoured by the *measured*
    /// throughput — the paper's conservativeness claim lifted to shared
    /// platforms.
    #[test]
    fn admitted_use_case_meets_every_per_app_bound(
        wcets_a in proptest::collection::vec(20u64..150, 2..4),
        wcets_b in proptest::collection::vec(20u64..150, 2..4),
        tiles in 1usize..4,
        // Constraint denominator for app B, scaled to stay feasible for
        // some seeds and infeasible for others.
        cycles in 300u64..40_000,
    ) {
        let apps = vec![
            pipeline_app("first", &wcets_a, 16, &[1], None),
            pipeline_app(
                "second",
                &wcets_b,
                16,
                &[1],
                Some(ThroughputConstraint { iterations: 1, cycles }),
            ),
        ];
        let arch = Architecture::homogeneous("p", tiles, Interconnect::fsl()).unwrap();
        let uc = UseCase::new(apps).unwrap();
        let outcome = map_use_case(&uc, &arch, &MapOptions::default());
        prop_assert!(!outcome.admitted.is_empty(), "first app is unconstrained");

        for group in &outcome.groups {
            let times = WcetTimes::new(group.mapping.binding.wcet_of.clone());
            let sys = System::new_with_repetitions(
                &group.graph,
                &group.mapping,
                &arch,
                &times,
                group.combined_repetitions(),
            )
            .unwrap();
            let m = sys.run(80, u64::MAX / 4).unwrap();
            let bound = group.analysis.as_f64();
            let measured = m.steady_throughput();
            prop_assert!(
                measured >= bound * (1.0 - 1e-9),
                "group measured {measured} below shared bound {bound}"
            );
            let union_iterations = m.iteration_times.len() as u64;
            for (mi, member) in group.members.iter().enumerate() {
                prop_assert!(
                    group.member_iterations(mi, &m.firings) >= union_iterations,
                    "member {mi} fell behind the lockstep rate"
                );
                let admitted = &outcome.admitted[member.admitted];
                if let Some(c) = admitted.constraint {
                    prop_assert!(
                        measured >= c.to_f64() * (1.0 - 1e-9),
                        "`{}` measured {measured} below its constraint {c}",
                        admitted.name
                    );
                }
            }
        }
    }
}

/// Rejection reasons are deterministic: two independent admission runs of
/// the same use-case produce identical structured reasons, and those
/// reasons appear verbatim in the rendered use-case DSE report.
#[test]
fn rejection_reasons_deterministic_and_rendered() {
    let mk_apps = || {
        vec![
            pipeline_app("keeper", &[80, 80], 16, &[1], None),
            pipeline_app(
                "hog",
                &[900, 900],
                16,
                &[1],
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 50,
                }),
            ),
        ]
    };
    let arch = Architecture::homogeneous("d", 2, Interconnect::fsl()).unwrap();

    let reasons = |apps: Vec<ApplicationModel>| -> Vec<(String, String)> {
        let uc = UseCase::new(apps).unwrap();
        map_use_case(&uc, &arch, &MapOptions::default())
            .rejected
            .iter()
            .map(|r| (r.name.clone(), r.reason.to_string()))
            .collect()
    };
    let r1 = reasons(mk_apps());
    let r2 = reasons(mk_apps());
    assert_eq!(r1, r2, "rejection reasons must be deterministic");
    assert_eq!(r1.len(), 1);
    assert_eq!(r1[0].0, "hog");

    // The same reason surfaces in the use-case DSE report rendering.
    let report = explore_use_cases(&mk_apps(), &[2], false, &FlowOptions::default());
    let rendered = render_use_case_report(&report);
    assert!(
        rendered.contains(&r1[0].1),
        "rendered report must carry the structured reason verbatim:\n{rendered}"
    );
    // And two sweeps render identically.
    let report2 = explore_use_cases(&mk_apps(), &[2], false, &FlowOptions::default());
    assert_eq!(rendered, render_use_case_report(&report2));
}

/// The multi-application flow report marks validated guarantees and keeps
/// rejected applications visible without failing the run.
#[test]
fn multi_flow_report_shows_admissions_and_rejections() {
    let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
    let result = run_multi_flow(
        vec![
            pipeline_app("app_a", &[90, 90], 16, &[1], None),
            pipeline_app("app_b", &[40, 40], 16, &[1], None),
            pipeline_app(
                "app_c",
                &[2000, 2000],
                16,
                &[1],
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 20,
                }),
            ),
        ],
        arch,
        &FlowOptions::default(),
        60,
    )
    .unwrap();
    assert_eq!(result.admitted_count(), 2);
    assert!(result.all_guarantees_hold());
    let rendered = render_multi_report(&result);
    assert!(rendered.contains("2 of 3 applications admitted"));
    assert!(rendered.contains("app_a: ADMITTED"));
    assert!(rendered.contains("app_b: ADMITTED"));
    assert!(rendered.contains("app_c: REJECTED"));
    assert!(rendered.contains("guarantee HOLDS"));
    assert!(rendered.contains("reason: mapping failed"));
}
