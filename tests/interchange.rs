//! The common input format end to end (paper §2): models written to XML,
//! read back, and fed to the platform generator and simulator produce
//! byte-identical results — no manual translation step, no user-introduced
//! errors.

use mamps::codegen::generate_project;
use mamps::mapping::flow::{map_application, MapOptions};
use mamps::mapping::xml::{mapping_from_xml, mapping_to_xml};
use mamps::mjpeg::app_model::mjpeg_application;
use mamps::mjpeg::encoder::StreamConfig;
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::Interconnect;
use mamps::platform::xml::{architecture_from_xml, architecture_to_xml};
use mamps::sdf::xml::{application_from_xml, application_to_xml};
use mamps::sim::{System, WcetTimes};

fn cfg() -> StreamConfig {
    StreamConfig {
        frames: 1,
        ..StreamConfig::small()
    }
}

#[test]
fn mjpeg_application_roundtrips_through_xml() {
    let app = mjpeg_application(&cfg(), None).unwrap();
    let xml = application_to_xml(&app);
    assert!(xml.contains("applicationGraph"));
    assert!(xml.contains("vld2iqzz"));
    let back = application_from_xml(&xml).unwrap();
    assert_eq!(app.graph().actor_count(), back.graph().actor_count());
    assert_eq!(app.graph().channel_count(), back.graph().channel_count());
    // The round-tripped model maps to the same guaranteed bound.
    let arch = Architecture::homogeneous("m", 3, Interconnect::fsl()).unwrap();
    let m1 = map_application(&app, &arch, &MapOptions::default()).unwrap();
    let m2 = map_application(&back, &arch, &MapOptions::default()).unwrap();
    assert_eq!(
        m1.analysis.iterations_per_cycle,
        m2.analysis.iterations_per_cycle
    );
}

#[test]
fn full_interchange_pipeline_is_lossless() {
    let app = mjpeg_application(&cfg(), None).unwrap();
    let arch = Architecture::homogeneous("m", 3, Interconnect::noc_for_tiles(3)).unwrap();
    let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();

    // Serialize all three artefacts...
    let app_xml = application_to_xml(&app);
    let arch_xml = architecture_to_xml(&arch);
    let map_xml = mapping_to_xml(&mapped.mapping, app.graph());

    // ...read them back...
    let app2 = application_from_xml(&app_xml).unwrap();
    let arch2 = architecture_from_xml(&arch_xml).unwrap();
    let map2 = mapping_from_xml(&map_xml, app2.graph(), arch2.tile_count()).unwrap();
    assert_eq!(arch2, arch);
    assert_eq!(map2, mapped.mapping);

    // ...and generate + simulate from the parsed copies: identical project,
    // identical measured throughput.
    let p1 = generate_project(&app, app.graph(), &mapped.mapping, &arch, "sys").unwrap();
    let p2 = generate_project(&app2, app2.graph(), &map2, &arch2, "sys").unwrap();
    assert_eq!(p1.files, p2.files);

    let t1 = {
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        System::new(app.graph(), &mapped.mapping, &arch, &times)
            .unwrap()
            .run(40, 1_000_000_000)
            .unwrap()
            .steady_throughput()
    };
    let t2 = {
        let times = WcetTimes::new(map2.binding.wcet_of.clone());
        System::new(app2.graph(), &map2, &arch2, &times)
            .unwrap()
            .run(40, 1_000_000_000)
            .unwrap()
            .steady_throughput()
    };
    assert_eq!(t1, t2);
}

#[test]
fn architecture_xml_covers_all_tile_kinds() {
    use mamps::platform::tile::TileConfig;
    let tiles = vec![
        TileConfig::master("m"),
        TileConfig::slave("s"),
        TileConfig::with_communication_assist("c"),
        TileConfig::hardware_ip("h"),
    ];
    let arch = Architecture::new("mixed", tiles, Interconnect::fsl()).unwrap();
    let back = architecture_from_xml(&architecture_to_xml(&arch)).unwrap();
    assert_eq!(back, arch);
}
