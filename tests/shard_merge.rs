//! Sharded-DSE contract tests: the partitioner covers every design point
//! exactly once for arbitrary `(points, shard_count)`, the JSONL encoding
//! of every result type is golden-pinned and round-trips losslessly, and
//! sharded runs merge back into the unsharded report.

use std::sync::Arc;

use mamps::flow::dse::cache::{load_cache_dir, persist_cache};
use mamps::flow::dse::shard::{
    explore_shard, explore_shard_with_resume, merge_reports, DseShard, MergeError, MergedReport,
    ShardSpec,
};
use mamps::flow::dse::{DsePoint, SkippedPoint, UseCasePoint};
use mamps::flow::report::render_dse_report;
use mamps::flow::FlowOptions;
use mamps::mapping::multi::RejectReason;
use mamps::mapping::MapError;
use mamps::sdf::cache::GlobalAnalysisCache;
use mamps::sdf::graph::SdfGraphBuilder;
use mamps::sdf::model::{ApplicationModel, HomogeneousModelBuilder};
use mamps::sdf::ratio::Ratio;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every design point of a sweep of arbitrary size is owned by
    /// exactly one shard: the partition is disjoint and exhaustive.
    #[test]
    fn shard_partitions_are_disjoint_and_exhaustive(
        points in 0u64..500,
        count in 1u32..32,
    ) {
        let specs: Vec<ShardSpec> = (0..count)
            .map(|i| ShardSpec::new(i, count).unwrap())
            .collect();
        for seq in 0..points {
            let owners = specs.iter().filter(|s| s.owns(seq)).count();
            prop_assert_eq!(owners, 1, "seq {} owned by {} shards", seq, owners);
        }
    }
}

/// One canonical value per serialized DSE type, shared by the golden and
/// round-trip assertions.
fn sample_points() -> (DsePoint, SkippedPoint, UseCasePoint) {
    let point = DsePoint {
        tiles: 2,
        interconnect: "fsl",
        strategy: "greedy",
        guaranteed: 1e-5,
        slices: 1234,
        wire_units: 3,
        per_tile_load: vec![100, 50],
    };
    let skipped = SkippedPoint {
        tiles: 9,
        interconnect: "noc",
        strategy: "spiral",
        reason: "mapping step failed: no feasible binding".into(),
    };
    let use_case = UseCasePoint {
        tiles: 3,
        interconnect: "noc",
        strategy: "genetic",
        admitted: vec!["mjpeg".into(), "pipeline".into()],
        rejected: vec![("burst".into(), "mapping failed: infeasible".into())],
        min_guarantee: 2.44e-5,
        slices: 4321,
    };
    (point, skipped, use_case)
}

/// The JSONL encodings are part of the shard-file contract: pin them
/// byte-for-byte so a change that would break cross-version merging shows
/// up as a test diff, not as a cluster mystery.
#[test]
fn golden_jsonl_encodings() {
    let (point, skipped, use_case) = sample_points();
    assert_eq!(
        serde::json::to_string(&point),
        r#"{"tiles":2,"interconnect":"fsl","strategy":"greedy","guaranteed":0.00001,"slices":1234,"wire_units":3,"per_tile_load":[100,50]}"#
    );
    assert_eq!(
        serde::json::to_string(&skipped),
        r#"{"tiles":9,"interconnect":"noc","strategy":"spiral","reason":"mapping step failed: no feasible binding"}"#
    );
    assert_eq!(
        serde::json::to_string(&use_case),
        r#"{"tiles":3,"interconnect":"noc","strategy":"genetic","admitted":["mjpeg","pipeline"],"rejected":[["burst","mapping failed: infeasible"]],"min_guarantee":0.0000244,"slices":4321}"#
    );
    let violated = RejectReason::GuaranteeViolated {
        victim: "mjpeg".into(),
        required: Ratio::new(1, 100),
        achieved: Ratio::new(1, 200),
    };
    assert_eq!(
        serde::json::to_string(&violated),
        r#"{"GuaranteeViolated":{"victim":"mjpeg","required":[1,100],"achieved":[1,200]}}"#
    );
    assert_eq!(
        serde::json::to_string(&RejectReason::Map(MapError::Infeasible("no fit".into()))),
        r#"{"Map":{"Infeasible":"no fit"}}"#
    );
}

#[test]
fn jsonl_round_trips_every_result_type() {
    let (point, skipped, use_case) = sample_points();
    let back: DsePoint = serde::json::from_str(&serde::json::to_string(&point)).unwrap();
    assert_eq!(back, point);
    let back: SkippedPoint = serde::json::from_str(&serde::json::to_string(&skipped)).unwrap();
    assert_eq!(back, skipped);
    let back: UseCasePoint = serde::json::from_str(&serde::json::to_string(&use_case)).unwrap();
    assert_eq!(back, use_case);

    for reason in [
        RejectReason::Map(MapError::Infeasible("actor x".into())),
        RejectReason::SharedAnalysis("deadlock at admitted buffers".into()),
        RejectReason::GuaranteeViolated {
            victim: "tight".into(),
            required: Ratio::new(1, 100),
            achieved: Ratio::new(3, 400),
        },
    ] {
        let text = serde::json::to_string(&reason);
        let back: RejectReason = serde::json::from_str(&text).unwrap();
        assert_eq!(back, reason, "{text}");
        // The rendered reason — what reports show — survives too.
        assert_eq!(back.to_string(), reason.to_string());
    }

    // Ratio deserialization re-normalizes, so hand-edited shard files
    // cannot smuggle in a denormalized value.
    let r: Ratio = serde::json::from_str("[2,200]").unwrap();
    assert_eq!(r, Ratio::new(1, 100));
    assert!(serde::json::from_str::<Ratio>("[1,0]").is_err());
}

fn tiny_app() -> ApplicationModel {
    let mut b = SdfGraphBuilder::new("tiny");
    let x = b.add_actor("x", 1);
    let y = b.add_actor("y", 1);
    b.add_channel_full("e", x, 1, y, 1, 0, 16);
    let g = b.build().unwrap();
    let mut mb = HomogeneousModelBuilder::new("microblaze");
    mb.actor("x", 40, 2048, 256).actor("y", 70, 2048, 256);
    mb.finish(g, None).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The analysis cache and the resume machinery are invisible in
    /// output: an uncached sweep, a cached one, one warmed from an
    /// on-disk cache directory, and one resumed from arbitrary partial
    /// shard files all produce byte-identical JSONL and rendered
    /// reports.
    #[test]
    fn cached_warm_and_resumed_sweeps_are_byte_identical(
        stride in 1usize..6,
        eighths in 0usize..=8,
    ) {
        let app = tiny_app();
        let tiles = [1usize, 2, 3];

        let cold = explore_shard(&app, &tiles, true, &FlowOptions::default());
        let jsonl = cold.to_jsonl();
        let rendered = render_dse_report(&cold.clone().into_dse_report());

        // Cached in-process: same bytes, and the cache actually filled.
        let cache = Arc::new(GlobalAnalysisCache::new());
        let mut opts = FlowOptions::default();
        opts.map.cache = Some(Arc::clone(&cache));
        let cached = explore_shard(&app, &tiles, true, &opts);
        prop_assert_eq!(&cached.to_jsonl(), &jsonl);
        prop_assert_eq!(&render_dse_report(&cached.into_dse_report()), &rendered);
        prop_assert!(cache.stats().inserts > 0, "cached sweep inserted nothing");

        // Warmed from disk: persist, reload into a fresh cache, re-sweep.
        let dir = std::env::temp_dir().join(format!(
            "mamps-sweep-equiv-{}-{stride}-{eighths}",
            std::process::id()
        ));
        persist_cache(&cache, &dir, ShardSpec::full()).unwrap();
        let warm = Arc::new(GlobalAnalysisCache::new());
        let loaded = load_cache_dir(&warm, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(loaded.imported > 0, "disk cache round-trip lost every entry");
        let mut opts = FlowOptions::default();
        opts.map.cache = Some(Arc::clone(&warm));
        let warmed = explore_shard(&app, &tiles, true, &opts);
        prop_assert_eq!(&warmed.to_jsonl(), &jsonl);
        prop_assert_eq!(&render_dse_report(&warmed.into_dse_report()), &rendered);
        prop_assert_eq!(warm.stats().misses, 0, "warm sweep missed the disk cache");

        // Resumed from partials: an arbitrary prefix of the cold run plus
        // an arbitrary strided subset (as a crashed differently-sharded
        // run would leave behind) seed the sweep; output is unchanged.
        let prefix = DseShard {
            header: cold.header.clone(),
            records: cold.records[..cold.records.len() * eighths / 8].to_vec(),
        };
        let strided = DseShard {
            header: cold.header.clone(),
            records: cold
                .records
                .iter()
                .filter(|r| (r.seq as usize).is_multiple_of(stride))
                .cloned()
                .collect(),
        };
        let resumed = explore_shard_with_resume(
            &app,
            &tiles,
            true,
            &FlowOptions::default(),
            &[prefix, strided],
        )
        .unwrap();
        prop_assert_eq!(&resumed.to_jsonl(), &jsonl);
        prop_assert_eq!(&render_dse_report(&resumed.into_dse_report()), &rendered);
    }
}

/// End-to-end over the public API: shard files written and re-read as
/// JSONL merge into exactly the unsharded report, and a missing shard is
/// a hard error.
#[test]
fn sharded_jsonl_files_merge_to_the_unsharded_report() {
    let app = tiny_app();
    let opts = FlowOptions::default();
    let full = mamps::flow::dse::explore_report(&app, &[1, 2, 3], true, &opts);

    let shards: Vec<DseShard> = (0..3)
        .map(|i| {
            let mut o = opts.clone();
            o.shard = Some(ShardSpec::new(i, 3).unwrap());
            let s = explore_shard(&app, &[1, 2, 3], true, &o);
            DseShard::from_jsonl(&s.to_jsonl()).unwrap()
        })
        .collect();
    match merge_reports(&shards).unwrap() {
        MergedReport::Dse(merged) => assert_eq!(merged, full),
        other => panic!("expected a DSE report, got {other:?}"),
    }
    assert!(matches!(
        merge_reports(&shards[1..]),
        Err(MergeError::MissingShards { .. })
    ));
}
