//! DSE-service contract tests: under arbitrary worker join/leave/timeout
//! event sequences the lease table keeps leased ranges disjoint, drains
//! to exhaustive coverage, and treats duplicate completions as no-ops;
//! the merge ledger dedups by seq regardless of arrival order; and every
//! protocol message round-trips the canonical JSON encoding.

use mamps::flow::dse::lease::{ItemState, LeaseTable, MergeLedger, SeqRange};
use mamps::flow::dse::shard::{
    ShardHeader, ShardOutcome, ShardRecord, ShardSpec, SweepMode, SweepSignature,
};
use mamps::flow::dse::SkippedPoint;
use mamps::flow::serve::{ClientMsg, JobStats, ServerMsg, SweepSpec};
use proptest::prelude::*;

fn header(total: u64) -> ShardHeader {
    ShardHeader {
        mode: SweepMode::Binders,
        shard: ShardSpec::full(),
        total_configs: total,
        signature: SweepSignature {
            apps: vec!["app".into()],
            tile_counts: vec![1, 2, 3],
            include_noc: true,
            binders: vec!["greedy".into()],
        },
    }
}

fn outcome(seq: u64) -> ShardOutcome {
    ShardOutcome::Skipped(SkippedPoint {
        tiles: seq as usize,
        interconnect: "fsl",
        strategy: "greedy",
        reason: format!("point {seq}"),
    })
}

/// The seqs currently covered by live leases, asserting pairwise
/// disjointness on the way.
fn leased_seqs(table: &LeaseTable) -> Vec<u64> {
    let mut seen = Vec::new();
    for (range, state) in table.items() {
        if matches!(state, ItemState::Leased { .. }) {
            for seq in range.seqs() {
                assert!(!seen.contains(&seq), "seq {seq} under two live leases");
                seen.push(seq);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the interleaving of acquisitions, disconnects, expiries
    /// and (duplicate) completions, the lease table never leases a seq
    /// twice concurrently, never leases a seeded seq, and a final drain
    /// completes every non-seeded seq exactly once in a bounded number
    /// of acquisitions.
    #[test]
    fn leases_stay_disjoint_and_drain_to_exhaustive(
        total in 0u64..60,
        chunk in 1u64..10,
        seeded_mask in any::<u64>(),
        events in proptest::collection::vec((0u8..4, 0u64..8), 0..40),
    ) {
        let seeded = |seq: u64| seeded_mask & (1 << seq) != 0;
        let mut table = LeaseTable::new(total, chunk, seeded);
        let mut now = 0u64;
        let mut issued: Vec<u64> = Vec::new();
        // Event decoding: 0 = a worker acquires a lease, 1 = a worker
        // disconnects (all its leases release), 2 = time advances past
        // every current deadline (expiry), 3 = a previously issued lease
        // completes (possibly a duplicate).
        for (kind, arg) in events {
            match kind {
                0 => {
                    if let Some((lease, range)) = table.acquire(arg, now, 10) {
                        prop_assert!(range.len() <= chunk);
                        prop_assert!(range.end <= total);
                        for seq in range.seqs() {
                            prop_assert!(!seeded(seq), "leased seeded seq {seq}");
                        }
                        issued.push(lease);
                    }
                }
                1 => { table.release_owner(arg); }
                2 => {
                    now += 11; // strictly past every live deadline
                    table.expire(now);
                    prop_assert_eq!(table.leased(), 0, "expiry left live leases");
                }
                _ => {
                    if let Some(&lease) = issued.get(arg as usize % issued.len().max(1)) {
                        let first = table.complete(lease);
                        let done_after = table.pending() + table.leased();
                        // Duplicate completion: same answer, no state change.
                        prop_assert_eq!(table.complete(lease), first);
                        prop_assert_eq!(table.pending() + table.leased(), done_after);
                    }
                }
            }
            leased_seqs(&table); // asserts disjointness
        }

        // Drain: revert lost leases, then acquire+complete to the end.
        now += 11;
        table.expire(now);
        let mut completed: Vec<SeqRange> = Vec::new();
        let mut rounds = 0u64;
        while !table.is_done() {
            rounds += 1;
            prop_assert!(rounds <= total + 1, "drain did not terminate");
            let (lease, range) = table.acquire(999, now, 10).expect("work left but nothing pending");
            prop_assert_eq!(table.complete(lease), Some(range));
            completed.push(range);
        }
        // Exhaustive: drain-completed ranges are disjoint, and together
        // with earlier completions and the seeded seqs cover 0..total.
        let mut covered = vec![0u32; total as usize];
        for range in completed {
            for seq in range.seqs() {
                covered[seq as usize] += 1;
            }
        }
        for (range, state) in table.items() {
            prop_assert_eq!(state, ItemState::Done);
            for seq in range.seqs() {
                prop_assert!(covered[seq as usize] <= 1, "seq {} drained twice", seq);
                covered[seq as usize] = 1;
            }
        }
        for seq in 0..total {
            let expected = u32::from(!seeded(seq));
            prop_assert_eq!(covered[seq as usize], expected, "seq {} coverage", seq);
        }
    }

    /// The merge ledger keeps exactly one outcome per seq — first write
    /// wins, duplicates counted — and reassembles records in canonical
    /// order whatever the arrival order.
    #[test]
    fn ledger_merge_is_idempotent_and_ordered(
        total in 1u64..40,
        arrivals in proptest::collection::vec(0u64..40, 1..120),
    ) {
        let mut ledger = MergeLedger::new(header(total));
        let mut first_seen: Vec<u64> = Vec::new();
        let mut dups = 0u64;
        for seq in arrivals.into_iter().map(|s| s % total) {
            if ledger.insert(ShardRecord { seq, outcome: outcome(seq) }) {
                first_seen.push(seq);
            } else {
                dups += 1;
            }
        }
        prop_assert_eq!(ledger.len(), first_seen.len() as u64);
        prop_assert_eq!(ledger.duplicates(), dups);
        let shard = ledger.to_shard();
        let seqs: Vec<u64> = shard.records.iter().map(|r| r.seq).collect();
        let mut sorted = first_seen.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seqs, sorted);
        prop_assert_eq!(ledger.is_complete(), ledger.len() == total);
    }
}

/// Every protocol message round-trips the canonical JSON encoding, and
/// the encoding is a fixpoint (serialize ∘ parse ∘ serialize is
/// identity) — the line protocol's analogue of the shard-file pin.
#[test]
fn protocol_messages_round_trip_canonical_json() {
    let spec = SweepSpec {
        mode: SweepMode::Binders,
        apps_xml: vec!["<application name='a'/>".into()],
        tile_counts: vec![1, 2, 3],
        include_noc: true,
        binders: vec!["greedy".into(), "spiral".into()],
    };
    let record = ShardRecord {
        seq: 7,
        outcome: outcome(7),
    };
    let client: Vec<ClientMsg> = vec![
        ClientMsg::Submit { spec: spec.clone() },
        ClientMsg::Fetch { worker: 4242 },
        ClientMsg::Complete {
            job: 0xdead_beef,
            lease: 3,
            records: vec![record.clone()],
            analysis: Vec::new(),
            passes: Vec::new(),
        },
    ];
    for msg in client {
        let text = serde::json::to_string(&msg);
        let back: ClientMsg = serde::json::from_str(&text).expect("client msg parses");
        assert_eq!(back, msg);
        assert_eq!(serde::json::to_string(&back), text, "canonical fixpoint");
    }
    let server: Vec<ServerMsg> = vec![
        ServerMsg::Assign {
            job: 1,
            lease: 2,
            range: SeqRange { start: 4, end: 8 },
            spec,
            analysis: Vec::new(),
            passes: Vec::new(),
        },
        ServerMsg::Progress {
            job: 1,
            done: 4,
            total: 9,
        },
        ServerMsg::Done {
            job: 1,
            report: "   binder   tiles\n".into(),
            stats: JobStats {
                total: 9,
                evaluated: 5,
                seeded: 4,
                duplicates: 1,
                reassigned: 2,
            },
        },
        ServerMsg::Reject {
            reason: "unknown binder `quantum`".into(),
        },
        ServerMsg::Shutdown,
    ];
    for msg in server {
        let text = serde::json::to_string(&msg);
        let back: ServerMsg = serde::json::from_str(&text).expect("server msg parses");
        assert_eq!(back, msg);
        assert_eq!(serde::json::to_string(&back), text, "canonical fixpoint");
    }
}

/// A completed ledger's shard renders through the same path `mamps dse`
/// renders, so the service's byte-identical-report contract bottoms out
/// here: same header + same records ⇒ same bytes.
#[test]
fn complete_ledger_renders_like_the_plain_report() {
    let total = 4u64;
    let mut ledger = MergeLedger::new(header(total));
    for seq in [2, 0, 3, 1] {
        assert!(ledger.insert(ShardRecord {
            seq,
            outcome: outcome(seq),
        }));
    }
    assert!(ledger.is_complete());
    let direct = mamps::flow::report::render_dse_report(&ledger.to_shard().into_dse_report());
    assert_eq!(ledger.render(), direct);
}
