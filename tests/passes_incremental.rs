//! The pass pipeline's memoization contract, end to end:
//!
//! * property test — on arbitrary generated applications and platforms,
//!   the pass-driven flow produces exactly the same mapping with and
//!   without a pass runner/cache attached (the runner memoizes, never
//!   changes results), down to canonical serialized bytes;
//! * property test — cold vs warm vs incremental (mutate one WCET and
//!   re-run against the warm cache) use-case mappings are byte-identical
//!   to fresh cold runs of the same inputs;
//! * regression — the pass cache survives its on-disk JSONL round trip
//!   and a warm process replays every flow pass from it.

use std::sync::Arc;

use proptest::prelude::*;

use mamps::flow::dse::cache as dse_cache;
use mamps::flow::dse::shard::ShardSpec;
use mamps::mapping::flow::{map_application, MapOptions};
use mamps::mapping::multi::{map_use_case, UseCase, UseCaseMapping};
use mamps::mapping::{PassCache, PassRunner};
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::Interconnect;
use mamps::sdf::gen::pipeline_app;
use mamps::sdf::GlobalAnalysisCache;
use serde::Serialize as _;

/// Canonical bytes of a mapping — what "byte-identical" means below.
fn mapping_bytes(m: &mamps::mapping::Mapping) -> String {
    let mut out = String::new();
    serde::json::emit(&m.to_value(), &mut out);
    out
}

fn cached_opts() -> (MapOptions, Arc<PassCache>) {
    let pass_cache = Arc::new(PassCache::new());
    let opts = MapOptions {
        cache: Some(Arc::new(GlobalAnalysisCache::new())),
        passes: Some(Arc::new(PassRunner::with_cache(Arc::clone(&pass_cache)))),
        ..MapOptions::default()
    };
    (opts, pass_cache)
}

/// The observable outcome of a use-case mapping, canonically serialized.
fn outcome_bytes(o: &UseCaseMapping) -> String {
    let mut out = String::new();
    for a in &o.admitted {
        out.push_str(&format!(
            "admitted {} group {} shared {}\n",
            a.name, a.group, a.shared_guarantee
        ));
        out.push_str(&mapping_bytes(&a.mapped.mapping));
        out.push('\n');
    }
    for r in &o.rejected {
        out.push_str(&format!("rejected {}: {}\n", r.name, r.reason));
    }
    for g in &o.groups {
        out.push_str(&mapping_bytes(&g.mapping));
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The pass pipeline is observation-equivalent to the plain flow: a
    /// runner (with both caches attached) produces byte-identical
    /// mappings, cold and warm.
    #[test]
    fn pass_pipeline_matches_plain_flow(
        wcets in proptest::collection::vec(20u64..150, 2..5),
        tiles in 1usize..4,
        noc in any::<bool>(),
    ) {
        let app = pipeline_app("p", &wcets, 16, &[1], None);
        let interconnect = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let arch = Architecture::homogeneous("x", tiles, interconnect).unwrap();

        let plain = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let (opts, pass_cache) = cached_opts();
        let cold = map_application(&app, &arch, &opts).unwrap();
        let warm = map_application(&app, &arch, &opts).unwrap();

        prop_assert_eq!(mapping_bytes(&plain.mapping), mapping_bytes(&cold.mapping));
        prop_assert_eq!(mapping_bytes(&cold.mapping), mapping_bytes(&warm.mapping));
        prop_assert_eq!(plain.analysis, cold.analysis.clone());
        prop_assert_eq!(cold.analysis, warm.analysis);
        // The warm run replayed from the cache rather than recomputing.
        prop_assert!(pass_cache.stats().hits >= 4, "{}", pass_cache.stats());
    }

    /// Cold vs warm vs incremental use-case mapping: re-running with an
    /// unchanged input replays everything; mutating one WCET and
    /// re-running against the warm cache still produces exactly the
    /// bytes a fresh cold run of the edited input produces.
    #[test]
    fn incremental_use_case_is_byte_identical(
        wcets_a in proptest::collection::vec(20u64..150, 2..4),
        wcets_b in proptest::collection::vec(20u64..150, 2..4),
        edit in 0usize..4,
        tiles in 2usize..4,
    ) {
        let apps = |wb: &[u64]| vec![
            pipeline_app("first", &wcets_a, 16, &[1], None),
            pipeline_app("second", wb, 16, &[1], None),
        ];
        let arch = Architecture::homogeneous("x", tiles, Interconnect::fsl()).unwrap();

        // Cold run of the original inputs populates the caches.
        let (opts, _pass_cache) = cached_opts();
        let uc = UseCase::new(apps(&wcets_b)).unwrap();
        let cold = map_use_case(&uc, &arch, &opts);

        // Warm re-run of identical inputs: byte-identical.
        let warm = map_use_case(&uc, &arch, &opts);
        prop_assert_eq!(outcome_bytes(&cold), outcome_bytes(&warm));

        // Mutate one WCET of the second application and re-run against
        // the warm caches (the incremental run) and from scratch (the
        // reference): byte-identical too.
        let mut edited = wcets_b.clone();
        let i = edit % edited.len();
        edited[i] += 7;
        let uc_edit = UseCase::new(apps(&edited)).unwrap();
        let incremental = map_use_case(&uc_edit, &arch, &opts);
        let reference = map_use_case(&uc_edit, &arch, &MapOptions::default());
        prop_assert_eq!(outcome_bytes(&reference), outcome_bytes(&incremental));
    }
}

/// The on-disk JSONL pass cache makes a *new process* incremental: a
/// fresh cache warmed from the persisted files replays every flow pass.
#[test]
fn persisted_pass_cache_replays_across_processes() {
    let dir = std::env::temp_dir().join(format!("mamps-passes-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let app = pipeline_app("p", &[40, 90, 40], 16, &[1], None);
    let arch = Architecture::homogeneous("x", 3, Interconnect::noc_for_tiles(3)).unwrap();

    // "Process 1": cold run, persist both cache layers.
    let (opts, pass_cache) = cached_opts();
    let cold = map_application(&app, &arch, &opts).unwrap();
    dse_cache::persist_pass_cache(&pass_cache, &dir, ShardSpec::full()).unwrap();
    dse_cache::persist_cache(opts.cache.as_ref().unwrap(), &dir, ShardSpec::full()).unwrap();

    // "Process 2": fresh in-memory state warmed only from disk.
    let warm_cache = Arc::new(PassCache::new());
    let load = dse_cache::load_pass_cache_dir(&warm_cache, &dir).unwrap();
    assert_eq!(load.skipped_lines, 0);
    assert_eq!(load.imported, pass_cache.len());
    let runner = Arc::new(PassRunner::with_cache(Arc::clone(&warm_cache)));
    let opts2 = MapOptions {
        passes: Some(Arc::clone(&runner)),
        ..MapOptions::default()
    };
    let warm = map_application(&app, &arch, &opts2).unwrap();

    assert_eq!(mapping_bytes(&cold.mapping), mapping_bytes(&warm.mapping));
    assert_eq!(cold.analysis, warm.analysis);
    let report = runner.report();
    for name in ["bind", "wire-alloc", "schedule", "buffer-size"] {
        let p = report.get(name).unwrap();
        assert_eq!((p.runs, p.hits), (0, 1), "pass {name} should replay: {p:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
