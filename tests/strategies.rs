//! Cross-strategy integration tests: every registered binding strategy
//! must produce mappings that validate structurally, are verified by the
//! unchanged throughput pipeline, and behave identically whether invoked
//! through `map_application` directly or through the end-to-end flow.

use proptest::prelude::*;

use mamps::flow::{run_flow_with_arch, FlowOptions};
use mamps::mapping::flow::{map_application, MapOptions};
use mamps::mapping::strategy::{self, GeneticBinder, StrategyHandle};
use mamps::mapping::MapError;
use mamps::platform::arch::Architecture;
use mamps::platform::interconnect::Interconnect;
use mamps::sdf::gen::{pipeline_app, strategies as genstrat};
use mamps::sdf::ratio::Ratio;

/// A fast genetic configuration so the property test stays quick while
/// still exercising the full GA code path.
fn quick_genetic(seed: u64) -> StrategyHandle {
    StrategyHandle::new(GeneticBinder {
        seed,
        population: 6,
        generations: 3,
        elite: 2,
        ..GeneticBinder::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For every strategy on random pipelines and platforms: the mapping
    /// validates, the recorded guarantee equals the analysis result, the
    /// strategy is attributed, and the end-to-end flow reproduces the
    /// direct `map_application` mapping bit-for-bit.
    #[test]
    fn every_strategy_validates_and_matches_direct_map(
        wcets in genstrat::wcets(2..5),
        tiles in 1usize..4,
        noc in any::<bool>(),
    ) {
        let app = pipeline_app("pipe", &wcets, 16, &[1], None);
        let interconnect = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let strategies: Vec<StrategyHandle> = vec![
            strategy::by_name("greedy").unwrap(),
            strategy::by_name("spiral").unwrap(),
            quick_genetic(1),
        ];
        for handle in strategies {
            let name = handle.name();
            let arch = Architecture::homogeneous("p", tiles, interconnect).unwrap();
            let opts = MapOptions::with_strategy(handle);
            let direct = map_application(&app, &arch, &opts).unwrap();
            prop_assert_eq!(direct.strategy, name);
            if let Err(e) = direct.mapping.validate(&app, &arch) {
                return Err(TestCaseError::fail(format!("{name}: invalid mapping: {e}")));
            }
            prop_assert_eq!(
                direct.analysis.iterations_per_cycle,
                direct.mapping.guaranteed(),
                "{} reports a different guarantee than its analysis", name
            );

            let flow_opts = FlowOptions {
                map: opts.clone(),
                ..FlowOptions::default()
            };
            let flow = run_flow_with_arch(&app, arch, &flow_opts).unwrap();
            prop_assert_eq!(
                &flow.mapped.mapping, &direct.mapping,
                "{} maps differently through the flow", name
            );
            prop_assert_eq!(flow.guaranteed_throughput(), direct.analysis.as_f64());

            // Re-running with the achieved throughput as the target must
            // succeed and report the same bound: every strategy meets the
            // target exactly like the direct call.
            let targeted = MapOptions {
                target: Some(direct.analysis.iterations_per_cycle),
                ..opts
            };
            let arch2 = Architecture::homogeneous("p", tiles, interconnect).unwrap();
            let t = map_application(&app, &arch2, &targeted).unwrap();
            prop_assert!(t.analysis.iterations_per_cycle >= direct.analysis.iterations_per_cycle);
        }
    }
}

#[test]
fn genetic_same_seed_same_mapping_end_to_end() {
    let app = pipeline_app("pipe", &[40, 10, 25, 5], 16, &[1], None);
    let run = |seed: u64| {
        let arch = Architecture::homogeneous("g", 2, Interconnect::noc_for_tiles(2)).unwrap();
        let opts = MapOptions::with_strategy(quick_genetic(seed));
        map_application(&app, &arch, &opts).unwrap()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.mapping, b.mapping, "same seed must give the same mapping");
    assert_eq!(a.analysis, b.analysis);
    // A different seed still yields a valid, verified mapping.
    let c = run(8);
    let arch = Architecture::homogeneous("g", 2, Interconnect::noc_for_tiles(2)).unwrap();
    c.mapping.validate(&app, &arch).unwrap();
}

#[test]
fn spiral_never_uses_more_noc_wires_than_greedy_on_mjpeg() {
    // The acceptance workload: on the MJPEG decoder over a mesh NoC the
    // spiral binder's distance-minimizing placement must not allocate more
    // wire-links than greedy.
    let cfg = mamps::mjpeg::encoder::StreamConfig {
        frames: 1,
        ..mamps::mjpeg::encoder::StreamConfig::small()
    };
    let app = mamps::mjpeg::app_model::mjpeg_application(&cfg, None).unwrap();
    let wires_of = |binder: &str| {
        let arch = Architecture::homogeneous("w", 3, Interconnect::noc_for_tiles(3)).unwrap();
        let opts = MapOptions::with_strategy(strategy::by_name(binder).unwrap());
        let mapped = map_application(&app, &arch, &opts).unwrap();
        mapped.mapping.noc_wire_units(app.graph(), &arch)
    };
    let greedy = wires_of("greedy");
    let spiral = wires_of("spiral");
    assert!(
        spiral <= greedy,
        "spiral allocated {spiral} wire-links, greedy {greedy}"
    );
}

#[test]
fn strategies_surface_infeasibility_identically() {
    // No tile can host the actors: every strategy must report Infeasible.
    let app = pipeline_app("pipe", &[1, 1], 16, &[1], None);
    let tiles = vec![mamps::platform::tile::TileConfig::master("t0")
        .with_processor(mamps::platform::types::ProcessorType::custom("dsp"))];
    for handle in [
        strategy::by_name("greedy").unwrap(),
        strategy::by_name("spiral").unwrap(),
        quick_genetic(1),
    ] {
        let arch = Architecture::new("bad", tiles.clone(), Interconnect::fsl()).unwrap();
        let opts = MapOptions::with_strategy(handle.clone());
        assert!(
            matches!(
                map_application(&app, &arch, &opts),
                Err(MapError::Infeasible(_))
            ),
            "{} did not report infeasibility",
            handle.name()
        );
    }
}

#[test]
fn unmeetable_target_fails_for_every_strategy() {
    let app = pipeline_app("pipe", &[100, 100], 16, &[1], None);
    for handle in [
        strategy::by_name("greedy").unwrap(),
        strategy::by_name("spiral").unwrap(),
        quick_genetic(1),
    ] {
        let arch = Architecture::homogeneous("t", 2, Interconnect::fsl()).unwrap();
        let opts = MapOptions {
            target: Some(Ratio::new(1, 10)),
            ..MapOptions::with_strategy(handle.clone())
        };
        assert!(
            matches!(
                map_application(&app, &arch, &opts),
                Err(MapError::ConstraintUnmet(_))
            ),
            "{} accepted an impossible target",
            handle.name()
        );
    }
}
