//! # mamps-codegen — the MAMPS platform generator
//!
//! Turns a mapped application into a complete, buildable project (paper
//! §5.2): per-tile C wrapper code with the static-order schedule as a
//! lookup table, communication initialization, calculated memory maps, the
//! structural hardware netlist with instantiated template components, NoC
//! route programming, and the XPS TCL build script. On the real flow this
//! project goes to Xilinx Platform Studio; here it is the verifiable
//! artefact of the generation step (Table 1, "Generating Xilinx project").
//!
//! ## Example
//!
//! ```
//! use mamps_codegen::generate_project;
//! use mamps_mapping::flow::{map_application, MapOptions};
//! use mamps_platform::arch::Architecture;
//! use mamps_platform::interconnect::Interconnect;
//! use mamps_sdf::graph::SdfGraphBuilder;
//! use mamps_sdf::model::HomogeneousModelBuilder;
//!
//! let mut b = SdfGraphBuilder::new("app");
//! let x = b.add_actor("x", 1);
//! let y = b.add_actor("y", 1);
//! b.add_channel("e", x, 1, y, 1);
//! let graph = b.build().unwrap();
//! let mut mb = HomogeneousModelBuilder::new("microblaze");
//! mb.actor("x", 50, 2048, 128).actor("y", 80, 2048, 128);
//! let app = mb.finish(graph, None).unwrap();
//! let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
//! let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
//!
//! let project = generate_project(&app, app.graph(), &mapped.mapping, &arch, "demo").unwrap();
//! assert!(project.files.contains_key("system.tcl"));
//! ```

pub mod cwrap;
pub mod memmap;
pub mod netlist;
pub mod project;
pub mod tcl;

pub use memmap::{memory_maps, TileMemoryMap};
pub use project::{generate_project, Project};

/// Errors of the platform generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The mapping/architecture combination is invalid for generation.
    Invalid(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Invalid(m) => write!(f, "cannot generate platform: {m}"),
        }
    }
}

impl std::error::Error for GenError {}
