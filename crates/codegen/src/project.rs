//! Project assembly: the complete generated MAMPS project as an in-memory
//! file tree, optionally written to disk. This is the output of the
//! "Generating Xilinx project (MAMPS)" step of Table 1.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use mamps_platform::arch::Architecture;
use mamps_platform::types::TileId;
use mamps_sdf::graph::SdfGraph;
use mamps_sdf::model::ApplicationModel;

use mamps_mapping::mapping::Mapping;

use crate::cwrap::{runtime_header, tile_main_c};
use crate::memmap::{memory_maps, TileMemoryMap};
use crate::netlist::{noc_routes, platform_netlist};
use crate::tcl::xps_script;
use crate::GenError;

/// A generated project: path -> file contents.
#[derive(Debug, Clone, Default)]
pub struct Project {
    /// Files of the project, keyed by relative path.
    pub files: BTreeMap<String, String>,
    /// The computed memory maps (also rendered into `memory_map.txt`).
    pub memory: Vec<TileMemoryMap>,
}

impl Project {
    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total size of all generated text.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|s| s.len()).sum()
    }

    /// Writes the project under `dir`, creating directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        for (rel, contents) in &self.files {
            let path = dir.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, contents)?;
        }
        Ok(())
    }
}

/// Generates the complete project for a mapped application.
///
/// # Errors
///
/// Propagates memory-map and generation errors.
pub fn generate_project(
    app: &ApplicationModel,
    graph: &SdfGraph,
    mapping: &Mapping,
    arch: &Architecture,
    project_name: &str,
) -> Result<Project, GenError> {
    let memory = memory_maps(app, graph, mapping, arch)?;
    let mut files = BTreeMap::new();

    files.insert(
        format!("{project_name}.mhs"),
        platform_netlist(graph, mapping, arch, &memory),
    );
    files.insert("system.tcl".to_string(), xps_script(arch, project_name));
    files.insert("sw/mamps_rt.h".to_string(), runtime_header());
    files.insert(
        "sw/noc_setup.c".to_string(),
        noc_routes(graph, mapping, arch)?,
    );
    for t in 0..arch.tile_count() {
        let tile = TileId(t);
        if mapping.binding.actors_on(tile).is_empty() {
            continue;
        }
        files.insert(
            format!("sw/tile{t}/main.c"),
            tile_main_c(app, graph, mapping, arch, tile)?,
        );
    }

    // Human-readable memory map.
    let mut mm = String::new();
    let _ = writeln!(mm, "tile  imem_bytes  dmem_bytes  buffer_bytes");
    for m in &memory {
        let _ = writeln!(
            mm,
            "{:<5} {:<11} {:<11} {}",
            m.tile.0, m.imem_bytes, m.dmem_bytes, m.buffer_bytes
        );
    }
    files.insert("memory_map.txt".to_string(), mm);

    // Mapping summary (the common input format, serialized for reference).
    let mut summary = String::new();
    let _ = writeln!(summary, "# mapping summary");
    for (aid, actor) in graph.actors() {
        let _ = writeln!(
            summary,
            "actor {} -> {} ({})",
            actor.name(),
            arch.tile(mapping.binding.tile_of[aid.0]).name(),
            mapping.binding.processor_of[aid.0]
        );
    }
    let _ = writeln!(
        summary,
        "guaranteed throughput: {}/{} iterations/cycle",
        mapping.guaranteed_iterations, mapping.guaranteed_cycles
    );
    files.insert("mapping.txt".to_string(), summary);

    Ok(Project { files, memory })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_mapping::flow::{map_application, MapOptions};
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn setup() -> (ApplicationModel, Architecture, Mapping) {
        let mut b = SdfGraphBuilder::new("app");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel_full("e", x, 1, y, 1, 0, 64);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 50, 4096, 512).actor("y", 60, 4096, 512);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        (app, arch, mapped.mapping)
    }

    #[test]
    fn project_contains_all_artifacts() {
        let (app, arch, mapping) = setup();
        let p = generate_project(&app, app.graph(), &mapping, &arch, "demo").unwrap();
        assert!(p.files.contains_key("demo.mhs"));
        assert!(p.files.contains_key("system.tcl"));
        assert!(p.files.contains_key("sw/mamps_rt.h"));
        assert!(p.files.contains_key("sw/tile0/main.c"));
        assert!(p.files.contains_key("sw/tile1/main.c"));
        assert!(p.files.contains_key("memory_map.txt"));
        assert!(p.files.contains_key("mapping.txt"));
        assert!(p.total_bytes() > 1000);
    }

    #[test]
    fn writes_to_disk() {
        let (app, arch, mapping) = setup();
        let p = generate_project(&app, app.graph(), &mapping, &arch, "demo").unwrap();
        let dir = std::env::temp_dir().join(format!("mamps_test_{}", std::process::id()));
        p.write_to(&dir).unwrap();
        assert!(dir.join("demo.mhs").exists());
        assert!(dir.join("sw/tile0/main.c").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_tiles_skipped() {
        let (app, _, mapping) = setup();
        let arch3 = Architecture::homogeneous("m", 3, Interconnect::fsl()).unwrap();
        // Mapping only uses 2 tiles; extend schedule/rounds vectors.
        let mut mapping = mapping;
        mapping.schedules.push(Vec::new());
        mapping.rounds_per_iteration.push(1);
        let p = generate_project(&app, app.graph(), &mapping, &arch3, "demo").unwrap();
        assert!(!p.files.contains_key("sw/tile2/main.c"));
    }
}
