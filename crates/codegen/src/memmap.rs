//! Memory-map calculation (paper §5.2: "Memory sizes are calculated for
//! each tile based on the mapped buffers, actors and the size of the
//! scheduling and communication layer").

use mamps_platform::arch::Architecture;
use mamps_platform::tile::MAX_TILE_MEMORY_BYTES;
use mamps_platform::types::TileId;
use mamps_sdf::graph::SdfGraph;
use mamps_sdf::model::ApplicationModel;

use mamps_mapping::mapping::Mapping;

use crate::GenError;

/// Size of the scheduling + communication runtime library per tile.
pub const RUNTIME_IMEM_BYTES: u64 = 8 * 1024;
/// Data segment of the runtime (schedule table, channel descriptors, stack).
pub const RUNTIME_DMEM_BYTES: u64 = 4 * 1024;

/// The computed memory map of one tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileMemoryMap {
    /// Tile index.
    pub tile: TileId,
    /// Instruction memory required, in bytes (rounded to 4 kB).
    pub imem_bytes: u64,
    /// Data memory required, in bytes (rounded to 4 kB).
    pub dmem_bytes: u64,
    /// Portion of data memory holding channel buffers.
    pub buffer_bytes: u64,
}

fn round_4k(bytes: u64) -> u64 {
    bytes.div_ceil(4096) * 4096
}

/// Computes per-tile memory maps for a mapped application.
///
/// Buffers are charged to the tiles of their endpoints: local channels
/// entirely on their tile, cross-tile channels `alpha_src` tokens at the
/// source and `alpha_dst` tokens at the destination.
///
/// # Errors
///
/// [`GenError::Invalid`] if a tile exceeds the MAMPS 256 kB memory limit.
pub fn memory_maps(
    app: &ApplicationModel,
    graph: &SdfGraph,
    mapping: &Mapping,
    arch: &Architecture,
) -> Result<Vec<TileMemoryMap>, GenError> {
    let binding = &mapping.binding;
    let mut maps = Vec::with_capacity(arch.tile_count());
    for t in 0..arch.tile_count() {
        let tile = TileId(t);
        let mut imem = RUNTIME_IMEM_BYTES;
        let mut dmem = RUNTIME_DMEM_BYTES;
        let mut buffers = 0u64;
        for a in binding.actors_on(tile) {
            let im = app
                .implementation_for(a, arch.tile(tile).processor().name())
                .ok_or_else(|| {
                    GenError::Invalid(format!(
                        "actor `{}` lacks an implementation for tile {tile}",
                        graph.actor(a).name()
                    ))
                })?;
            imem += im.instruction_memory;
            dmem += im.data_memory;
        }
        for (cid, ch) in graph.channels() {
            let alloc = mapping.channels[cid.0];
            if ch.is_self_edge() {
                continue;
            }
            let src_here = binding.tile_of[ch.src().0] == tile;
            let dst_here = binding.tile_of[ch.dst().0] == tile;
            if src_here && dst_here {
                buffers += alloc.local_capacity * ch.token_size();
            } else if src_here {
                buffers += alloc.alpha_src * ch.token_size();
            } else if dst_here {
                buffers += alloc.alpha_dst * ch.token_size();
            }
        }
        dmem += buffers;
        let map = TileMemoryMap {
            tile,
            imem_bytes: round_4k(imem),
            dmem_bytes: round_4k(dmem),
            buffer_bytes: buffers,
        };
        if map.imem_bytes + map.dmem_bytes > MAX_TILE_MEMORY_BYTES {
            return Err(GenError::Invalid(format!(
                "tile {tile} needs {} + {} bytes, exceeding the {MAX_TILE_MEMORY_BYTES}-byte limit",
                map.imem_bytes, map.dmem_bytes
            )));
        }
        maps.push(map);
    }
    Ok(maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_mapping::flow::{map_application, MapOptions};
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn setup() -> (ApplicationModel, Architecture, Mapping) {
        let mut b = SdfGraphBuilder::new("app");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel_full("e", x, 1, y, 1, 0, 64);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 50, 10 * 1024, 2048)
            .actor("y", 60, 12 * 1024, 1024);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        (app, arch, mapped.mapping)
    }

    #[test]
    fn maps_cover_all_tiles_and_round_to_4k() {
        let (app, arch, mapping) = setup();
        let maps = memory_maps(&app, app.graph(), &mapping, &arch).unwrap();
        assert_eq!(maps.len(), 2);
        for m in &maps {
            assert_eq!(m.imem_bytes % 4096, 0);
            assert_eq!(m.dmem_bytes % 4096, 0);
            assert!(m.imem_bytes >= RUNTIME_IMEM_BYTES);
            assert!(m.dmem_bytes >= RUNTIME_DMEM_BYTES);
        }
    }

    #[test]
    fn buffers_charged_to_endpoint_tiles() {
        let (app, arch, mapping) = setup();
        let maps = memory_maps(&app, app.graph(), &mapping, &arch).unwrap();
        // Cross-tile channel: both tiles hold buffer bytes.
        if mapping.binding.tile_of[0] != mapping.binding.tile_of[1] {
            assert!(maps[0].buffer_bytes > 0);
            assert!(maps[1].buffer_bytes > 0);
        }
    }

    #[test]
    fn oversized_buffers_rejected() {
        let (app, arch, mut mapping) = setup();
        mapping.channels[0].alpha_src = 10_000; // 640 kB of 64-byte tokens
        assert!(matches!(
            memory_maps(&app, app.graph(), &mapping, &arch),
            Err(GenError::Invalid(_))
        ));
    }
}
