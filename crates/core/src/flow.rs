//! The automated design flow (paper §5, Fig. 1): architecture generation,
//! SDF3 mapping, MAMPS platform generation, and "synthesis" (elaboration of
//! the executable platform model). Each automated step is timed, feeding
//! the Table 1 designer-effort report.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mamps_codegen::project::{generate_project, Project};
use mamps_codegen::GenError;
use mamps_mapping::flow::{map_application, MapOptions, MappedApplication};
use mamps_mapping::MapError;
use mamps_platform::arch::{ArchError, Architecture};
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::passes::PassRunner;
use mamps_sim::{Engine, SimError, System, WcetTimes};

use crate::validate::GuaranteeReport;

/// Errors of the end-to-end flow.
#[derive(Debug)]
pub enum FlowError {
    /// Architecture construction failed.
    Arch(ArchError),
    /// Mapping failed.
    Map(MapError),
    /// Platform generation failed.
    Gen(GenError),
    /// The simulated platform failed to run.
    Sim(SimError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Arch(e) => write!(f, "architecture step failed: {e}"),
            FlowError::Map(e) => write!(f, "mapping step failed: {e}"),
            FlowError::Gen(e) => write!(f, "generation step failed: {e}"),
            FlowError::Sim(e) => write!(f, "platform run failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<ArchError> for FlowError {
    fn from(e: ArchError) -> Self {
        FlowError::Arch(e)
    }
}
impl From<MapError> for FlowError {
    fn from(e: MapError) -> Self {
        FlowError::Map(e)
    }
}
impl From<GenError> for FlowError {
    fn from(e: GenError) -> Self {
        FlowError::Gen(e)
    }
}
impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Sim(e)
    }
}

/// Wall-clock durations of the automated flow steps (Table 1 bottom half).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// "Generating architecture model".
    pub architecture_generation: Duration,
    /// "Mapping the design (SDF3)".
    pub mapping: Duration,
    /// "Generating Xilinx project (MAMPS)".
    pub platform_generation: Duration,
    /// "Synthesis of the system" — here: elaborating the executable
    /// platform model and verifying it boots (runs a warm-up iteration).
    pub synthesis: Duration,
}

/// Options of the flow.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Mapping options.
    pub map: MapOptions,
    /// Name of the generated project.
    pub project_name: String,
    /// Iterations of the warm-up/validation run in the synthesis step.
    pub boot_iterations: u64,
    /// Worker threads for callers that evaluate independent flow runs
    /// (e.g. the DSE sweep and the `mamps dse --jobs` knob). A single flow
    /// run is sequential regardless; results never depend on this value.
    pub jobs: usize,
    /// Binding strategies for the DSE sweep ([`crate::dse::explore_report`]
    /// evaluates every tile count × interconnect × strategy combination).
    /// Empty means "just the strategy configured in `map.bind.strategy`".
    /// A single flow run always uses `map.bind.strategy`.
    pub binders: Vec<mamps_mapping::StrategyHandle>,
    /// Which shard of the DSE design-point space this process evaluates
    /// (`mamps dse --shard i/n`); `None` sweeps the whole space. Single
    /// flow runs ignore it. See [`crate::dse::shard`] for the partition
    /// contract and the merge.
    pub shard: Option<crate::dse::shard::ShardSpec>,
    /// Simulator engine for every verification run of the flow (the
    /// synthesis boot run, the multi-flow validation runs, traced group
    /// re-runs). Both engines are bit-identical by contract; `lockstep`
    /// exists for oracle cross-checks (`mamps ... --engine lockstep`,
    /// `scripts/sim_equiv.sh`).
    pub sim_engine: Engine,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            map: MapOptions::default(),
            project_name: "mamps_system".into(),
            boot_iterations: 3,
            jobs: 1,
            binders: Vec::new(),
            shard: None,
            sim_engine: Engine::default(),
        }
    }
}

/// Result of a complete flow run.
#[derive(Debug)]
pub struct FlowResult {
    /// The (possibly auto-generated) architecture.
    pub arch: Architecture,
    /// The mapping with its guaranteed throughput.
    pub mapped: MappedApplication,
    /// The generated platform project.
    pub project: Project,
    /// Step timings for the designer-effort report.
    pub timings: StepTimings,
}

impl FlowResult {
    /// The guaranteed worst-case throughput in iterations per cycle.
    pub fn guaranteed_throughput(&self) -> f64 {
        self.mapped.analysis.as_f64()
    }

    /// Name of the binding strategy that produced the mapping.
    pub fn strategy(&self) -> &'static str {
        self.mapped.strategy
    }
}

/// Runs the flow with an auto-generated homogeneous architecture of
/// `tiles` tiles over `interconnect`.
///
/// # Errors
///
/// Any step may fail; see [`FlowError`].
pub fn run_flow(
    app: &ApplicationModel,
    tiles: usize,
    interconnect: Interconnect,
    opts: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    let t0 = Instant::now();
    let arch = Architecture::homogeneous("auto", tiles, interconnect)?;
    let architecture_generation = t0.elapsed();
    run_flow_on(app, arch, opts, architecture_generation)
}

/// Runs the flow on a user-provided architecture (e.g. with CA tiles).
///
/// # Errors
///
/// Any step may fail; see [`FlowError`].
pub fn run_flow_with_arch(
    app: &ApplicationModel,
    arch: Architecture,
    opts: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    run_flow_on(app, arch, opts, Duration::ZERO)
}

/// Runs `f` under the pass runner's wall-clock accounting (uncached:
/// generation and simulation outputs must never be replayed), or
/// directly when no runner is configured.
fn timed<T>(passes: &Option<Arc<PassRunner>>, name: &'static str, f: impl FnOnce() -> T) -> T {
    match passes {
        Some(r) => r.time(name, f),
        None => f(),
    }
}

fn run_flow_on(
    app: &ApplicationModel,
    arch: Architecture,
    opts: &FlowOptions,
    architecture_generation: Duration,
) -> Result<FlowResult, FlowError> {
    let t1 = Instant::now();
    let mapped = map_application(app, &arch, &opts.map)?;
    let mapping_time = t1.elapsed();

    let t2 = Instant::now();
    let project = timed(&opts.map.passes, "platform-gen", || {
        generate_project(app, app.graph(), &mapped.mapping, &arch, &opts.project_name)
    })?;
    let platform_generation = t2.elapsed();

    // "Synthesis": elaborate the executable platform and verify it boots.
    let t3 = Instant::now();
    timed(&opts.map.passes, "boot-sim", || -> Result<(), SimError> {
        let wcet = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let system =
            System::new(app.graph(), &mapped.mapping, &arch, &wcet)?.with_engine(opts.sim_engine);
        let _boot = system.run(opts.boot_iterations, 1_000_000_000)?;
        Ok(())
    })?;
    let synthesis = t3.elapsed();

    Ok(FlowResult {
        arch,
        mapped,
        project,
        timings: StepTimings {
            architecture_generation,
            mapping: mapping_time,
            platform_generation,
            synthesis,
        },
    })
}

// ---------------------------------------------------------------------------
// Multi-application flow
// ---------------------------------------------------------------------------

/// Per-application section of a multi-application flow report.
#[derive(Debug, Clone)]
pub struct AppSection {
    /// The application's (graph) name.
    pub name: String,
    /// True when the admission loop accepted the application.
    pub admitted: bool,
    /// Binding strategy that mapped it (admitted applications only).
    pub strategy: Option<&'static str>,
    /// Tiles the application occupies, ascending (admitted only).
    pub tiles: Vec<usize>,
    /// The application's throughput constraint (iterations/cycle).
    pub constraint: Option<f64>,
    /// Guaranteed throughput if the application ran alone (admitted only).
    pub isolated_bound: Option<f64>,
    /// Guaranteed throughput under sharing — the lockstep bound of the
    /// application's interference group (admitted only).
    pub shared_bound: Option<f64>,
    /// Throughput measured by the cycle-level simulator running all
    /// admitted applications concurrently (admitted only).
    pub measured: Option<f64>,
    /// Measured-vs-shared-bound comparison (admitted only).
    pub guarantee: Option<GuaranteeReport>,
    /// The structured rejection reason (rejected applications only).
    pub rejection: Option<String>,
}

/// Result of the multi-application flow: the admission outcome, one report
/// section per application, and the step timings.
#[derive(Debug)]
pub struct MultiFlowResult {
    /// The architecture everything was mapped onto.
    pub arch: Architecture,
    /// The full admission outcome (mappings, groups, occupancy).
    pub outcome: mamps_mapping::multi::UseCaseMapping,
    /// One section per application, in admission order.
    pub sections: Vec<AppSection>,
    /// Step timings (mapping = the whole admission loop, synthesis = the
    /// concurrent validation runs).
    pub timings: StepTimings,
    /// The simulator engine the validation runs used;
    /// [`trace_group`](Self::trace_group) re-runs with the same engine so
    /// traces show exactly what was validated.
    pub sim_engine: Engine,
}

impl MultiFlowResult {
    /// Number of admitted applications.
    pub fn admitted_count(&self) -> usize {
        self.outcome.admitted.len()
    }

    /// True when the simulator validated every admitted application's
    /// shared guarantee.
    pub fn all_guarantees_hold(&self) -> bool {
        self.sections
            .iter()
            .filter(|s| s.admitted)
            .all(|s| s.guarantee.as_ref().is_some_and(|g| g.holds()))
    }

    /// Re-runs interference group `group`'s validation simulation with
    /// tracing, returning the measurement and the recorded events — the
    /// input of [`mamps_sim::render_gantt_labeled`] together with
    /// [`group_attribution`](Self::group_attribution). Uses the same
    /// system construction as the validation runs of [`run_multi_flow`],
    /// so the trace shows exactly the deployed combined system.
    ///
    /// # Errors
    ///
    /// [`SimError`] if the traced run fails to complete.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn trace_group(
        &self,
        group: usize,
        iterations: u64,
        max_events: usize,
    ) -> Result<(mamps_sim::Measurement, Vec<mamps_sim::TraceEvent>), SimError> {
        let g = &self.outcome.groups[group];
        let times = WcetTimes::new(g.mapping.binding.wcet_of.clone());
        let system = System::new_with_repetitions(
            &g.graph,
            &g.mapping,
            &self.arch,
            &times,
            g.combined_repetitions(),
        )?
        .with_engine(self.sim_engine);
        system.run_traced(iterations, u64::MAX / 4, max_events)
    }

    /// Actor/channel → application attribution of interference group
    /// `group`, built from the member spans of its combined union graph.
    /// Feed it to [`mamps_sim::render_gantt_labeled`] to split a shared
    /// tile's Gantt row per application (`mamps map-multi --gantt`).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn group_attribution(&self, group: usize) -> mamps_sim::AppAttribution {
        let g = &self.outcome.groups[group];
        let mut attribution = mamps_sim::AppAttribution {
            names: Vec::with_capacity(g.members.len()),
            app_of_actor: vec![0; g.graph.actor_count()],
            app_of_channel: vec![0; g.graph.channel_count()],
        };
        for (mi, m) in g.members.iter().enumerate() {
            attribution
                .names
                .push(self.outcome.admitted[m.admitted].name.clone());
            for a in m.actors.clone() {
                attribution.app_of_actor[a] = mi;
            }
            for c in m.channels.clone() {
                attribution.app_of_channel[c] = mi;
            }
        }
        attribution
    }
}

/// Runs the multi-application flow: admits `apps` one at a time onto
/// `arch` (see [`mamps_mapping::multi::map_use_case`]), then validates
/// every admitted application's shared guarantee by simulating each
/// interference group — all member applications concurrently on the
/// shared tiles — for `sim_iterations` lockstep iterations at WCET.
///
/// Rejected applications do not fail the flow; their sections carry the
/// structured rejection reason instead.
///
/// # Errors
///
/// * [`FlowError::Map`] if the use-case itself is invalid (empty,
///   duplicate application names).
/// * [`FlowError::Sim`] if a validation run fails to complete.
pub fn run_multi_flow(
    apps: Vec<ApplicationModel>,
    arch: Architecture,
    opts: &FlowOptions,
    sim_iterations: u64,
) -> Result<MultiFlowResult, FlowError> {
    use mamps_mapping::multi::{map_use_case, UseCase};

    let uc = UseCase::new(apps)?;
    let t0 = Instant::now();
    let outcome = map_use_case(&uc, &arch, &opts.map);
    let mapping_time = t0.elapsed();

    // Validate each interference group with one concurrent WCET run.
    // Timed, never cached: these are measurements, not derivations.
    let t1 = Instant::now();
    let group_measured: Vec<f64> = timed(
        &opts.map.passes,
        "validate-sim",
        || -> Result<_, SimError> {
            let mut measured = Vec::with_capacity(outcome.groups.len());
            for group in &outcome.groups {
                let times = WcetTimes::new(group.mapping.binding.wcet_of.clone());
                let system = System::new_with_repetitions(
                    &group.graph,
                    &group.mapping,
                    &arch,
                    &times,
                    group.combined_repetitions(),
                )?
                .with_engine(opts.sim_engine);
                let m = system.run(sim_iterations, u64::MAX / 4)?;
                measured.push(m.steady_throughput());
            }
            Ok(measured)
        },
    )?;
    let synthesis = t1.elapsed();

    // Assemble one section per application, restoring admission order via
    // the indices the admission loop recorded.
    let mut indexed: Vec<(usize, AppSection)> = Vec::with_capacity(uc.len());
    for a in &outcome.admitted {
        let shared = a.shared_guarantee.to_f64();
        let measured = group_measured[a.group];
        indexed.push((
            a.index,
            AppSection {
                name: a.name.clone(),
                admitted: true,
                strategy: Some(a.mapped.strategy),
                tiles: a.tiles().iter().map(|t| t.0).collect(),
                constraint: a.constraint.map(|c| c.to_f64()),
                isolated_bound: Some(a.mapped.analysis.as_f64()),
                shared_bound: Some(shared),
                measured: Some(measured),
                guarantee: Some(GuaranteeReport::new(shared, measured)),
                rejection: None,
            },
        ));
    }
    for r in &outcome.rejected {
        indexed.push((
            r.index,
            AppSection {
                name: r.name.clone(),
                admitted: false,
                strategy: None,
                tiles: Vec::new(),
                // Same fallback the admission decision used: a global
                // target override takes precedence over the model's own
                // constraint, so the report matches the rejection reason.
                constraint: opts.map.target.map(|t| t.to_f64()).or_else(|| {
                    uc.apps()[r.index]
                        .throughput_constraint()
                        .map(|c| c.as_ratio().to_f64())
                }),
                isolated_bound: None,
                shared_bound: None,
                measured: None,
                guarantee: None,
                rejection: Some(r.reason.to_string()),
            },
        ));
    }
    indexed.sort_by_key(|(i, _)| *i);
    let sections: Vec<AppSection> = indexed.into_iter().map(|(_, s)| s).collect();

    Ok(MultiFlowResult {
        arch,
        outcome,
        sections,
        timings: StepTimings {
            architecture_generation: Duration::ZERO,
            mapping: mapping_time,
            platform_generation: Duration::ZERO,
            synthesis,
        },
        sim_engine: opts.sim_engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn app() -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("a");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel_full("e", x, 1, y, 1, 0, 32);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 40, 2048, 256).actor("y", 70, 2048, 256);
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn flow_end_to_end() {
        let r = run_flow(&app(), 2, Interconnect::fsl(), &FlowOptions::default()).unwrap();
        assert!(r.guaranteed_throughput() > 0.0);
        assert!(r.project.file_count() >= 5);
        assert!(r.timings.mapping > Duration::ZERO);
    }

    #[test]
    fn flow_with_custom_arch() {
        let arch = Architecture::homogeneous_with_ca("ca", 2, Interconnect::fsl()).unwrap();
        let r = run_flow_with_arch(&app(), arch, &FlowOptions::default()).unwrap();
        assert!(r.guaranteed_throughput() > 0.0);
    }

    #[test]
    fn flow_errors_propagate() {
        let r = run_flow(&app(), 0, Interconnect::fsl(), &FlowOptions::default());
        assert!(matches!(r, Err(FlowError::Arch(_))));
    }

    fn named_app(name: &str, wcets: &[u64]) -> ApplicationModel {
        let mut b = SdfGraphBuilder::new(name);
        let ids: Vec<_> = (0..wcets.len())
            .map(|i| b.add_actor(format!("{name}{i}"), 1))
            .collect();
        for i in 0..wcets.len() - 1 {
            b.add_channel_full(format!("{name}e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &w) in wcets.iter().enumerate() {
            mb.actor(format!("{name}{i}"), w, 2048, 256);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn multi_flow_validates_concurrent_apps() {
        let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
        let r = run_multi_flow(
            vec![named_app("one", &[80, 80]), named_app("two", &[30, 30])],
            arch,
            &FlowOptions::default(),
            60,
        )
        .unwrap();
        assert_eq!(r.admitted_count(), 2);
        assert!(r.all_guarantees_hold(), "sections: {:?}", r.sections);
        assert_eq!(r.sections.len(), 2);
        for s in &r.sections {
            assert!(s.admitted);
            assert!(s.measured.unwrap() >= s.shared_bound.unwrap() * (1.0 - 1e-9));
            assert!(s.shared_bound.unwrap() <= s.isolated_bound.unwrap() + 1e-15);
            assert!(!s.tiles.is_empty());
        }
        assert!(r.timings.mapping > Duration::ZERO);
    }

    #[test]
    fn multi_flow_reports_rejections_without_failing() {
        use mamps_sdf::model::ThroughputConstraint;
        let mut b = SdfGraphBuilder::new("impossible");
        let x = b.add_actor("ix", 1);
        let y = b.add_actor("iy", 1);
        b.add_channel_full("ie", x, 1, y, 1, 0, 16);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("ix", 900, 2048, 256).actor("iy", 900, 2048, 256);
        let impossible = mb
            .finish(
                g,
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 10,
                }),
            )
            .unwrap();

        let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
        let r = run_multi_flow(
            vec![named_app("fits", &[60, 60]), impossible],
            arch,
            &FlowOptions::default(),
            40,
        )
        .unwrap();
        assert_eq!(r.admitted_count(), 1);
        assert!(r.all_guarantees_hold());
        let rejected = r.sections.iter().find(|s| !s.admitted).unwrap();
        assert_eq!(rejected.name, "impossible");
        assert!(rejected
            .rejection
            .as_ref()
            .unwrap()
            .contains("mapping failed"));
    }

    #[test]
    fn multi_flow_engines_agree_on_measured_throughput() {
        let run = |engine| {
            let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
            let opts = FlowOptions {
                sim_engine: engine,
                ..FlowOptions::default()
            };
            run_multi_flow(
                vec![named_app("one", &[80, 80]), named_app("two", &[30, 30])],
                arch,
                &opts,
                60,
            )
            .unwrap()
        };
        let ev = run(Engine::Event);
        let ls = run(Engine::Lockstep);
        assert_eq!(ev.sections.len(), ls.sections.len());
        for (a, b) in ev.sections.iter().zip(&ls.sections) {
            assert_eq!(a.measured, b.measured, "engines diverge for {}", a.name);
        }
    }

    #[test]
    fn multi_flow_rejects_invalid_use_case() {
        let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
        assert!(matches!(
            run_multi_flow(Vec::new(), arch, &FlowOptions::default(), 10),
            Err(FlowError::Map(_))
        ));
    }
}
