//! The automated design flow (paper §5, Fig. 1): architecture generation,
//! SDF3 mapping, MAMPS platform generation, and "synthesis" (elaboration of
//! the executable platform model). Each automated step is timed, feeding
//! the Table 1 designer-effort report.

use std::time::{Duration, Instant};

use mamps_codegen::project::{generate_project, Project};
use mamps_codegen::GenError;
use mamps_mapping::flow::{map_application, MapOptions, MappedApplication};
use mamps_mapping::MapError;
use mamps_platform::arch::{ArchError, Architecture};
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::model::ApplicationModel;
use mamps_sim::{SimError, System, WcetTimes};

/// Errors of the end-to-end flow.
#[derive(Debug)]
pub enum FlowError {
    /// Architecture construction failed.
    Arch(ArchError),
    /// Mapping failed.
    Map(MapError),
    /// Platform generation failed.
    Gen(GenError),
    /// The simulated platform failed to run.
    Sim(SimError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Arch(e) => write!(f, "architecture step failed: {e}"),
            FlowError::Map(e) => write!(f, "mapping step failed: {e}"),
            FlowError::Gen(e) => write!(f, "generation step failed: {e}"),
            FlowError::Sim(e) => write!(f, "platform run failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<ArchError> for FlowError {
    fn from(e: ArchError) -> Self {
        FlowError::Arch(e)
    }
}
impl From<MapError> for FlowError {
    fn from(e: MapError) -> Self {
        FlowError::Map(e)
    }
}
impl From<GenError> for FlowError {
    fn from(e: GenError) -> Self {
        FlowError::Gen(e)
    }
}
impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Sim(e)
    }
}

/// Wall-clock durations of the automated flow steps (Table 1 bottom half).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// "Generating architecture model".
    pub architecture_generation: Duration,
    /// "Mapping the design (SDF3)".
    pub mapping: Duration,
    /// "Generating Xilinx project (MAMPS)".
    pub platform_generation: Duration,
    /// "Synthesis of the system" — here: elaborating the executable
    /// platform model and verifying it boots (runs a warm-up iteration).
    pub synthesis: Duration,
}

/// Options of the flow.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Mapping options.
    pub map: MapOptions,
    /// Name of the generated project.
    pub project_name: String,
    /// Iterations of the warm-up/validation run in the synthesis step.
    pub boot_iterations: u64,
    /// Worker threads for callers that evaluate independent flow runs
    /// (e.g. the DSE sweep and the `mamps dse --jobs` knob). A single flow
    /// run is sequential regardless; results never depend on this value.
    pub jobs: usize,
    /// Binding strategies for the DSE sweep ([`crate::dse::explore_report`]
    /// evaluates every tile count × interconnect × strategy combination).
    /// Empty means "just the strategy configured in `map.bind.strategy`".
    /// A single flow run always uses `map.bind.strategy`.
    pub binders: Vec<mamps_mapping::StrategyHandle>,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            map: MapOptions::default(),
            project_name: "mamps_system".into(),
            boot_iterations: 3,
            jobs: 1,
            binders: Vec::new(),
        }
    }
}

/// Result of a complete flow run.
#[derive(Debug)]
pub struct FlowResult {
    /// The (possibly auto-generated) architecture.
    pub arch: Architecture,
    /// The mapping with its guaranteed throughput.
    pub mapped: MappedApplication,
    /// The generated platform project.
    pub project: Project,
    /// Step timings for the designer-effort report.
    pub timings: StepTimings,
}

impl FlowResult {
    /// The guaranteed worst-case throughput in iterations per cycle.
    pub fn guaranteed_throughput(&self) -> f64 {
        self.mapped.analysis.as_f64()
    }

    /// Name of the binding strategy that produced the mapping.
    pub fn strategy(&self) -> &'static str {
        self.mapped.strategy
    }
}

/// Runs the flow with an auto-generated homogeneous architecture of
/// `tiles` tiles over `interconnect`.
///
/// # Errors
///
/// Any step may fail; see [`FlowError`].
pub fn run_flow(
    app: &ApplicationModel,
    tiles: usize,
    interconnect: Interconnect,
    opts: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    let t0 = Instant::now();
    let arch = Architecture::homogeneous("auto", tiles, interconnect)?;
    let architecture_generation = t0.elapsed();
    run_flow_on(app, arch, opts, architecture_generation)
}

/// Runs the flow on a user-provided architecture (e.g. with CA tiles).
///
/// # Errors
///
/// Any step may fail; see [`FlowError`].
pub fn run_flow_with_arch(
    app: &ApplicationModel,
    arch: Architecture,
    opts: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    run_flow_on(app, arch, opts, Duration::ZERO)
}

fn run_flow_on(
    app: &ApplicationModel,
    arch: Architecture,
    opts: &FlowOptions,
    architecture_generation: Duration,
) -> Result<FlowResult, FlowError> {
    let t1 = Instant::now();
    let mapped = map_application(app, &arch, &opts.map)?;
    let mapping_time = t1.elapsed();

    let t2 = Instant::now();
    let project = generate_project(app, app.graph(), &mapped.mapping, &arch, &opts.project_name)?;
    let platform_generation = t2.elapsed();

    // "Synthesis": elaborate the executable platform and verify it boots.
    let t3 = Instant::now();
    let wcet = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
    let system = System::new(app.graph(), &mapped.mapping, &arch, &wcet)?;
    let _boot = system.run(opts.boot_iterations, 1_000_000_000)?;
    let synthesis = t3.elapsed();

    Ok(FlowResult {
        arch,
        mapped,
        project,
        timings: StepTimings {
            architecture_generation,
            mapping: mapping_time,
            platform_generation,
            synthesis,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn app() -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("a");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel_full("e", x, 1, y, 1, 0, 32);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 40, 2048, 256).actor("y", 70, 2048, 256);
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn flow_end_to_end() {
        let r = run_flow(&app(), 2, Interconnect::fsl(), &FlowOptions::default()).unwrap();
        assert!(r.guaranteed_throughput() > 0.0);
        assert!(r.project.file_count() >= 5);
        assert!(r.timings.mapping > Duration::ZERO);
    }

    #[test]
    fn flow_with_custom_arch() {
        let arch = Architecture::homogeneous_with_ca("ca", 2, Interconnect::fsl()).unwrap();
        let r = run_flow_with_arch(&app(), arch, &FlowOptions::default()).unwrap();
        assert!(r.guaranteed_throughput() > 0.0);
    }

    #[test]
    fn flow_errors_propagate() {
        let r = run_flow(&app(), 0, Interconnect::fsl(), &FlowOptions::default());
        assert!(matches!(r, Err(FlowError::Arch(_))));
    }
}
