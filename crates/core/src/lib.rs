//! # mamps-core — the automated MAMPS design flow
//!
//! Ties the reproduction together (paper Fig. 1): application model +
//! architecture template → SDF3 mapping with the Fig. 4 interconnect model
//! → guaranteed worst-case throughput → MAMPS platform generation → the
//! executable platform ("FPGA") → measured throughput and guarantee
//! validation. Step timings feed the Table 1 designer-effort report, and
//! [`experiments`] packages the paper's evaluation (Fig. 6, Table 1, the
//! §6.3 CA study, the §5.3.1 area figure) for benches and examples.
//!
//! Multi-application use-cases run through [`flow::run_multi_flow`]
//! (incremental admission with per-application guarantees, then one
//! concurrent validation run per interference group), and
//! [`dse::explore_use_cases`] sweeps which application subsets fit each
//! platform configuration.
//!
//! ## Example
//!
//! ```
//! use mamps_core::flow::{run_flow, FlowOptions};
//! use mamps_platform::interconnect::Interconnect;
//! use mamps_sdf::graph::SdfGraphBuilder;
//! use mamps_sdf::model::HomogeneousModelBuilder;
//!
//! let mut b = SdfGraphBuilder::new("app");
//! let x = b.add_actor("x", 1);
//! let y = b.add_actor("y", 1);
//! b.add_channel("e", x, 1, y, 1);
//! let graph = b.build().unwrap();
//! let mut mb = HomogeneousModelBuilder::new("microblaze");
//! mb.actor("x", 40, 2048, 256).actor("y", 70, 2048, 256);
//! let app = mb.finish(graph, None).unwrap();
//!
//! let result = run_flow(&app, 2, Interconnect::fsl(), &FlowOptions::default()).unwrap();
//! assert!(result.guaranteed_throughput() > 0.0);
//! assert!(result.project.files.contains_key("system.tcl"));
//! ```

pub mod arbitration;
pub mod dse;
pub mod experiments;
pub mod flow;
pub mod parallel;
pub mod predict;
pub mod report;
pub mod serve;
pub mod validate;

pub use arbitration::{apply_peripheral_arbitration, ArbitrationError, PeripheralAccesses};
pub use dse::{
    explore_report, explore_use_cases, pareto_front, DsePoint, DseReport, SkippedPoint,
    UseCaseDseReport, UseCasePoint,
};
pub use experiments::{
    ca_overhead_experiment, ca_overhead_vs_serialization_cost, fig6_experiment,
    noc_flow_control_overhead, table1, CaOverheadResult, Fig6Row, Table1Row,
};
pub use flow::{
    run_flow, run_flow_with_arch, run_multi_flow, AppSection, FlowError, FlowOptions, FlowResult,
    MultiFlowResult, StepTimings,
};
pub use parallel::{default_jobs, dynamic_map, parallel_map};
pub use predict::predicted_throughput;
pub use validate::GuaranteeReport;
