//! Scoped-thread parallelism helper for embarrassingly parallel flow work.
//!
//! The design flow evaluates many *independent* pure computations — DSE
//! design points, buffer-growth candidates, per-sequence experiments — whose
//! results must come back in a deterministic order. This module provides the
//! one primitive that pattern needs, on `std` only (no registry
//! dependencies): [`parallel_map`] fans items out over `std::thread::scope`
//! workers pulling from an atomic cursor and returns results in input
//! order, so callers behave identically for any job count.
//!
//! `mamps_sdf::buffer` uses the same scoped-worker pattern internally for
//! concurrent buffer-growth candidates (it sits below this crate in the
//! dependency graph); everything at flow level should use this helper.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible default for `jobs` knobs: the machine's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` on up to `jobs` scoped threads and
/// returns the results in input order.
///
/// `f` receives the item index alongside the item. The worker count is
/// additionally capped at the machine's available parallelism — the work is
/// CPU-bound, so oversubscription only adds contention. With an effective
/// single job (or a single item) everything runs on the calling thread —
/// the results are identical either way, only the wall-clock differs.
/// Worker panics propagate to the caller once the scope joins.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.min(default_jobs()).clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every item claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq = parallel_map(1, &items, |_, &x| x * x);
        let par = parallel_map(8, &items, |_, &x| x * x);
        assert_eq!(seq, par);
        assert_eq!(par[13], 169);
    }

    #[test]
    fn passes_indices() {
        let items = ["a", "b", "c"];
        let r = parallel_map(2, &items, |i, &s| format!("{i}{s}"));
        assert_eq!(r, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(parallel_map(64, &items, |_, &x| x), items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
