//! Scoped-thread parallelism helpers for embarrassingly parallel flow work.
//!
//! The design flow evaluates many *independent* pure computations — DSE
//! design points, buffer-growth candidates, per-sequence experiments — whose
//! results must come back in a deterministic order. This module provides the
//! two primitives that pattern needs, on `std` only (no registry
//! dependencies):
//!
//! * [`parallel_map`] fans items out over `std::thread::scope` workers
//!   pulling one item at a time from a shared atomic cursor. Best for
//!   *uniform* workloads, where one cursor bump per item is the only
//!   scheduling cost.
//! * [`dynamic_map`] is a work-stealing scheduler: each worker starts with
//!   a contiguous slice of the input and, when it runs dry, steals the
//!   upper half of the largest remaining slice. Best for *skewed*
//!   workloads — DSE points whose cost varies by orders of magnitude with
//!   the binder and the tile count — where it keeps every core busy until
//!   the global tail. The DSE sweep ([`crate::dse`]) uses this one.
//!
//! Both return results in input order and behave identically for any job
//! count. `mamps_sdf::buffer` uses the same scoped-worker pattern
//! internally for concurrent buffer-growth candidates (it sits below this
//! crate in the dependency graph); everything at flow level should use
//! these helpers.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible default for `jobs` knobs: the machine's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` on up to `jobs` scoped threads and
/// returns the results in input order.
///
/// `f` receives the item index alongside the item. The worker count is
/// capped at `min(jobs, items.len())` and at the machine's available
/// parallelism — the work is CPU-bound, so oversubscription only adds
/// contention, and a worker without an item to claim would only park on
/// the scope join. With an effective single job (or a single item)
/// everything runs on the calling thread — the results are identical
/// either way, only the wall-clock differs. Worker panics propagate to
/// the caller once the scope joins.
///
/// Workers claim one item at a time from a shared cursor, so the per-item
/// scheduling cost is a single atomic increment. Prefer this for uniform
/// workloads; for skewed ones (the DSE sweep) use [`dynamic_map`], which
/// claims contiguous runs and rebalances by stealing.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.min(default_jobs()).clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every item claimed by a worker")
        })
        .collect()
}

/// Applies `f` to every item of `items` on up to `jobs` scoped threads
/// with work stealing, and returns the results in input order.
///
/// Each worker starts with a contiguous range of item indices (the same
/// even split a static partitioner would hand out). A worker pops from the
/// front of its own range; when the range is empty it scans the other
/// workers' ranges and steals the upper half (⌈len/2⌉ items) of the
/// largest one. A worker exits only once every range is empty, so the
/// expensive tail of a skewed workload ends up spread over all cores
/// instead of serialized on whichever worker's partition held it.
///
/// The schedule is dynamic but the *results* are deterministic: `f` runs
/// exactly once per index and results come back in input order, so callers
/// behave identically for any job count — this is what lets the sharded
/// DSE merge stay byte-identical to an unsharded run. Same worker-count
/// caps and panic behaviour as [`parallel_map`].
pub fn dynamic_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.min(default_jobs()).clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Per-worker index ranges: an even contiguous split to start with.
    let chunk = items.len().div_ceil(jobs);
    let queues: Vec<Mutex<Range<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w * chunk).min(items.len())..((w + 1) * chunk).min(items.len())))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    // Pops the front index of queue `w`, if any.
    let pop_own = |w: usize| -> Option<usize> {
        let mut q = queues[w].lock().expect("work queue poisoned");
        if q.start < q.end {
            let i = q.start;
            q.start += 1;
            Some(i)
        } else {
            None
        }
    };
    // Steals the upper half of the largest other queue into queue `w` and
    // returns the first stolen index; `None` once every queue is empty.
    let steal_into = |w: usize| -> Option<usize> {
        loop {
            let mut best: Option<(usize, usize)> = None; // (victim, remaining)
            for (v, q) in queues.iter().enumerate() {
                if v == w {
                    continue;
                }
                let q = q.lock().expect("work queue poisoned");
                let len = q.end - q.start;
                if len > best.map_or(0, |(_, l)| l) {
                    best = Some((v, len));
                }
            }
            let (victim, _) = best?;
            let stolen = {
                let mut q = queues[victim].lock().expect("work queue poisoned");
                let len = q.end - q.start;
                if len == 0 {
                    continue; // raced with the victim or another thief
                }
                let mid = q.start + len / 2;
                let stolen = mid..q.end;
                q.end = mid;
                stolen
            };
            // Our own queue is empty (that is why we are stealing), so
            // installing the remainder cannot discard work.
            *queues[w].lock().expect("work queue poisoned") = stolen.start + 1..stolen.end;
            return Some(stolen.start);
        }
    };

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let (pop_own, steal_into, slots, f) = (&pop_own, &steal_into, &slots, &f);
            scope.spawn(move || {
                while let Some(i) = pop_own(w).or_else(|| steal_into(w)) {
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every item claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq = parallel_map(1, &items, |_, &x| x * x);
        let par = parallel_map(8, &items, |_, &x| x * x);
        assert_eq!(seq, par);
        assert_eq!(par[13], 169);
    }

    #[test]
    fn passes_indices() {
        let items = ["a", "b", "c"];
        let r = parallel_map(2, &items, |i, &s| format!("{i}{s}"));
        assert_eq!(r, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(parallel_map(64, &items, |_, &x| x), items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn dynamic_map_matches_sequential_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let par = dynamic_map(jobs, &items, |_, &x| x.wrapping_mul(x) ^ 7);
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn dynamic_map_passes_indices() {
        let items = ["a", "b", "c", "d", "e"];
        let r = dynamic_map(2, &items, |i, &s| format!("{i}{s}"));
        assert_eq!(r, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn dynamic_map_empty_and_single_item() {
        let none: Vec<u32> = Vec::new();
        assert!(dynamic_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(dynamic_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn dynamic_map_rebalances_skewed_workloads() {
        // All the cost sits in the first static partition: without
        // stealing, worker 0 would run the whole expensive prefix alone.
        // Correctness (not wall-clock) is asserted — every item computed
        // exactly once, in order — plus the call must terminate.
        let items: Vec<u64> = (0..64).collect();
        let calls = AtomicUsize::new(0);
        let r = dynamic_map(8, &items, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i < 8 {
                // Busy work concentrated on the first chunk.
                (0..50_000u64).fold(x, |a, b| a.wrapping_add(b ^ a))
            } else {
                x
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
        assert_eq!(r[63], 63);
        assert_eq!(r.len(), items.len());
    }

    #[test]
    fn dynamic_map_steals_from_the_largest_queue() {
        // Deterministic single-threaded check of the stealing arithmetic:
        // with jobs=2 and 5 items the split is [0..3) / [3..5); stealing
        // the upper half of a 3-long queue takes ⌈3/2⌉ = 2 items.
        // Exercised indirectly: results must still be exactly one call per
        // index for a shape that forces at least one steal.
        let items: Vec<u32> = (0..5).collect();
        let r = dynamic_map(2, &items, |_, &x| x * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40]);
    }
}
