//! The `mamps dse-serve` coordinator: accepts sweep submissions, leases
//! seq ranges to workers, merges results incrementally, and survives the
//! faults the harness throws at it.
//!
//! Robustness model, in order of line of defence:
//!
//! 1. **Worker disconnect** (crash, `kill -9`, network half gone): the
//!    connection thread sees EOF or a write error and releases every
//!    lease the connection held — the ranges go back to pending
//!    immediately, no timeout wait.
//! 2. **Worker hang** (alive but stuck): the lease deadline passes and
//!    the accept-loop tick reverts the range. If the stuck worker revives
//!    and completes after all, the seq-keyed [`MergeLedger`] drops the
//!    duplicates — at-least-once execution is safe because design-point
//!    outcomes are deterministic.
//! 3. **Coordinator death**: every accepted record is appended to the
//!    job's *spool* (`job-<fingerprint>.jsonl` under `--state-dir`, in
//!    shard-file format) before the lease completes, so even `kill -9`
//!    leaves a file `from_jsonl_lossy` can resume. A graceful SIGTERM
//!    additionally compacts the spools and persists the warm caches.
//!    A restarted coordinator seeds a resubmitted sweep from its spool
//!    and only evaluates what is missing.
//!
//! The coordinator owns one warm [`GlobalAnalysisCache`] + [`PassCache`]
//! across all submissions (loaded from `--cache-dir` at startup,
//! persisted back on job completion and at shutdown). Workers get the
//! warm entries with their first assignment and ship their own growth
//! back with each completion, so the Nth sweep over the same corpus is
//! served mostly from memo.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mamps_sdf::{GlobalAnalysisCache, PassCache};

use crate::dse::cache as dse_cache;
use crate::dse::lease::{LeaseTable, MergeLedger};
use crate::dse::shard::{seed_outcomes, DseShard, ShardSpec};

use super::protocol::{
    read_msg, tagged_line, write_msg, ClientMsg, JobStats, ResolvedSweep, ServerMsg, SweepSpec,
};

/// How the coordinator runs; all knobs of `mamps dse-serve`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Directory for the per-job resumable spools.
    pub state_dir: PathBuf,
    /// Warm-cache persistence directory (`--cache-dir`), as in `mamps dse`.
    pub cache_dir: Option<PathBuf>,
    /// Lease timeout in milliseconds before a range is reassigned.
    pub lease_timeout_ms: u64,
    /// Maximum design points per leased range.
    pub chunk: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: PathBuf::from("dse-serve.sock"),
            state_dir: PathBuf::from("dse-serve-state"),
            cache_dir: None,
            lease_timeout_ms: 30_000,
            chunk: 4,
        }
    }
}

/// One submitted sweep in flight.
struct Job {
    fingerprint: u64,
    spec: SweepSpec,
    table: LeaseTable,
    ledger: MergeLedger,
    spool: PathBuf,
    seeded: u64,
    evaluated: u64,
}

impl Job {
    fn stats(&self) -> JobStats {
        JobStats {
            total: self.ledger.header().total_configs,
            evaluated: self.evaluated,
            seeded: self.seeded,
            duplicates: self.ledger.duplicates(),
            reassigned: self.table.reassigned(),
        }
    }
}

/// Everything behind the coordinator's one mutex.
struct State {
    jobs: Vec<Job>,
    /// Finished sweeps: fingerprint → rendered report + final counters.
    /// Later identical submissions are answered from here without any
    /// evaluation (their stats then show `seeded == total`).
    history: HashMap<u64, (String, JobStats)>,
    /// Live connection threads, so shutdown can wait for the drain.
    connections: usize,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    analysis: Arc<GlobalAnalysisCache>,
    passes: Arc<PassCache>,
    cfg: ServeConfig,
    started: Instant,
}

impl Shared {
    /// Virtual clock for lease deadlines: milliseconds since startup.
    fn now(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGPIPE: i32 = 13;
const SIGTERM: i32 = 15;
const SIG_IGN: usize = 1;

/// SIGTERM/SIGINT request a graceful shutdown (flush spools, persist
/// caches, exit 0); SIGPIPE is ignored so a vanished peer surfaces as a
/// `BrokenPipe` write error on its own connection instead of killing the
/// whole service.
fn install_signals() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGPIPE, SIG_IGN);
    }
}

/// Runs the coordinator until SIGTERM/SIGINT. Returns only after the
/// graceful shutdown finished (spools compacted, caches persisted,
/// socket removed).
///
/// # Errors
///
/// Socket/bind and state-directory I/O errors; per-connection errors are
/// logged to stderr and close that connection only.
pub fn run_coordinator(cfg: ServeConfig) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(&cfg.state_dir)
        .map_err(|e| format!("cannot create state dir `{}`: {e}", cfg.state_dir.display()))?;
    install_signals();

    // Replace a stale socket file (left by a killed coordinator); bind
    // fails with AddrInUse only if removal raced a live listener.
    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)
        .map_err(|e| format!("cannot listen on `{}`: {e}", cfg.socket.display()))?;
    listener.set_nonblocking(true)?;

    let analysis = Arc::new(GlobalAnalysisCache::new());
    let passes = Arc::new(PassCache::new());
    if let Some(dir) = &cfg.cache_dir {
        let a = dse_cache::load_cache_dir(&analysis, dir)?;
        let p = dse_cache::load_pass_cache_dir(&passes, dir)?;
        eprintln!("dse-serve: cache warmed from disk: {a}; pass cache: {p}");
    }

    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            jobs: Vec::new(),
            history: HashMap::new(),
            connections: 0,
            shutting_down: false,
        }),
        cv: Condvar::new(),
        analysis,
        passes,
        cfg,
        started: Instant::now(),
    });
    eprintln!(
        "dse-serve: listening on {} (state {}, lease timeout {} ms, chunk {})",
        shared.cfg.socket.display(),
        shared.cfg.state_dir.display(),
        shared.cfg.lease_timeout_ms,
        shared.cfg.chunk
    );

    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                shared
                    .state
                    .lock()
                    .expect("serve state poisoned")
                    .connections += 1;
                std::thread::spawn(move || {
                    let res = handle_connection(&shared, stream);
                    let mut st = shared.state.lock().expect("serve state poisoned");
                    st.connections -= 1;
                    drop(st);
                    shared.cv.notify_all();
                    if let Err(e) = res {
                        eprintln!("dse-serve: connection closed: {e}");
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle tick: revert expired leases so hung workers do not
                // stall the sweep, then sleep a beat.
                let now = shared.now();
                let mut st = shared.state.lock().expect("serve state poisoned");
                let mut reverted = 0;
                for job in &mut st.jobs {
                    reverted += job.table.expire(now).len();
                }
                drop(st);
                if reverted > 0 {
                    eprintln!("dse-serve: reverted {reverted} expired lease(s)");
                    shared.cv.notify_all();
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("accept failed: {e}").into()),
        }
    }

    graceful_shutdown(&shared);
    Ok(())
}

/// Flushes every in-flight job's spool, wakes all waiters so they answer
/// their clients (`Shutdown` to fetching workers, `Reject` to waiting
/// submitters), waits briefly for connections to drain, persists the warm
/// caches, and removes the socket.
fn graceful_shutdown(shared: &Shared) {
    eprintln!("dse-serve: shutting down");
    let mut st = shared.state.lock().expect("serve state poisoned");
    st.shutting_down = true;
    for job in &st.jobs {
        if let Err(e) = compact_spool(job) {
            eprintln!(
                "dse-serve: could not compact spool {}: {e}",
                job.spool.display()
            );
        } else {
            eprintln!(
                "dse-serve: flushed partial sweep {:016x} ({}/{} points) -> {}",
                job.fingerprint,
                job.ledger.len(),
                job.ledger.header().total_configs,
                job.spool.display()
            );
        }
    }
    shared.cv.notify_all();
    let deadline = Instant::now() + Duration::from_secs(3);
    while st.connections > 0 && Instant::now() < deadline {
        let (guard, _) = shared
            .cv
            .wait_timeout(st, Duration::from_millis(100))
            .expect("serve state poisoned");
        st = guard;
        shared.cv.notify_all();
    }
    drop(st);
    persist_caches(shared);
    let _ = std::fs::remove_file(&shared.cfg.socket);
    eprintln!("dse-serve: bye");
}

fn persist_caches(shared: &Shared) {
    if let Some(dir) = &shared.cfg.cache_dir {
        if let Err(e) = dse_cache::persist_cache(&shared.analysis, dir, ShardSpec::full())
            .and_then(|_| dse_cache::persist_pass_cache(&shared.passes, dir, ShardSpec::full()))
        {
            eprintln!(
                "dse-serve: could not persist caches to {}: {e}",
                dir.display()
            );
        }
    }
}

/// Atomically rewrites a job's spool as the clean JSONL of everything
/// merged so far (the incremental appends plus the seeded records).
fn compact_spool(job: &Job) -> std::io::Result<()> {
    let tmp = job.spool.with_extension("tmp");
    std::fs::write(&tmp, job.ledger.to_shard().to_jsonl())?;
    std::fs::rename(&tmp, &job.spool)
}

/// One accepted connection: dispatches on the first message and serves
/// the peer until EOF. Submitters and workers share the entry point —
/// the message kind is the role.
fn handle_connection(shared: &Shared, stream: UnixStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // Connection identity for lease ownership; never reused.
    static NEXT_CONN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let conn = NEXT_CONN.fetch_add(1, Ordering::Relaxed);
    let mut shipped_cache = false;
    let result = loop {
        match read_msg::<ClientMsg>(&mut reader) {
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
            Ok(Some(ClientMsg::Submit { spec })) => {
                if let Err(e) = handle_submit(shared, &mut writer, spec) {
                    break Err(e);
                }
            }
            Ok(Some(ClientMsg::Fetch { worker })) => {
                match handle_fetch(shared, &mut writer, conn, worker, &mut shipped_cache) {
                    Ok(true) => {}
                    Ok(false) => break Ok(()), // told the worker to shut down
                    Err(e) => break Err(e),
                }
            }
            Ok(Some(ClientMsg::Complete {
                job,
                lease,
                records,
                analysis,
                passes,
            })) => {
                handle_complete(shared, job, lease, records, analysis, passes);
            }
        }
    };
    // Whatever happened, this connection holds no leases any more.
    let mut st = shared.state.lock().expect("serve state poisoned");
    let mut reverted = 0;
    for job in &mut st.jobs {
        reverted += job.table.release_owner(conn).len();
    }
    drop(st);
    if reverted > 0 {
        eprintln!("dse-serve: worker disconnected, reverted {reverted} leased range(s)");
        shared.cv.notify_all();
    }
    result
}

/// Registers (or replays) a submitted sweep, then streams progress until
/// it finishes. The job itself lives in the shared state: it keeps
/// running — and lands in the history — even if this submitter vanishes.
fn handle_submit(shared: &Shared, writer: &mut UnixStream, spec: SweepSpec) -> std::io::Result<()> {
    let resolved = match ResolvedSweep::new(&spec) {
        Ok(r) => r,
        Err(reason) => return write_msg(writer, &ServerMsg::Reject { reason }),
    };
    let header = resolved.header().clone();
    let fingerprint = serde::stable_hash_of(&header);
    let total = header.total_configs;

    let mut st = shared.state.lock().expect("serve state poisoned");
    if st.shutting_down {
        return write_msg(
            writer,
            &ServerMsg::Reject {
                reason: "coordinator is shutting down".into(),
            },
        );
    }
    if let Some((report, _)) = st.history.get(&fingerprint) {
        // Whole sweep served from the coordinator's warm history.
        let msg = ServerMsg::Done {
            job: fingerprint,
            report: report.clone(),
            stats: JobStats {
                total,
                seeded: total,
                ..JobStats::default()
            },
        };
        drop(st);
        return write_msg(writer, &msg);
    }
    if !st.jobs.iter().any(|j| j.fingerprint == fingerprint) {
        // New sweep: seed from the spool of a previous (crashed or
        // killed) coordinator run, then lease out only what is missing.
        let spool = shared
            .cfg
            .state_dir
            .join(format!("job-{fingerprint:016x}.jsonl"));
        let mut ledger = MergeLedger::new(header.clone());
        match std::fs::read_to_string(&spool) {
            Ok(text) => match DseShard::from_jsonl_lossy(&text) {
                Ok((old, dropped)) => {
                    if dropped {
                        eprintln!(
                            "dse-serve: spool {} ends mid-record; dropped that line",
                            spool.display()
                        );
                    }
                    match seed_outcomes(&header, std::slice::from_ref(&old)) {
                        Ok(seeded) => {
                            for (seq, outcome) in seeded {
                                ledger.insert(crate::dse::shard::ShardRecord { seq, outcome });
                            }
                        }
                        Err(e) => eprintln!(
                            "dse-serve: ignoring mismatched spool {}: {e}",
                            spool.display()
                        ),
                    }
                }
                Err(e) => {
                    eprintln!("dse-serve: ignoring corrupt spool {}: {e}", spool.display())
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => eprintln!("dse-serve: cannot read spool {}: {e}", spool.display()),
        }
        let seeded = ledger.len();
        // (Re)start the spool as header + everything seeded, so appends
        // keep it a well-formed shard file.
        std::fs::write(spool.with_extension("tmp"), ledger.to_shard().to_jsonl())
            .and_then(|()| std::fs::rename(spool.with_extension("tmp"), &spool))?;
        let table = LeaseTable::new(total, shared.cfg.chunk, |seq| ledger.contains(seq));
        let job = Job {
            fingerprint,
            spec,
            table,
            ledger,
            spool,
            seeded,
            evaluated: 0,
        };
        eprintln!(
            "dse-serve: sweep {fingerprint:016x} submitted ({total} points, {seeded} seeded)"
        );
        if job.ledger.is_complete() {
            finalize_job(shared, &mut st, job);
        } else {
            st.jobs.push(job);
        }
        shared.cv.notify_all(); // wake idle workers
    }

    // Stream progress until the job reaches the history (or shutdown).
    let mut last_done = u64::MAX;
    loop {
        if let Some((report, stats)) = st.history.get(&fingerprint) {
            let msg = ServerMsg::Done {
                job: fingerprint,
                report: report.clone(),
                stats: *stats,
            };
            drop(st);
            return write_msg(writer, &msg);
        }
        if st.shutting_down {
            let done = st
                .jobs
                .iter()
                .find(|j| j.fingerprint == fingerprint)
                .map(|j| j.ledger.len())
                .unwrap_or(0);
            drop(st);
            return write_msg(
                writer,
                &ServerMsg::Reject {
                    reason: format!(
                        "coordinator shutting down with {done}/{total} points done; \
                         the partial sweep is spooled and will seed a resubmission"
                    ),
                },
            );
        }
        let done = st
            .jobs
            .iter()
            .find(|j| j.fingerprint == fingerprint)
            .map(|j| j.ledger.len())
            .unwrap_or(0);
        if done != last_done {
            last_done = done;
            // Progress is advisory; a submitter that stopped reading
            // surfaces here as an error and detaches without hurting the
            // job.
            let msg = ServerMsg::Progress {
                job: fingerprint,
                done,
                total,
            };
            drop(st);
            write_msg(writer, &msg)?;
            st = shared.state.lock().expect("serve state poisoned");
            continue;
        }
        let (guard, _) = shared
            .cv
            .wait_timeout(st, Duration::from_millis(200))
            .expect("serve state poisoned");
        st = guard;
    }
}

/// Blocks until a range can be leased to this worker (or shutdown).
/// Returns `Ok(false)` when the worker was told to shut down.
fn handle_fetch(
    shared: &Shared,
    writer: &mut UnixStream,
    conn: u64,
    worker: u64,
    shipped_cache: &mut bool,
) -> std::io::Result<bool> {
    let mut st = shared.state.lock().expect("serve state poisoned");
    loop {
        if st.shutting_down {
            drop(st);
            write_msg(writer, &ServerMsg::Shutdown)?;
            return Ok(false);
        }
        let now = shared.now();
        let timeout = shared.cfg.lease_timeout_ms;
        let mut assigned = None;
        for job in &mut st.jobs {
            job.table.expire(now);
            if let Some((lease, range)) = job.table.acquire(conn, now, timeout) {
                assigned = Some((job.fingerprint, lease, range, job.spec.clone()));
                break;
            }
        }
        if let Some((job, lease, range, spec)) = assigned {
            drop(st);
            // First assignment of this connection ships the warm caches;
            // afterwards the worker already has everything we have.
            let (analysis, passes) = if *shipped_cache {
                (Vec::new(), Vec::new())
            } else {
                *shipped_cache = true;
                (shared.analysis.export(), shared.passes.export())
            };
            eprintln!("dse-serve: leased {range} of {job:016x} to worker {worker}");
            write_msg(
                writer,
                &ServerMsg::Assign {
                    job,
                    lease,
                    range,
                    spec,
                    analysis,
                    passes,
                },
            )?;
            return Ok(true);
        }
        let (guard, _) = shared
            .cv
            .wait_timeout(st, Duration::from_millis(200))
            .expect("serve state poisoned");
        st = guard;
    }
}

/// Merges a completed range: imports the worker's cache growth, records
/// the fresh outcomes (appending them to the spool before the lease is
/// marked done), and finalizes the job when the ledger is complete.
fn handle_complete(
    shared: &Shared,
    job_fp: u64,
    lease: u64,
    records: Vec<crate::dse::shard::ShardRecord>,
    analysis: Vec<mamps_sdf::cache::CacheEntry>,
    passes: Vec<mamps_sdf::passes::PassEntry>,
) {
    // Cache imports are idempotent and internally synchronized.
    shared.analysis.import(analysis);
    shared.passes.import(passes);

    let mut st = shared.state.lock().expect("serve state poisoned");
    let Some(idx) = st.jobs.iter().position(|j| j.fingerprint == job_fp) else {
        // Stale completion of an already-finalized job; nothing to merge.
        return;
    };
    let job = &mut st.jobs[idx];
    let mut fresh = String::new();
    for record in records {
        let line = tagged_line("Record", &record);
        if job.ledger.insert(record) {
            job.evaluated += 1;
            fresh.push_str(&line);
        }
    }
    if !fresh.is_empty() {
        // Spool before completing the lease: if the append fails the
        // lease still reverts (or expires) and the range is redone.
        use std::fs::OpenOptions;
        let appended = OpenOptions::new()
            .append(true)
            .open(&job.spool)
            .and_then(|mut f| f.write_all(fresh.as_bytes()));
        if let Err(e) = appended {
            eprintln!(
                "dse-serve: spool append failed for {}: {e}",
                job.spool.display()
            );
        }
    }
    job.table.complete(lease);
    if job.ledger.is_complete() {
        let job = st.jobs.remove(idx);
        finalize_job(shared, &mut st, job);
    }
    drop(st);
    shared.cv.notify_all();
}

/// Renders the finished sweep (byte-identical to `mamps dse` by
/// construction: same header, same records, same renderer), compacts the
/// spool one last time, stores the report in the history, and persists
/// the warm caches.
fn finalize_job(shared: &Shared, st: &mut State, job: Job) {
    let report = job.ledger.render();
    let stats = job.stats();
    if let Err(e) = compact_spool(&job) {
        eprintln!(
            "dse-serve: could not compact spool {}: {e}",
            job.spool.display()
        );
    }
    eprintln!(
        "dse-serve: sweep {:016x} complete ({} evaluated, {} seeded, {} duplicates, {} reassigned)",
        job.fingerprint, stats.evaluated, stats.seeded, stats.duplicates, stats.reassigned
    );
    st.history.insert(job.fingerprint, (report, stats));
    persist_caches(shared);
}
