//! The `mamps dse-submit` client: sends one sweep to the coordinator and
//! waits for the merged report, relaying streamed progress.

use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;

use super::protocol::{read_msg, write_msg, ClientMsg, JobStats, ServerMsg, SweepSpec};

/// A finished submission: the merged report (byte-identical to
/// single-process `mamps dse` on the same inputs) plus the coordinator's
/// execution counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// The rendered sweep report.
    pub report: String,
    /// Execution counters (`--stats` material).
    pub stats: JobStats,
}

/// Submits `spec` and blocks until the coordinator answers. `progress`
/// is called with `(done, total)` for every progress update.
///
/// # Errors
///
/// Failing to connect (with a hint that the coordinator may not be
/// running), a coordinator reject (invalid sweep, shutdown mid-sweep),
/// or the connection dying before the report arrived.
pub fn run_submit(
    socket: &Path,
    spec: &SweepSpec,
    mut progress: impl FnMut(u64, u64),
) -> Result<SubmitOutcome, Box<dyn std::error::Error>> {
    let stream = UnixStream::connect(socket).map_err(|e| {
        format!(
            "cannot connect to coordinator at `{}`: {e} (is `mamps dse-serve` running?)",
            socket.display()
        )
    })?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    write_msg(&mut writer, &ClientMsg::Submit { spec: spec.clone() })?;
    loop {
        match read_msg::<ServerMsg>(&mut reader)? {
            None => {
                return Err(
                    "coordinator closed the connection before the sweep finished \
                            (killed? its spool keeps the completed points)"
                        .into(),
                )
            }
            Some(ServerMsg::Progress { done, total, .. }) => progress(done, total),
            Some(ServerMsg::Done { report, stats, .. }) => {
                return Ok(SubmitOutcome { report, stats })
            }
            Some(ServerMsg::Reject { reason }) => {
                return Err(format!("coordinator rejected the sweep: {reason}").into())
            }
            Some(other) => return Err(format!("unexpected coordinator message: {other:?}").into()),
        }
    }
}
