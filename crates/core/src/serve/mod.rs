//! The fault-tolerant DSE coordinator service: one warm, long-running
//! process serving many submitted sweeps, with dynamic range leasing to
//! worker processes over a Unix socket.
//!
//! The ROADMAP's "DSE service" item: PRs 5–8 built the in-process
//! ingredients — sharded seq-tagged sweeps, crash `--resume`, the warm
//! [`GlobalAnalysisCache`](mamps_sdf::GlobalAnalysisCache) /
//! [`PassCache`](mamps_sdf::PassCache) with on-disk persistence, and
//! work-stealing scheduling — and this module turns them into a service:
//!
//! * [`coordinator::run_coordinator`] (`mamps dse-serve`) listens on a
//!   Unix socket, accepts sweep submissions, partitions each sweep's
//!   canonical seq space into leased ranges
//!   ([`crate::dse::lease::LeaseTable`]), merges completed records
//!   incrementally ([`crate::dse::lease::MergeLedger`]), and keeps one
//!   warm analysis + pass cache across all submissions.
//! * [`worker::run_worker`] (`mamps dse-work`) fetches leased ranges and
//!   evaluates them with the exact single-process evaluation path.
//! * [`submit::run_submit`] (`mamps dse-submit`) submits a sweep and
//!   waits for the merged report.
//!
//! # Protocol
//!
//! Line-delimited canonical JSON over the socket ([`protocol`]): clients
//! send [`ClientMsg`] (`Submit`, `Fetch`, `Complete`), the coordinator
//! answers [`ServerMsg`] (`Assign`, `Progress`, `Done`, `Reject`,
//! `Shutdown`). Specs are self-contained — application XML text travels
//! inline — so workers need no shared filesystem with submitters.
//!
//! # Fault tolerance
//!
//! Leases time out and are reassigned; a disconnected worker's leases
//! revert immediately; duplicate completions from at-least-once
//! execution are dropped by the seq-keyed merge (safe because outcomes
//! are deterministic); and every accepted record is spooled to a
//! shard-format JSONL under `--state-dir` before its lease completes, so
//! even a `kill -9`'d coordinator leaves a resumable file a restarted
//! coordinator seeds from. The final merged report is byte-identical to
//! single-process `mamps dse` by construction (same header, same
//! records, same renderer) — `scripts/serve_fault.sh` enforces exactly
//! that under injected faults, in CI.

pub mod coordinator;
pub mod protocol;
pub mod submit;
pub mod worker;

pub use coordinator::{run_coordinator, ServeConfig};
pub use protocol::{ClientMsg, JobStats, ResolvedSweep, ServerMsg, SweepSpec};
pub use submit::{run_submit, SubmitOutcome};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};
