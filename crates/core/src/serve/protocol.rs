//! Wire protocol of the DSE service: line-delimited JSON messages over a
//! Unix domain socket.
//!
//! One message per line, encoded with the workspace's canonical
//! value-based serde — the same encoding the shard files use, so every
//! message round-trips byte-identically ([`crate::serve`] module docs
//! spell out the exchange; `tests/serve_protocol.rs` pins the
//! round-trip). Clients (submitters and workers) send [`ClientMsg`], the
//! coordinator answers with [`ServerMsg`].
//!
//! The protocol ships *data, not references*: a [`SweepSpec`] carries the
//! application XML text itself, so workers need no access to the
//! submitter's files, and [`ServerMsg::Assign`] / [`ClientMsg::Complete`]
//! carry warm-cache entries, so a fresh worker starts from the
//! coordinator's accumulated analysis/pass memo instead of cold.

use std::io::{self, BufRead, Write};

use mamps_mapping::{strategy, StrategyHandle};
use mamps_sdf::cache::CacheEntry;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::passes::PassEntry;
use mamps_sdf::xml::application_from_xml;
use serde::{Deserialize, Serialize};

use crate::dse::lease::SeqRange;
use crate::dse::shard::{
    sweep_header, ShardHeader, ShardOutcome, ShardRecord, ShardSpec, SweepMode,
};
use crate::dse::{
    evaluate_dse_config, evaluate_use_case_config, sweep_configs, sweep_strategies,
    use_case_context,
};
use crate::flow::FlowOptions;
use crate::parallel::dynamic_map;

/// A sweep as submitted over the wire: everything a worker needs to
/// evaluate design points, self-contained (XML text inline, binder
/// *names* — resolved against the strategy registry on each end).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Sweep kind. [`SweepMode::Binders`] requires exactly one
    /// application; [`SweepMode::UseCases`] admits them in order.
    pub mode: SweepMode,
    /// Application XML documents, in admission order.
    pub apps_xml: Vec<String>,
    /// Tile counts to sweep (`mamps dse <max>` sweeps `1..=max`).
    pub tile_counts: Vec<usize>,
    /// Whether to sweep NoC configurations alongside FSL.
    pub include_noc: bool,
    /// Binding strategy names; empty means the default (greedy), exactly
    /// like `mamps dse` without `--binders`.
    pub binders: Vec<String>,
}

/// Counters the coordinator reports with a finished sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct JobStats {
    /// Design points in the sweep.
    pub total: u64,
    /// Points evaluated by workers for this submission.
    pub evaluated: u64,
    /// Points served from the coordinator's warm state (a previous
    /// submission of the same sweep, or the resumable spool of a
    /// restarted coordinator) instead of being evaluated again.
    pub seeded: u64,
    /// Duplicate completions dropped by the seq-keyed merge
    /// (at-least-once execution: reassigned ranges completing twice).
    pub duplicates: u64,
    /// Ranges handed out more than once after a lease expiry or a worker
    /// disconnect.
    pub reassigned: u64,
}

/// Messages a client (submitter or worker) sends to the coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Submit a sweep; the connection then streams [`ServerMsg::Progress`]
    /// until [`ServerMsg::Done`] (or [`ServerMsg::Reject`]).
    Submit {
        /// The sweep to run.
        spec: SweepSpec,
    },
    /// Ask for work; blocks until the coordinator answers with
    /// [`ServerMsg::Assign`] or [`ServerMsg::Shutdown`].
    Fetch {
        /// Worker identity for logging (the worker's pid).
        worker: u64,
    },
    /// Deliver the evaluated records of a leased range, plus the
    /// worker's cache entries when its caches grew (empty otherwise).
    Complete {
        /// Job fingerprint from the matching [`ServerMsg::Assign`].
        job: u64,
        /// Lease id from the matching [`ServerMsg::Assign`].
        lease: u64,
        /// Evaluated design points of the range.
        records: Vec<ShardRecord>,
        /// Analysis-cache entries to merge into the coordinator's cache.
        analysis: Vec<CacheEntry>,
        /// Pass-cache entries to merge into the coordinator's cache.
        passes: Vec<PassEntry>,
    },
}

/// Messages the coordinator sends to a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// A leased range of design points to evaluate.
    Assign {
        /// Job fingerprint (stable hash of the sweep's header).
        job: u64,
        /// Lease id; echo it in [`ClientMsg::Complete`].
        lease: u64,
        /// The seq range to evaluate.
        range: SeqRange,
        /// The sweep (self-contained; workers cache the parse per job).
        spec: SweepSpec,
        /// Warm analysis-cache entries (first assignment of a connection
        /// only; empty afterwards).
        analysis: Vec<CacheEntry>,
        /// Warm pass-cache entries (first assignment only).
        passes: Vec<PassEntry>,
    },
    /// Streamed to the submitter as ranges complete.
    Progress {
        /// Job fingerprint.
        job: u64,
        /// Design points recorded so far.
        done: u64,
        /// Design points in the sweep.
        total: u64,
    },
    /// The sweep finished; `report` is byte-identical to single-process
    /// `mamps dse` output on the same inputs.
    Done {
        /// Job fingerprint.
        job: u64,
        /// The rendered report.
        report: String,
        /// Execution counters (stderr material; never part of the report).
        stats: JobStats,
    },
    /// The request was invalid or the coordinator is shutting down.
    Reject {
        /// Human-readable reason.
        reason: String,
    },
    /// No more work will be handed out; workers should exit cleanly.
    Shutdown,
}

/// Writes one message as one canonical-JSON line.
///
/// # Errors
///
/// Propagates the underlying write error (a disappeared peer surfaces
/// here as `BrokenPipe`).
pub fn write_msg<T: Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let mut line = serde::json::to_string(msg);
    line.push('\n');
    w.write_all(line.as_bytes())
}

/// Reads the next message line; `Ok(None)` on a clean EOF (peer closed
/// the connection). Blank lines are skipped.
///
/// # Errors
///
/// The underlying read error, or `InvalidData` when a line is not a
/// well-formed message.
pub fn read_msg<T: for<'de> Deserialize<'de>>(r: &mut impl BufRead) -> io::Result<Option<T>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        return serde::json::from_str(trimmed)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad message: {e}")));
    }
}

/// A [`SweepSpec`] parsed and resolved for evaluation: applications out
/// of their XML, binder names out of the registry, and the canonical
/// config order enumerated. Both ends build one: the coordinator for the
/// sweep's identity (header → job fingerprint, total count), workers for
/// actually evaluating leased ranges.
pub struct ResolvedSweep {
    apps: Vec<ApplicationModel>,
    configs: Vec<crate::dse::SweepConfig>,
    header: ShardHeader,
}

impl ResolvedSweep {
    /// Parses and validates `spec`.
    ///
    /// # Errors
    ///
    /// A rendered reason when an XML does not parse, a binder name is
    /// unknown, the application list does not fit the mode, or the tile
    /// counts are empty.
    pub fn new(spec: &SweepSpec) -> Result<ResolvedSweep, String> {
        if spec.apps_xml.is_empty() {
            return Err("sweep has no applications".into());
        }
        if spec.mode == SweepMode::Binders && spec.apps_xml.len() != 1 {
            return Err(format!(
                "a binder sweep takes exactly one application, got {}",
                spec.apps_xml.len()
            ));
        }
        if spec.tile_counts.is_empty() {
            return Err("sweep has no tile counts".into());
        }
        let apps = spec
            .apps_xml
            .iter()
            .enumerate()
            .map(|(i, xml)| {
                application_from_xml(xml).map_err(|e| format!("application {}: {e}", i + 1))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let binders = spec
            .binders
            .iter()
            .map(|name| {
                strategy::by_name(name).ok_or_else(|| {
                    format!(
                        "unknown binder `{name}` (available: {})",
                        strategy::names().join(", ")
                    )
                })
            })
            .collect::<Result<Vec<StrategyHandle>, String>>()?;
        // Route the empty-binders default through the same fallback
        // `mamps dse` uses, so the sweep identity matches exactly.
        let opts = FlowOptions {
            binders,
            ..FlowOptions::default()
        };
        let strategies = sweep_strategies(&opts);
        let configs = sweep_configs(&strategies, &spec.tile_counts, spec.include_noc);
        let header = sweep_header(
            spec.mode,
            apps.iter().map(|a| a.graph().name().to_string()).collect(),
            &spec.tile_counts,
            spec.include_noc,
            &strategies,
            ShardSpec::full(),
            configs.len() as u64,
        );
        Ok(ResolvedSweep {
            apps,
            configs,
            header,
        })
    }

    /// The full-sweep header — the same one `mamps dse` builds, so a
    /// ledger merged toward it renders the identical report. Its stable
    /// hash is the job fingerprint.
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// Design points in the sweep.
    pub fn total(&self) -> u64 {
        self.header.total_configs
    }

    /// Evaluates the design points of `range` (clipped to the sweep),
    /// concurrently per `opts.jobs`, exactly as the in-process sweep
    /// evaluates them.
    pub fn evaluate(&self, range: SeqRange, opts: &FlowOptions) -> Vec<ShardRecord> {
        let todo: Vec<u64> = range.seqs().filter(|&s| s < self.total()).collect();
        match self.header.mode {
            SweepMode::Binders => dynamic_map(opts.jobs, &todo, |_, &seq| ShardRecord {
                seq,
                outcome: match evaluate_dse_config(&self.apps[0], &self.configs[seq as usize], opts)
                {
                    Ok(p) => ShardOutcome::Point(p),
                    Err(s) => ShardOutcome::Skipped(s),
                },
            }),
            SweepMode::UseCases => {
                let ctx = use_case_context(&self.apps);
                dynamic_map(opts.jobs, &todo, |_, &seq| ShardRecord {
                    seq,
                    outcome: ShardOutcome::UseCase(evaluate_use_case_config(
                        &self.apps,
                        &ctx,
                        &self.configs[seq as usize],
                        opts,
                    )),
                })
            }
        }
    }
}

/// One `{"Header":…}` / `{"Record":…}` line in exactly the bytes
/// [`DseShard::to_jsonl`] writes — the coordinator's spool appends these
/// incrementally, so a spool file *is* a shard file.
pub(crate) fn tagged_line(tag: &str, v: &dyn Serialize) -> String {
    let value = serde::Value::Map(vec![(tag.to_string(), v.to_value())]);
    let mut out = String::new();
    serde::json::emit(&value, &mut out);
    out.push('\n');
    out
}

/// Sanity-pin: a header line spooled by the coordinator must parse back
/// as a shard file prefix.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::shard::DseShard;

    #[test]
    fn tagged_header_line_matches_to_jsonl() {
        let spec = SweepSpec {
            mode: SweepMode::Binders,
            apps_xml: vec![mamps_sdf::xml::application_to_xml(
                &mamps_mjpeg::mjpeg_application(
                    &mamps_mjpeg::StreamConfig {
                        frames: 1,
                        ..mamps_mjpeg::StreamConfig::small()
                    },
                    None,
                )
                .expect("mjpeg application builds"),
            )],
            tile_counts: vec![1, 2],
            include_noc: false,
            binders: Vec::new(),
        };
        let sweep = ResolvedSweep::new(&spec).expect("valid spec");
        let shard = DseShard {
            header: sweep.header().clone(),
            records: Vec::new(),
        };
        assert_eq!(tagged_line("Header", sweep.header()), shard.to_jsonl());
    }

    #[test]
    fn messages_survive_a_round_trip() {
        let msg = ServerMsg::Progress {
            job: 42,
            done: 3,
            total: 9,
        };
        let text = serde::json::to_string(&msg);
        let back: ServerMsg = serde::json::from_str(&text).expect("round-trip");
        assert_eq!(back, msg);
    }
}
