//! The `mamps dse-work` worker: fetches leased ranges from the
//! coordinator, evaluates them with the exact in-process evaluation path
//! (`evaluate_dse_config` / `evaluate_use_case_config` via
//! [`ResolvedSweep::evaluate`]), and ships the records back.
//!
//! The worker is stateless with respect to the sweep — everything it
//! needs arrives in the [`Assign`](super::protocol::ServerMsg::Assign)
//! message — but keeps warm local caches: the coordinator's analysis and
//! pass-cache entries arrive with the first assignment, local growth is
//! shipped back with each completion, and parsed sweeps are memoized per
//! job fingerprint. A worker exits cleanly (0) when the coordinator
//! tells it to shut down *or* simply disappears (EOF): a killed
//! coordinator is an expected event, not a worker error.

use std::collections::HashMap;
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;

use mamps_mapping::PassRunner;
use mamps_sdf::{GlobalAnalysisCache, PassCache};

use crate::flow::FlowOptions;

use super::protocol::{read_msg, write_msg, ClientMsg, ResolvedSweep, ServerMsg};

/// How the worker runs; the knobs of `mamps dse-work`.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator socket to connect to.
    pub socket: PathBuf,
    /// Worker threads for evaluating the design points of one range.
    pub jobs: usize,
}

/// What a worker did before it exited, for the closing log line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Ranges completed.
    pub ranges: u64,
    /// Design points evaluated.
    pub points: u64,
}

/// Runs the fetch→evaluate→complete loop until the coordinator says
/// shutdown or goes away.
///
/// # Errors
///
/// Failing to connect (with a hint that the coordinator may not be
/// running), I/O errors mid-protocol, or a coordinator reject.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerSummary, Box<dyn std::error::Error>> {
    let stream = UnixStream::connect(&cfg.socket).map_err(|e| {
        format!(
            "cannot connect to coordinator at `{}`: {e} (is `mamps dse-serve` running?)",
            cfg.socket.display()
        )
    })?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    let analysis = Arc::new(GlobalAnalysisCache::new());
    let passes = Arc::new(PassCache::new());
    let runner = Arc::new(PassRunner::with_cache(Arc::clone(&passes)));
    let mut sweeps: HashMap<u64, ResolvedSweep> = HashMap::new();
    // Cache sizes at the last ship-back: entries beyond these are news
    // the coordinator has not seen from us.
    let (mut shipped_analysis, mut shipped_passes) = (0usize, 0usize);
    let worker_id = u64::from(std::process::id());
    let mut summary = WorkerSummary::default();
    // Fault-injection knob for the test harness: hold each completed
    // range for this long before reporting it, widening the window in
    // which a `kill -9` lands mid-range (lease held, result unsent).
    let delay_ms: u64 = std::env::var("MAMPS_DSE_WORK_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    loop {
        write_msg(&mut writer, &ClientMsg::Fetch { worker: worker_id })?;
        match read_msg::<ServerMsg>(&mut reader)? {
            None | Some(ServerMsg::Shutdown) => return Ok(summary),
            Some(ServerMsg::Reject { reason }) => {
                return Err(format!("coordinator rejected the worker: {reason}").into())
            }
            Some(ServerMsg::Assign {
                job,
                lease,
                range,
                spec,
                analysis: warm_analysis,
                passes: warm_passes,
            }) => {
                analysis.import(warm_analysis);
                passes.import(warm_passes);
                let sweep = match sweeps.entry(job) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => v.insert(
                        ResolvedSweep::new(&spec)
                            .map_err(|e| format!("coordinator sent an invalid sweep: {e}"))?,
                    ),
                };
                let mut opts = FlowOptions {
                    jobs: cfg.jobs,
                    ..FlowOptions::default()
                };
                opts.map.cache = Some(Arc::clone(&analysis));
                opts.map.passes = Some(Arc::clone(&runner));
                let records = sweep.evaluate(range, &opts);
                if delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                }
                summary.ranges += 1;
                summary.points += records.len() as u64;
                // Ship cache growth with the completion; resending the
                // full export is fine — the coordinator's import is
                // idempotent — but skip it entirely when nothing grew.
                let a_out = if analysis.len() > shipped_analysis {
                    shipped_analysis = analysis.len();
                    analysis.export()
                } else {
                    Vec::new()
                };
                let p_out = if passes.len() > shipped_passes {
                    shipped_passes = passes.len();
                    passes.export()
                } else {
                    Vec::new()
                };
                write_msg(
                    &mut writer,
                    &ClientMsg::Complete {
                        job,
                        lease,
                        records,
                        analysis: a_out,
                        passes: p_out,
                    },
                )?;
            }
            Some(other) => {
                return Err(format!("unexpected coordinator message: {other:?}").into());
            }
        }
    }
}
