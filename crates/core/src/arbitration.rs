//! Shared-peripheral arbitration at the flow level (paper §7 future work).
//!
//! Actors that access board peripherals declare their worst-case access
//! count per firing; on an architecture with a [`TdmArbiter`](mamps_platform::arbiter::TdmArbiter), each such
//! actor's WCET is inflated by the arbiter's worst-case access latency
//! before mapping. The result stays fully predictable: the inflated WCETs
//! are sound upper bounds under any interleaving of requestors, so every
//! downstream guarantee (throughput bound, simulation) carries over.

use std::collections::HashMap;

use mamps_platform::arch::Architecture;
use mamps_platform::types::TileId;
use mamps_sdf::graph::ActorId;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::SdfError;

/// Peripheral accesses per firing, per actor.
pub type PeripheralAccesses = Vec<(ActorId, u64)>;

/// Errors of the arbitration pre-pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArbitrationError {
    /// The architecture has no peripheral arbiter but sharing is required.
    NoArbiter,
    /// WCET inflation failed; the message names the tile.
    Inflation(String),
    /// Rebuilding the application model failed.
    Model(SdfError),
}

impl std::fmt::Display for ArbitrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArbitrationError::NoArbiter => {
                write!(f, "architecture has no peripheral arbiter")
            }
            ArbitrationError::Inflation(m) => write!(f, "cannot bound access latency: {m}"),
            ArbitrationError::Model(e) => write!(f, "model rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for ArbitrationError {}

/// Returns a copy of `app` whose peripheral-accessing actors carry WCETs
/// inflated by the arbiter's worst-case access latency.
///
/// The inflation is binding-independent: it uses the worst latency over
/// all tiles in the TDM table, so the bound holds wherever the binder
/// places the actor.
///
/// # Errors
///
/// [`ArbitrationError`] if the architecture has no arbiter or the table is
/// unusable.
pub fn apply_peripheral_arbitration(
    app: &ApplicationModel,
    arch: &Architecture,
    accesses: &PeripheralAccesses,
) -> Result<ApplicationModel, ArbitrationError> {
    if accesses.iter().all(|&(_, n)| n == 0) {
        return Ok(app.clone());
    }
    let arbiter = arch
        .peripheral_arbiter()
        .ok_or(ArbitrationError::NoArbiter)?;
    // Binding-independent bound: the worst access latency over every tile
    // appearing in the table.
    let worst = arbiter
        .table()
        .iter()
        .filter_map(|&t| arbiter.worst_case_access(t))
        .max()
        .ok_or_else(|| ArbitrationError::Inflation("empty TDM table".into()))?;
    let _ = TileId(0); // (tile-specific refinement is a future extension)

    let by_actor: HashMap<ActorId, u64> = accesses.iter().copied().collect();
    let graph = app.graph().clone();
    let mut implementations = HashMap::new();
    for (aid, actor) in graph.actors() {
        let extra = by_actor.get(&aid).copied().unwrap_or(0) * worst;
        let impls: Vec<_> = app
            .implementations(aid)
            .iter()
            .cloned()
            .map(|mut im| {
                im.wcet += extra;
                im
            })
            .collect();
        implementations.insert(actor.name().to_string(), impls);
    }
    let mut graph = graph;
    for (aid, _) in app.graph().actors() {
        let extra = by_actor.get(&aid).copied().unwrap_or(0) * worst;
        let new = graph.actor(aid).execution_time() + extra;
        graph.actor_mut(aid).set_execution_time(new);
    }
    ApplicationModel::new(graph, implementations, app.throughput_constraint())
        .map_err(ArbitrationError::Model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_platform::arbiter::TdmArbiter;
    use mamps_platform::interconnect::Interconnect;
    use mamps_platform::tile::TileConfig;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn app() -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("a");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel("e", x, 1, y, 1);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 100, 2048, 256).actor("y", 100, 2048, 256);
        mb.finish(g, None).unwrap()
    }

    fn shared_arch() -> Architecture {
        let tiles = vec![TileConfig::master("m0"), TileConfig::master("m1")];
        let arbiter = TdmArbiter::round_robin(10, &[TileId(0), TileId(1)]);
        Architecture::with_peripheral_arbiter("sh", tiles, Interconnect::fsl(), arbiter).unwrap()
    }

    #[test]
    fn inflation_applies_to_declared_actors_only() {
        let app = app();
        let arch = shared_arch();
        let x = app.graph().actor_by_name("x").unwrap();
        let y = app.graph().actor_by_name("y").unwrap();
        // Round-robin over 2 tiles, 10-cycle slots: worst = 2*10 + 10 = 30.
        let inflated = apply_peripheral_arbitration(&app, &arch, &vec![(x, 2)]).unwrap();
        assert_eq!(inflated.graph().actor(x).execution_time(), 100 + 60);
        assert_eq!(inflated.graph().actor(y).execution_time(), 100);
        assert_eq!(inflated.wcet(x, "microblaze"), Some(160));
    }

    #[test]
    fn no_accesses_is_identity() {
        let app = app();
        let arch = shared_arch();
        let out = apply_peripheral_arbitration(&app, &arch, &vec![]).unwrap();
        let x = app.graph().actor_by_name("x").unwrap();
        assert_eq!(out.graph().actor(x).execution_time(), 100);
    }

    #[test]
    fn missing_arbiter_rejected() {
        let app = app();
        let arch = Architecture::homogeneous("p", 2, Interconnect::fsl()).unwrap();
        let x = app.graph().actor_by_name("x").unwrap();
        assert!(matches!(
            apply_peripheral_arbitration(&app, &arch, &vec![(x, 1)]),
            Err(ArbitrationError::NoArbiter)
        ));
    }

    #[test]
    fn two_masters_require_the_arbiter() {
        let tiles = vec![TileConfig::master("m0"), TileConfig::master("m1")];
        assert!(Architecture::new("bad", tiles, Interconnect::fsl()).is_err());
        let _ = shared_arch(); // with the arbiter it is accepted
    }

    #[test]
    fn master_without_slot_rejected() {
        let tiles = vec![TileConfig::master("m0"), TileConfig::master("m1")];
        let arbiter = TdmArbiter::round_robin(10, &[TileId(0)]);
        assert!(
            Architecture::with_peripheral_arbiter("bad", tiles, Interconnect::fsl(), arbiter)
                .is_err()
        );
    }
}
