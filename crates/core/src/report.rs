//! Text rendering of the evaluation artefacts (figures as tables).

use std::fmt::Write as _;

use mamps_mapping::MappedApplication;
use mamps_platform::arch::Architecture;
use mamps_platform::types::TileId;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::repetition::repetition_vector;

use crate::dse::{pareto_front, DsePoint, DseReport, UseCaseDseReport};
use crate::experiments::{Fig6Row, Table1Row};
use crate::flow::MultiFlowResult;

/// Renders Fig. 6 rows as an aligned text table; throughputs are shown in
/// MCUs per MHz per second (iterations/cycle x 1e6), the paper's unit.
pub fn render_fig6(title: &str, rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>14} {:>9}",
        "sequence", "worst-case", "expected", "measured", "margin"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>14.3} {:>14.3} {:>14.3} {:>8.2}x",
            r.sequence,
            r.worst_case * 1e6,
            r.expected * 1e6,
            r.measured * 1e6,
            r.guarantee().margin
        );
    }
    out
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: designer effort (a = automated)");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<38} {:>20} {}",
            r.step,
            r.time,
            if r.automated { "a" } else { "" }
        );
    }
    out
}

/// Renders a DSE sweep. Every point is attributed to the binding strategy
/// that produced it; `wires` is the allocated NoC wire-links (0 on FSL).
pub fn render_dse(points: &[DsePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<6} {:<6} {:>16} {:>10} {:>7}",
        "binder", "tiles", "ic", "it/cycle", "slices", "wires"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<8} {:<6} {:<6} {:>16.3e} {:>10} {:>7}",
            p.strategy, p.tiles, p.interconnect, p.guaranteed, p.slices, p.wire_units
        );
    }
    out
}

/// Renders a DSE sweep including the skipped (infeasible) design points
/// with the reason each one failed. Points on the (throughput, slices)
/// Pareto front are marked with `*` and summarized per binding strategy,
/// so strategy comparisons are readable straight off the report.
pub fn render_dse_report(report: &DseReport) -> String {
    let front = pareto_front(&report.points);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<2} {:<8} {:<6} {:<6} {:>16} {:>10} {:>7}",
        "", "binder", "tiles", "ic", "it/cycle", "slices", "wires"
    );
    for p in &report.points {
        let marker = if front.contains(p) { "*" } else { "" };
        let _ = writeln!(
            out,
            "{:<2} {:<8} {:<6} {:<6} {:>16.3e} {:>10} {:>7}",
            marker, p.strategy, p.tiles, p.interconnect, p.guaranteed, p.slices, p.wire_units
        );
    }
    if !front.is_empty() {
        let mut per_strategy: Vec<(&str, usize)> = Vec::new();
        for p in &front {
            match per_strategy.iter_mut().find(|(s, _)| *s == p.strategy) {
                Some((_, n)) => *n += 1,
                None => per_strategy.push((p.strategy, 1)),
            }
        }
        let summary = per_strategy
            .iter()
            .map(|(s, n)| format!("{s} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "pareto front (*): {} of {} points ({summary})",
            front.len(),
            report.points.len()
        );
    }
    if !report.skipped.is_empty() {
        let _ = writeln!(
            out,
            "skipped {} infeasible design point{}:",
            report.skipped.len(),
            if report.skipped.len() == 1 { "" } else { "s" }
        );
        for s in &report.skipped {
            let _ = writeln!(
                out,
                "  {:<8} {:<6} {:<6} {}",
                s.strategy, s.tiles, s.interconnect, s.reason
            );
        }
    }
    out
}

/// Renders a per-tile summary of a mapped application: which binding
/// strategy produced it, each tile's actors, its share of the total work
/// (WCET × repetitions of the bound implementations), its memory usage,
/// and the allocated NoC wire-links. This is what `mamps map` prints so
/// strategy choices can be compared from the CLI.
pub fn render_mapping_summary(
    app: &ApplicationModel,
    arch: &Architecture,
    mapped: &MappedApplication,
) -> String {
    let graph = app.graph();
    let mut out = String::new();
    let _ = writeln!(out, "binder: {}", mapped.strategy);
    let Ok(q) = repetition_vector(graph) else {
        // A produced mapping implies consistency; defensive fallback only.
        return out;
    };
    let binding = &mapped.mapping.binding;
    let n = graph.actor_count();
    let work = |i: usize| binding.wcet_of[i] * q.of(mamps_sdf::graph::ActorId(i));
    let total: f64 = (0..n).map(|i| work(i) as f64).sum::<f64>().max(1.0);
    let _ = writeln!(
        out,
        "{:<6} {:>6} {:>12}  actors",
        "tile", "load", "mem(bytes)"
    );
    for t in 0..arch.tile_count() {
        let actors = binding.actors_on(TileId(t));
        let load: f64 = actors.iter().map(|&a| work(a.0) as f64).sum::<f64>() / total;
        let mem: u64 = actors
            .iter()
            .filter_map(|&a| {
                app.implementation_for(a, binding.processor_of[a.0].name())
                    .map(|im| im.instruction_memory + im.data_memory)
            })
            .sum();
        let names = actors
            .iter()
            .map(|&a| graph.actor(a).name())
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "{t:<6} {:>5.1}% {mem:>12}  {names}", load * 100.0);
    }
    let wire_units = mapped.mapping.noc_wire_units(graph, arch);
    if wire_units > 0 {
        let _ = writeln!(out, "noc wire-links allocated: {wire_units}");
    }
    out
}

/// Renders a multi-application flow result as one section per
/// application (admission order): admission status, binding strategy and
/// tiles, the constraint, the isolated and shared (resource-reduced)
/// bounds, and the concurrently simulated throughput with its guarantee
/// verdict. Rejected applications carry their structured reason.
pub fn render_multi_report(result: &MultiFlowResult) -> String {
    let mut out = String::new();
    let total = result.sections.len();
    let _ = writeln!(
        out,
        "use-case: {} of {} application{} admitted on `{}`",
        result.admitted_count(),
        total,
        if total == 1 { "" } else { "s" },
        result.arch.name()
    );
    let fmt_opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.6e} it/cycle"),
        None => "-".to_string(),
    };
    for s in &result.sections {
        if s.admitted {
            let tiles = s
                .tiles
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "== {}: ADMITTED (binder {}, tiles {})",
                s.name,
                s.strategy.unwrap_or("?"),
                tiles
            );
            let _ = writeln!(
                out,
                "   constraint           {}",
                match s.constraint {
                    Some(c) => format!("{c:.6e} it/cycle"),
                    None => "none".to_string(),
                }
            );
            let _ = writeln!(out, "   isolated bound       {}", fmt_opt(s.isolated_bound));
            let _ = writeln!(out, "   shared guarantee     {}", fmt_opt(s.shared_bound));
            if let (Some(m), Some(g)) = (s.measured, &s.guarantee) {
                let _ = writeln!(
                    out,
                    "   measured (WCET sim)  {m:.6e} it/cycle  margin {:.3}x  guarantee {}",
                    g.margin,
                    if g.holds() { "HOLDS" } else { "VIOLATED" }
                );
            }
        } else {
            let _ = writeln!(out, "== {}: REJECTED", s.name);
            if let Some(reason) = &s.rejection {
                let _ = writeln!(out, "   reason: {reason}");
            }
        }
    }
    out
}

/// Renders a use-case DSE sweep: per platform configuration, how many
/// (and which) applications were admitted, the lowest shared guarantee
/// among them, and the platform area — followed by every rejection with
/// its structured reason.
pub fn render_use_case_report(report: &UseCaseDseReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<6} {:<6} {:>9} {:>16} {:>10}  admitted",
        "binder", "tiles", "ic", "admitted", "min it/cycle", "slices"
    );
    for p in &report.points {
        let total = p.admitted.len() + p.rejected.len();
        let _ = writeln!(
            out,
            "{:<8} {:<6} {:<6} {:>9} {:>16.3e} {:>10}  {}",
            p.strategy,
            p.tiles,
            p.interconnect,
            format!("{}/{}", p.admitted.len(), total),
            p.min_guarantee,
            p.slices,
            p.admitted.join(" ")
        );
    }
    let rejections: Vec<String> = report
        .points
        .iter()
        .flat_map(|p| {
            p.rejected.iter().map(move |(name, reason)| {
                format!(
                    "  {:<8} {:<6} {:<6} {name}: {reason}",
                    p.strategy, p.tiles, p.interconnect
                )
            })
        })
        .collect();
    if !rejections.is_empty() {
        let _ = writeln!(out, "rejections:");
        for r in rejections {
            let _ = writeln!(out, "{r}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_table_contains_all_sequences() {
        let rows = vec![
            Fig6Row {
                sequence: "synthetic".into(),
                worst_case: 1e-5,
                expected: 1.1e-5,
                measured: 1.05e-5,
            },
            Fig6Row {
                sequence: "portrait".into(),
                worst_case: 1e-5,
                expected: 3e-5,
                measured: 2.9e-5,
            },
        ];
        let s = render_fig6("Fig 6(a) FSL", &rows);
        assert!(s.contains("synthetic"));
        assert!(s.contains("portrait"));
        assert!(s.contains("Fig 6(a)"));
        assert!(s.contains("10.500")); // measured x 1e6
    }

    #[test]
    fn table1_render() {
        let rows = vec![Table1Row {
            step: "Mapping the design (SDF3)".into(),
            time: "3.0 ms".into(),
            automated: true,
        }];
        let s = render_table1(&rows);
        assert!(s.contains("Mapping"));
        assert!(s.trim_end().ends_with('a'));
    }

    #[test]
    fn dse_render() {
        let s = render_dse(&[DsePoint {
            tiles: 2,
            interconnect: "fsl",
            strategy: "greedy",
            guaranteed: 1e-5,
            slices: 1234,
            wire_units: 0,
            per_tile_load: vec![60, 40],
        }]);
        assert!(s.contains("fsl"));
        assert!(s.contains("1234"));
        assert!(s.contains("greedy"));
        assert!(s.contains("binder"));
    }

    #[test]
    fn dse_report_render_lists_skips() {
        let report = DseReport {
            points: vec![DsePoint {
                tiles: 2,
                interconnect: "fsl",
                strategy: "spiral",
                guaranteed: 1e-5,
                slices: 1234,
                wire_units: 3,
                per_tile_load: vec![50, 50],
            }],
            skipped: vec![crate::dse::SkippedPoint {
                tiles: 9,
                interconnect: "noc",
                strategy: "greedy",
                reason: "mapping step failed: no feasible binding".into(),
            }],
        };
        let s = render_dse_report(&report);
        assert!(s.contains("1234"));
        assert!(s.contains("spiral"));
        assert!(s.contains("skipped 1 infeasible design point"));
        assert!(s.contains("no feasible binding"));
        // The single point is trivially on the Pareto front.
        assert!(s.contains("pareto front (*): 1 of 1 points (spiral 1)"));

        // No skip section when everything mapped.
        let clean = render_dse_report(&DseReport {
            skipped: Vec::new(),
            ..report
        });
        assert!(!clean.contains("skipped"));
    }

    #[test]
    fn multi_report_renders_sections_and_rejections() {
        use crate::flow::{run_multi_flow, FlowOptions};
        use mamps_platform::arch::Architecture;
        use mamps_platform::interconnect::Interconnect;
        use mamps_sdf::graph::SdfGraphBuilder;
        use mamps_sdf::model::{HomogeneousModelBuilder, ThroughputConstraint};

        let mk = |name: &str, wcet: u64, constraint: Option<ThroughputConstraint>| {
            let mut b = SdfGraphBuilder::new(name);
            let x = b.add_actor(format!("{name}x"), 1);
            let y = b.add_actor(format!("{name}y"), 1);
            b.add_channel_full(format!("{name}e"), x, 1, y, 1, 0, 16);
            let g = b.build().unwrap();
            let mut mb = HomogeneousModelBuilder::new("microblaze");
            mb.actor(format!("{name}x"), wcet, 2048, 256).actor(
                format!("{name}y"),
                wcet,
                2048,
                256,
            );
            mb.finish(g, constraint).unwrap()
        };
        let arch = Architecture::homogeneous("r", 2, Interconnect::fsl()).unwrap();
        let r = run_multi_flow(
            vec![
                mk("good", 60, None),
                mk(
                    "bad",
                    900,
                    Some(ThroughputConstraint {
                        iterations: 1,
                        cycles: 10,
                    }),
                ),
            ],
            arch,
            &FlowOptions::default(),
            40,
        )
        .unwrap();
        let s = render_multi_report(&r);
        assert!(s.contains("1 of 2 applications admitted"));
        assert!(s.contains("good: ADMITTED"));
        assert!(s.contains("guarantee HOLDS"));
        assert!(s.contains("bad: REJECTED"));
        assert!(s.contains("reason: mapping failed"));
    }

    #[test]
    fn use_case_report_lists_points_and_rejections() {
        use crate::dse::{UseCaseDseReport, UseCasePoint};
        let report = UseCaseDseReport {
            points: vec![UseCasePoint {
                tiles: 2,
                interconnect: "fsl",
                strategy: "greedy",
                admitted: vec!["a".into()],
                rejected: vec![("b".into(), "mapping failed: no fit".into())],
                min_guarantee: 1e-5,
                slices: 2345,
            }],
        };
        let s = render_use_case_report(&report);
        assert!(s.contains("1/2"));
        assert!(s.contains("2345"));
        assert!(s.contains("rejections:"));
        assert!(s.contains("b: mapping failed: no fit"));
    }

    #[test]
    fn mapping_summary_lists_tiles_and_strategy() {
        use mamps_mapping::flow::{map_application, MapOptions};
        use mamps_platform::interconnect::Interconnect;
        use mamps_sdf::graph::SdfGraphBuilder;
        use mamps_sdf::model::HomogeneousModelBuilder;

        let mut b = SdfGraphBuilder::new("s");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel_full("e", x, 1, y, 1, 0, 16);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 40, 2048, 256).actor("y", 70, 2048, 256);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let s = render_mapping_summary(&app, &arch, &mapped);
        assert!(s.contains("binder: greedy"));
        assert!(s.contains('x') && s.contains('y'));
        assert!(s.contains("load"));
    }
}
