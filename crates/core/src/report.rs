//! Text rendering of the evaluation artefacts (figures as tables).

use std::fmt::Write as _;

use crate::dse::{DsePoint, DseReport};
use crate::experiments::{Fig6Row, Table1Row};

/// Renders Fig. 6 rows as an aligned text table; throughputs are shown in
/// MCUs per MHz per second (iterations/cycle x 1e6), the paper's unit.
pub fn render_fig6(title: &str, rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>14} {:>9}",
        "sequence", "worst-case", "expected", "measured", "margin"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>14.3} {:>14.3} {:>14.3} {:>8.2}x",
            r.sequence,
            r.worst_case * 1e6,
            r.expected * 1e6,
            r.measured * 1e6,
            r.guarantee().margin
        );
    }
    out
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: designer effort (a = automated)");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<38} {:>20} {}",
            r.step,
            r.time,
            if r.automated { "a" } else { "" }
        );
    }
    out
}

/// Renders a DSE sweep.
pub fn render_dse(points: &[DsePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<6} {:>16} {:>10}",
        "tiles", "ic", "it/cycle", "slices"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<6} {:<6} {:>16.3e} {:>10}",
            p.tiles, p.interconnect, p.guaranteed, p.slices
        );
    }
    out
}

/// Renders a DSE sweep including the skipped (infeasible) design points
/// with the reason each one failed.
pub fn render_dse_report(report: &DseReport) -> String {
    let mut out = render_dse(&report.points);
    if !report.skipped.is_empty() {
        let _ = writeln!(
            out,
            "skipped {} infeasible design point{}:",
            report.skipped.len(),
            if report.skipped.len() == 1 { "" } else { "s" }
        );
        for s in &report.skipped {
            let _ = writeln!(out, "  {:<6} {:<6} {}", s.tiles, s.interconnect, s.reason);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_table_contains_all_sequences() {
        let rows = vec![
            Fig6Row {
                sequence: "synthetic".into(),
                worst_case: 1e-5,
                expected: 1.1e-5,
                measured: 1.05e-5,
            },
            Fig6Row {
                sequence: "portrait".into(),
                worst_case: 1e-5,
                expected: 3e-5,
                measured: 2.9e-5,
            },
        ];
        let s = render_fig6("Fig 6(a) FSL", &rows);
        assert!(s.contains("synthetic"));
        assert!(s.contains("portrait"));
        assert!(s.contains("Fig 6(a)"));
        assert!(s.contains("10.500")); // measured x 1e6
    }

    #[test]
    fn table1_render() {
        let rows = vec![Table1Row {
            step: "Mapping the design (SDF3)".into(),
            time: "3.0 ms".into(),
            automated: true,
        }];
        let s = render_table1(&rows);
        assert!(s.contains("Mapping"));
        assert!(s.trim_end().ends_with('a'));
    }

    #[test]
    fn dse_render() {
        let s = render_dse(&[DsePoint {
            tiles: 2,
            interconnect: "fsl",
            guaranteed: 1e-5,
            slices: 1234,
        }]);
        assert!(s.contains("fsl"));
        assert!(s.contains("1234"));
    }

    #[test]
    fn dse_report_render_lists_skips() {
        let report = DseReport {
            points: vec![DsePoint {
                tiles: 2,
                interconnect: "fsl",
                guaranteed: 1e-5,
                slices: 1234,
            }],
            skipped: vec![crate::dse::SkippedPoint {
                tiles: 9,
                interconnect: "noc",
                reason: "mapping step failed: no feasible binding".into(),
            }],
        };
        let s = render_dse_report(&report);
        assert!(s.contains("1234"));
        assert!(s.contains("skipped 1 infeasible design point"));
        assert!(s.contains("no feasible binding"));

        // No skip section when everything mapped.
        let clean = render_dse_report(&DseReport {
            skipped: Vec::new(),
            ..report
        });
        assert!(!clean.contains("skipped"));
    }
}
