//! Sharded design-space exploration: split a sweep across processes,
//! serialize the partial results as JSON lines, and merge them back into
//! the exact report an unsharded run would have produced.
//!
//! The ROADMAP's "Scale: sharding the DSE" item in three pieces:
//!
//! 1. **Partitioning.** [`ShardSpec`] `index/count` (the CLI's
//!    `--shard i/n`) deterministically assigns every design point of the
//!    canonical sweep order — see `sweep_configs` in [`crate::dse`] — to
//!    exactly one shard, round-robin by sequence number. Round-robin
//!    balances load across shards even though small-tile-count points are
//!    much cheaper than large ones.
//! 2. **Serialization.** A shard run produces a [`DseShard`]: a header
//!    identifying the sweep (its [`SweepSignature`]), the shard, and the
//!    total design-point count, plus one seq-tagged record per evaluated
//!    point. [`DseShard::to_jsonl`] / [`DseShard::from_jsonl`] move it
//!    through files — one JSON object per line, first line the header.
//! 3. **Merging.** [`merge_reports`] validates that the shard files come
//!    from the same sweep and form a complete, non-overlapping partition,
//!    restores the canonical evaluation order by sequence number, and
//!    assembles the final report with the same sorting the unsharded
//!    sweep uses — so the merged report is equal (and renders
//!    byte-for-byte identically) to the unsharded one. Pareto fronts are
//!    *not* merged per shard: the merged report carries all points, and
//!    rendering recomputes the global front per strategy.

use std::fmt;
use std::str::FromStr;

use mamps_mapping::StrategyHandle;
use mamps_sdf::model::ApplicationModel;
use serde::{Deserialize, Serialize};

use crate::dse::{
    evaluate_dse_config, evaluate_use_case_config, sort_dse_points, sort_use_case_points,
    sweep_configs, sweep_strategies, use_case_context, DsePoint, DseReport, SkippedPoint,
    SweepConfig, UseCaseDseReport, UseCasePoint,
};
use crate::flow::FlowOptions;
use crate::parallel::dynamic_map;

/// Which slice of a sweep this process evaluates: shard `index` of
/// `count`. The full, unsharded sweep is shard 0 of 1
/// ([`ShardSpec::full`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Zero-based shard index.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl ShardSpec {
    /// A validated shard spec.
    ///
    /// # Errors
    ///
    /// A message when `count` is zero or `index` is out of range.
    pub fn new(index: u32, count: u32) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard{}",
                if count == 1 { "" } else { "s" }
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// The whole sweep as a single shard (0 of 1).
    pub fn full() -> ShardSpec {
        ShardSpec { index: 0, count: 1 }
    }

    /// True when this shard evaluates design point `seq` of the canonical
    /// sweep order (round-robin partition). An invalid spec (`count` 0 —
    /// representable because the fields are public and deserializable)
    /// owns nothing rather than dividing by zero.
    pub fn owns(&self, seq: u64) -> bool {
        self.count != 0 && seq % u64::from(self.count) == u64::from(self.index)
    }

    /// True when `index < count` and `count > 0` — what
    /// [`ShardSpec::new`] guarantees, re-checked on specs that arrived
    /// through deserialization or literal construction.
    pub fn is_valid(&self) -> bool {
        self.count > 0 && self.index < self.count
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// `"i/n"` (e.g. `"0/3"`), the CLI syntax of `--shard`.
impl FromStr for ShardSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ShardSpec, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{s}` is not of the form i/n (e.g. 0/3)"))?;
        let index: u32 = index
            .trim()
            .parse()
            .map_err(|_| format!("shard index `{index}` is not a number"))?;
        let count: u32 = count
            .trim()
            .parse()
            .map_err(|_| format!("shard count `{count}` is not a number"))?;
        ShardSpec::new(index, count)
    }
}

/// What kind of sweep a shard file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMode {
    /// Single-application sweep (`mamps dse <app.xml>`): [`DsePoint`] /
    /// [`SkippedPoint`] records.
    Binders,
    /// Use-case sweep (`mamps dse --apps`): [`UseCasePoint`] records.
    UseCases,
}

impl fmt::Display for SweepMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepMode::Binders => write!(f, "binder sweep"),
            SweepMode::UseCases => write!(f, "use-case sweep"),
        }
    }
}

/// Identity of a sweep: shards can only be merged when they were produced
/// from the same application(s), tile counts, interconnect choice and
/// binding strategies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSignature {
    /// Application (graph) names, in use-case admission order.
    pub apps: Vec<String>,
    /// Tile counts swept.
    pub tile_counts: Vec<usize>,
    /// Whether NoC configurations were swept alongside FSL.
    pub include_noc: bool,
    /// Binding strategy names, in sweep order.
    pub binders: Vec<String>,
}

impl fmt::Display for SweepSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "apps={}; tiles={}; noc={}; binders={}",
            self.apps.join(","),
            self.tile_counts
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.include_noc,
            self.binders.join(",")
        )
    }
}

/// First line of a shard file: which sweep, which shard, how many design
/// points the whole sweep has.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardHeader {
    /// The sweep kind.
    pub mode: SweepMode,
    /// This file's shard.
    pub shard: ShardSpec,
    /// Design points in the whole (unsharded) sweep.
    pub total_configs: u64,
    /// The sweep's identity.
    pub signature: SweepSignature,
}

/// One evaluated design point of a shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardOutcome {
    /// A feasible single-application design point.
    Point(DsePoint),
    /// An infeasible single-application design point.
    Skipped(SkippedPoint),
    /// A use-case design point.
    UseCase(UseCasePoint),
}

/// A seq-tagged outcome: `seq` is the design point's position in the
/// canonical sweep order, which the merge uses to restore the unsharded
/// evaluation order exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRecord {
    /// Position in the canonical sweep order.
    pub seq: u64,
    /// The evaluated outcome.
    pub outcome: ShardOutcome,
}

/// One line of a shard file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum ShardLine {
    /// The header (always the first line).
    Header(ShardHeader),
    /// An evaluated design point.
    Record(ShardRecord),
}

/// The partial result of one shard run: the header plus the records of
/// every design point the shard owns, in canonical sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct DseShard {
    /// The shard's identity.
    pub header: ShardHeader,
    /// Evaluated design points, seq ascending.
    pub records: Vec<ShardRecord>,
}

impl DseShard {
    /// Renders the shard as JSON lines: one object per line, the header
    /// first. The encoding is canonical — equal shards produce identical
    /// bytes.
    pub fn to_jsonl(&self) -> String {
        use serde::{Serialize, Value};
        // Build the externally-tagged lines by hand instead of cloning
        // the header and every record into a ShardLine: identical bytes
        // (pinned by the round-trip fixpoint test), no per-record clone.
        let tagged =
            |tag: &str, v: &dyn Serialize| Value::Map(vec![(tag.to_string(), v.to_value())]);
        let mut out = String::new();
        serde::json::emit(&tagged("Header", &self.header), &mut out);
        out.push('\n');
        for r in &self.records {
            serde::json::emit(&tagged("Record", r), &mut out);
            out.push('\n');
        }
        out
    }

    /// Parses a shard back from JSON lines, tolerating a torn final line.
    ///
    /// A sweep killed mid-write leaves its shard file with a truncated
    /// last record; everything before it is intact and worth resuming
    /// from. This loader drops a final line that fails to parse (returning
    /// `true` alongside the shard) but still rejects corruption anywhere
    /// earlier — a bad line *followed by* good ones is not a crash
    /// artefact.
    ///
    /// # Errors
    ///
    /// As [`DseShard::from_jsonl`], except a parse error on the final
    /// non-empty line.
    pub fn from_jsonl_lossy(text: &str) -> Result<(DseShard, bool), ShardFileError> {
        match DseShard::from_jsonl(text) {
            Ok(s) => Ok((s, false)),
            Err(ShardFileError::Parse { line, .. })
                if Some(line)
                    == text
                        .lines()
                        .enumerate()
                        .filter(|(_, l)| !l.trim().is_empty())
                        .map(|(i, _)| i + 1)
                        .last() =>
            {
                let intact: String = text
                    .lines()
                    .take(line - 1)
                    .flat_map(|l| [l, "\n"])
                    .collect();
                DseShard::from_jsonl(&intact).map(|s| (s, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Parses a shard back from JSON lines.
    ///
    /// # Errors
    ///
    /// [`ShardFileError`] on malformed JSON, a missing header, or records
    /// that do not belong to the header's shard or mode.
    pub fn from_jsonl(text: &str) -> Result<DseShard, ShardFileError> {
        let mut header: Option<ShardHeader> = None;
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed: ShardLine =
                serde::json::from_str(line).map_err(|e| ShardFileError::Parse {
                    line: i + 1,
                    message: e.to_string(),
                })?;
            match (parsed, &header) {
                (ShardLine::Header(h), None) => header = Some(h),
                (ShardLine::Header(_), Some(_)) => {
                    return Err(ShardFileError::Parse {
                        line: i + 1,
                        message: "second header line in one shard file".into(),
                    })
                }
                (ShardLine::Record(r), Some(_)) => records.push(r),
                (ShardLine::Record(_), None) => {
                    return Err(ShardFileError::MissingHeader);
                }
            }
        }
        let header = header.ok_or(ShardFileError::MissingHeader)?;
        // The derive cannot enforce ShardSpec's invariant; a corrupt or
        // hand-edited header must fail here, not divide by zero in
        // `owns` or index out of bounds in `merge_reports`.
        if !header.shard.is_valid() {
            return Err(ShardFileError::InvalidShard {
                shard: header.shard,
            });
        }
        for r in &records {
            if !header.shard.owns(r.seq) {
                return Err(ShardFileError::ForeignRecord {
                    seq: r.seq,
                    shard: header.shard,
                });
            }
            let mode_matches = matches!(
                (&r.outcome, header.mode),
                (
                    ShardOutcome::Point(_) | ShardOutcome::Skipped(_),
                    SweepMode::Binders
                ) | (ShardOutcome::UseCase(_), SweepMode::UseCases)
            );
            if !mode_matches {
                return Err(ShardFileError::ModeMismatch { seq: r.seq });
            }
        }
        Ok(DseShard { header, records })
    }

    /// Assembles this shard's records into a [`DseReport`] (the full
    /// report when this is the 0/1 full-sweep shard, a partial one
    /// otherwise). Use-case records are ignored.
    pub fn into_dse_report(self) -> DseReport {
        let mut report = DseReport::default();
        for r in self.records {
            match r.outcome {
                ShardOutcome::Point(p) => report.points.push(p),
                ShardOutcome::Skipped(s) => report.skipped.push(s),
                ShardOutcome::UseCase(_) => {}
            }
        }
        sort_dse_points(&mut report.points);
        report
    }

    /// Assembles this shard's records into a [`UseCaseDseReport`].
    /// Single-application records are ignored.
    pub fn into_use_case_report(self) -> UseCaseDseReport {
        let mut report = UseCaseDseReport::default();
        for r in self.records {
            if let ShardOutcome::UseCase(p) = r.outcome {
                report.points.push(p);
            }
        }
        sort_use_case_points(&mut report.points);
        report
    }
}

/// Errors reading a single shard file.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardFileError {
    /// A line is not valid JSON or not a shard line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file carries no header line.
    MissingHeader,
    /// The header's shard spec violates `index < count` (corrupt or
    /// hand-edited file).
    InvalidShard {
        /// The offending spec.
        shard: ShardSpec,
    },
    /// A record's seq is not owned by the header's shard.
    ForeignRecord {
        /// The offending sequence number.
        seq: u64,
        /// The shard that does not own it.
        shard: ShardSpec,
    },
    /// A record's outcome kind contradicts the header's sweep mode.
    ModeMismatch {
        /// The offending sequence number.
        seq: u64,
    },
}

impl fmt::Display for ShardFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardFileError::Parse { line, message } => {
                write!(f, "shard file line {line}: {message}")
            }
            ShardFileError::MissingHeader => {
                write!(f, "shard file has no header line")
            }
            ShardFileError::InvalidShard { shard } => write!(
                f,
                "shard file header carries invalid shard spec {shard} \
                 (index must be below the count)"
            ),
            ShardFileError::ForeignRecord { seq, shard } => write!(
                f,
                "record seq {seq} does not belong to shard {shard} (wrongly \
                 concatenated files?)"
            ),
            ShardFileError::ModeMismatch { seq } => {
                write!(f, "record seq {seq} contradicts the header's sweep mode")
            }
        }
    }
}

impl std::error::Error for ShardFileError {}

/// Errors merging shard files.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No shards were given.
    NoShards,
    /// Two shards disagree about the sweep (mode, signature, shard count
    /// or total design-point count).
    SweepMismatch {
        /// Rendered identity of the first shard.
        expected: String,
        /// Rendered identity of the disagreeing shard.
        found: String,
    },
    /// The same shard index appears twice (overlapping shards).
    DuplicateShard {
        /// The duplicated index.
        index: u32,
    },
    /// Not every shard of the sweep is present.
    MissingShards {
        /// The absent shard indices.
        missing: Vec<u32>,
        /// The sweep's shard count.
        count: u32,
    },
    /// The records do not cover every design point exactly once (e.g. a
    /// truncated shard file).
    IncompleteSweep {
        /// Design points covered.
        covered: u64,
        /// Design points the sweep has.
        total: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard files to merge"),
            MergeError::SweepMismatch { expected, found } => write!(
                f,
                "shards come from different sweeps:\n  first: {expected}\n  other: {found}"
            ),
            MergeError::DuplicateShard { index } => {
                write!(
                    f,
                    "overlapping shards: index {index} appears more than once"
                )
            }
            MergeError::MissingShards { missing, count } => write!(
                f,
                "missing shard{} {}{} of {count}",
                if missing.len() == 1 { "" } else { "s" },
                missing
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                // The list is capped at the first few absentees.
                if missing.len() >= 8 { ", …" } else { "" }
            ),
            MergeError::IncompleteSweep { covered, total } => write!(
                f,
                "records cover {covered} of {total} design points (truncated shard file?)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// A merged sweep: the same report the matching unsharded run returns.
#[derive(Debug, Clone, PartialEq)]
pub enum MergedReport {
    /// A single-application sweep.
    Dse(DseReport),
    /// A use-case sweep.
    UseCases(UseCaseDseReport),
}

impl MergedReport {
    /// Renders the merged report exactly like `mamps dse` renders the
    /// unsharded sweep (including the recomputed global Pareto front for
    /// single-application sweeps).
    pub fn render(&self) -> String {
        match self {
            MergedReport::Dse(r) => crate::report::render_dse_report(r),
            MergedReport::UseCases(r) => crate::report::render_use_case_report(r),
        }
    }
}

/// Rendered identity of a header, for mismatch reporting.
fn header_identity(h: &ShardHeader) -> String {
    format!(
        "{} over {} ({} design points, {} shards)",
        h.mode, h.signature, h.total_configs, h.shard.count
    )
}

/// Merges shard results into the full report, recomputing every global
/// figure (ordering, and at render time the per-strategy Pareto front)
/// across shards. The merged report is equal to the unsharded sweep's —
/// byte-for-byte once rendered.
///
/// # Errors
///
/// [`MergeError`] when the shards disagree about the sweep, overlap, are
/// incomplete, or do not cover every design point exactly once.
pub fn merge_reports(shards: &[DseShard]) -> Result<MergedReport, MergeError> {
    let first = shards.first().ok_or(MergeError::NoShards)?;
    let reference = &first.header;
    for s in &shards[1..] {
        let h = &s.header;
        if h.mode != reference.mode
            || h.signature != reference.signature
            || h.total_configs != reference.total_configs
            || h.shard.count != reference.shard.count
        {
            return Err(MergeError::SweepMismatch {
                expected: header_identity(reference),
                found: header_identity(h),
            });
        }
    }

    let count = reference.shard.count;
    // A set, not a `vec![false; count]` bitmap: `count` comes from an
    // untrusted header, and a corrupt count near u32::MAX must produce a
    // structured error below, not a multi-gigabyte allocation here.
    let mut seen = std::collections::BTreeSet::new();
    for s in shards {
        // from_jsonl validates this, but DseShard values can also be
        // constructed directly — never trust `index < count`.
        if !s.header.shard.is_valid() {
            return Err(MergeError::SweepMismatch {
                expected: header_identity(reference),
                found: format!("invalid shard spec {}", s.header.shard),
            });
        }
        let idx = s.header.shard.index;
        if !seen.insert(idx) {
            return Err(MergeError::DuplicateShard { index: idx });
        }
    }
    if seen.len() as u64 != u64::from(count) {
        // Indices are distinct and below `count`, so fewer than `count`
        // of them means some are absent. Name the first few (scanning
        // from 0 finds them after at most |seen| + 8 steps) rather than
        // materializing a possibly huge list.
        let missing: Vec<u32> = (0..count).filter(|i| !seen.contains(i)).take(8).collect();
        return Err(MergeError::MissingShards { missing, count });
    }

    // Restore the canonical evaluation order and check exact coverage.
    let mut records: Vec<&ShardRecord> = shards.iter().flat_map(|s| &s.records).collect();
    records.sort_by_key(|r| r.seq);
    let total = reference.total_configs;
    let exact =
        records.len() as u64 == total && records.iter().enumerate().all(|(i, r)| r.seq == i as u64);
    if !exact {
        return Err(MergeError::IncompleteSweep {
            covered: records.len() as u64,
            total,
        });
    }

    let merged = DseShard {
        header: ShardHeader {
            shard: ShardSpec::full(),
            ..reference.clone()
        },
        records: records.into_iter().cloned().collect(),
    };
    Ok(match reference.mode {
        SweepMode::Binders => MergedReport::Dse(merged.into_dse_report()),
        SweepMode::UseCases => MergedReport::UseCases(merged.into_use_case_report()),
    })
}

/// The design points of the canonical sweep order that `spec` owns, with
/// their sequence numbers.
fn owned_configs(configs: Vec<SweepConfig>, spec: ShardSpec) -> Vec<(u64, SweepConfig)> {
    configs
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i as u64, c))
        .filter(|(seq, _)| spec.owns(*seq))
        .collect()
}

/// Errors seeding a sweep from partial shard files (`mamps dse --resume`).
#[derive(Debug, Clone, PartialEq)]
pub enum ResumeError {
    /// A resume file belongs to a different sweep than the one being run:
    /// its mode, [`SweepSignature`] or design-point count disagrees.
    SweepMismatch {
        /// Rendered identity of the sweep being run.
        expected: String,
        /// Rendered identity of the disagreeing resume file.
        found: String,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::SweepMismatch { expected, found } => write!(
                f,
                "resume file comes from a different sweep:\n  running: {expected}\n  \
                 resume:  {found}"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Collects the already-evaluated outcomes a resumed sweep can reuse:
/// every record of `resume` whose seq the current shard owns. The resume
/// shards' own shard specs are deliberately *not* matched against the
/// current one — resuming a `0/1` full sweep from the partials of a
/// crashed 4-way sharded run (or vice versa) is valid, because records
/// carry their canonical seq and outcomes are deterministic.
pub(crate) fn seed_outcomes(
    expected: &ShardHeader,
    resume: &[DseShard],
) -> Result<std::collections::BTreeMap<u64, ShardOutcome>, ResumeError> {
    let mut seeded = std::collections::BTreeMap::new();
    for s in resume {
        let h = &s.header;
        if h.mode != expected.mode
            || h.signature != expected.signature
            || h.total_configs != expected.total_configs
        {
            return Err(ResumeError::SweepMismatch {
                expected: header_identity(expected),
                found: header_identity(h),
            });
        }
        for r in &s.records {
            if expected.shard.owns(r.seq) {
                seeded.insert(r.seq, r.outcome.clone());
            }
        }
    }
    Ok(seeded)
}

/// Builds the header every run of a given sweep builds — the one place
/// the sweep's identity is assembled, shared by the in-process
/// `explore_*` entry points and the [`crate::serve`] coordinator (whose
/// byte-identical-report contract depends on constructing the very same
/// header as a single-process run).
pub(crate) fn sweep_header(
    mode: SweepMode,
    apps: Vec<String>,
    tile_counts: &[usize],
    include_noc: bool,
    strategies: &[StrategyHandle],
    spec: ShardSpec,
    total_configs: u64,
) -> ShardHeader {
    ShardHeader {
        mode,
        shard: spec,
        total_configs,
        signature: SweepSignature {
            apps,
            tile_counts: tile_counts.to_vec(),
            include_noc,
            binders: strategies.iter().map(|s| s.name().to_string()).collect(),
        },
    }
}

/// Merges seeded outcomes with freshly evaluated records back into
/// canonical seq order.
fn merge_seeded(
    mut seeded: std::collections::BTreeMap<u64, ShardOutcome>,
    fresh: Vec<ShardRecord>,
) -> Vec<ShardRecord> {
    let mut records = fresh;
    records.extend(
        std::mem::take(&mut seeded)
            .into_iter()
            .map(|(seq, outcome)| ShardRecord { seq, outcome }),
    );
    records.sort_by_key(|r| r.seq);
    records
}

/// Evaluates the single-application design points owned by
/// [`FlowOptions::shard`] (the whole sweep when unset). Points are
/// evaluated concurrently when `opts.jobs > 1` — scheduled dynamically by
/// [`dynamic_map`], since design-point cost is heavily skewed — with
/// results identical to a sequential run.
pub fn explore_shard(
    app: &ApplicationModel,
    tile_counts: &[usize],
    include_noc: bool,
    opts: &FlowOptions,
) -> DseShard {
    explore_shard_with_resume(app, tile_counts, include_noc, opts, &[])
        .expect("an empty resume set cannot mismatch")
}

/// [`explore_shard`], seeded with the records of partial shard files from
/// a previous (crashed or killed) run of the *same* sweep: seeded design
/// points are not re-evaluated, so a resumed sweep finishes the remaining
/// work only. The outcomes are deterministic, so the resulting shard — and
/// any report merged from it — is identical to a cold run's.
///
/// # Errors
///
/// [`ResumeError`] when a resume shard belongs to a different sweep.
pub fn explore_shard_with_resume(
    app: &ApplicationModel,
    tile_counts: &[usize],
    include_noc: bool,
    opts: &FlowOptions,
    resume: &[DseShard],
) -> Result<DseShard, ResumeError> {
    let strategies = sweep_strategies(opts);
    let configs = sweep_configs(&strategies, tile_counts, include_noc);
    let spec = opts.shard.unwrap_or_else(ShardSpec::full);
    let header = sweep_header(
        SweepMode::Binders,
        vec![app.graph().name().to_string()],
        tile_counts,
        include_noc,
        &strategies,
        spec,
        configs.len() as u64,
    );
    let seeded = seed_outcomes(&header, resume)?;
    let todo: Vec<(u64, SweepConfig)> = owned_configs(configs, spec)
        .into_iter()
        .filter(|(seq, _)| !seeded.contains_key(seq))
        .collect();
    let fresh = dynamic_map(opts.jobs, &todo, |_, (seq, config)| ShardRecord {
        seq: *seq,
        outcome: match evaluate_dse_config(app, config, opts) {
            Ok(p) => ShardOutcome::Point(p),
            Err(s) => ShardOutcome::Skipped(s),
        },
    });
    Ok(DseShard {
        header,
        records: merge_seeded(seeded, fresh),
    })
}

/// Evaluates the use-case design points owned by [`FlowOptions::shard`]
/// (the whole sweep when unset).
pub fn explore_use_case_shard(
    apps: &[ApplicationModel],
    tile_counts: &[usize],
    include_noc: bool,
    opts: &FlowOptions,
) -> DseShard {
    explore_use_case_shard_with_resume(apps, tile_counts, include_noc, opts, &[])
        .expect("an empty resume set cannot mismatch")
}

/// [`explore_use_case_shard`], seeded like [`explore_shard_with_resume`].
///
/// # Errors
///
/// [`ResumeError`] when a resume shard belongs to a different sweep.
pub fn explore_use_case_shard_with_resume(
    apps: &[ApplicationModel],
    tile_counts: &[usize],
    include_noc: bool,
    opts: &FlowOptions,
    resume: &[DseShard],
) -> Result<DseShard, ResumeError> {
    let strategies = sweep_strategies(opts);
    let configs = sweep_configs(&strategies, tile_counts, include_noc);
    let spec = opts.shard.unwrap_or_else(ShardSpec::full);
    let header = sweep_header(
        SweepMode::UseCases,
        apps.iter().map(|a| a.graph().name().to_string()).collect(),
        tile_counts,
        include_noc,
        &strategies,
        spec,
        configs.len() as u64,
    );
    let seeded = seed_outcomes(&header, resume)?;
    let todo: Vec<(u64, SweepConfig)> = owned_configs(configs, spec)
        .into_iter()
        .filter(|(seq, _)| !seeded.contains_key(seq))
        .collect();
    let ctx = use_case_context(apps);
    let fresh = dynamic_map(opts.jobs, &todo, |_, (seq, config)| ShardRecord {
        seq: *seq,
        outcome: ShardOutcome::UseCase(evaluate_use_case_config(apps, &ctx, config, opts)),
    });
    Ok(DseShard {
        header,
        records: merge_seeded(seeded, fresh),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::tests::{app, named_app};
    use crate::dse::{explore_report, explore_use_cases};

    fn sharded(app: &ApplicationModel, n: u32, opts: &FlowOptions) -> Vec<DseShard> {
        (0..n)
            .map(|i| {
                let mut o = opts.clone();
                o.shard = Some(ShardSpec::new(i, n).unwrap());
                explore_shard(app, &[0, 1, 2, 3], true, &o)
            })
            .collect()
    }

    #[test]
    fn shard_spec_parses_and_validates() {
        assert_eq!(
            "0/3".parse::<ShardSpec>().unwrap(),
            ShardSpec { index: 0, count: 3 }
        );
        assert_eq!("2/3".parse::<ShardSpec>().unwrap().to_string(), "2/3");
        assert!("3/3".parse::<ShardSpec>().is_err());
        assert!("1".parse::<ShardSpec>().is_err());
        assert!("a/b".parse::<ShardSpec>().is_err());
        assert!("0/0".parse::<ShardSpec>().is_err());
        assert!(ShardSpec::new(5, 2).is_err());
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        for count in 1..8u32 {
            let mut owners = vec![0u32; 23];
            for i in 0..count {
                let spec = ShardSpec::new(i, count).unwrap();
                for (seq, n) in owners.iter_mut().enumerate() {
                    if spec.owns(seq as u64) {
                        *n += 1;
                    }
                }
            }
            assert!(owners.iter().all(|&n| n == 1), "count={count}: {owners:?}");
        }
    }

    #[test]
    fn merged_shards_equal_unsharded_report() {
        let a = app();
        let opts = FlowOptions {
            binders: vec![
                mamps_mapping::strategy::by_name("greedy").unwrap(),
                mamps_mapping::strategy::by_name("spiral").unwrap(),
            ],
            ..FlowOptions::default()
        };
        let full = explore_report(&a, &[0, 1, 2, 3], true, &opts);
        for n in [1u32, 2, 3, 5] {
            let shards = sharded(&a, n, &opts);
            match merge_reports(&shards).unwrap() {
                MergedReport::Dse(merged) => assert_eq!(merged, full, "n={n}"),
                other => panic!("expected a DSE report, got {other:?}"),
            }
        }
    }

    #[test]
    fn merged_use_case_shards_equal_unsharded_report() {
        let apps = vec![named_app("sa", &[70, 70]), named_app("sb", &[35, 35])];
        let opts = FlowOptions::default();
        let full = explore_use_cases(&apps, &[1, 2, 3], true, &opts);
        let shards: Vec<DseShard> = (0..3)
            .map(|i| {
                let mut o = opts.clone();
                o.shard = Some(ShardSpec::new(i, 3).unwrap());
                explore_use_case_shard(&apps, &[1, 2, 3], true, &o)
            })
            .collect();
        match merge_reports(&shards).unwrap() {
            MergedReport::UseCases(merged) => assert_eq!(merged, full),
            other => panic!("expected a use-case report, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_round_trips_shards_exactly() {
        let a = app();
        for shard in sharded(&a, 2, &FlowOptions::default()) {
            let text = shard.to_jsonl();
            let back = DseShard::from_jsonl(&text).unwrap();
            assert_eq!(back, shard);
            // Canonical bytes: re-serializing is a fixpoint.
            assert_eq!(back.to_jsonl(), text);
        }
    }

    #[test]
    fn merge_rejects_missing_and_duplicate_shards() {
        let a = app();
        let shards = sharded(&a, 3, &FlowOptions::default());
        assert!(matches!(
            merge_reports(&shards[..2]),
            Err(MergeError::MissingShards { ref missing, count: 3 }) if missing == &vec![2]
        ));
        let dup = vec![shards[0].clone(), shards[1].clone(), shards[1].clone()];
        assert!(matches!(
            merge_reports(&dup),
            Err(MergeError::DuplicateShard { index: 1 })
        ));
        assert_eq!(merge_reports(&[]), Err(MergeError::NoShards));
    }

    #[test]
    fn merge_rejects_mismatched_sweeps() {
        let a = app();
        let o0 = FlowOptions {
            shard: Some(ShardSpec::new(0, 2).unwrap()),
            ..FlowOptions::default()
        };
        let o1 = FlowOptions {
            shard: Some(ShardSpec::new(1, 2).unwrap()),
            ..o0.clone()
        };
        let s0 = explore_shard(&a, &[1, 2], true, &o0);
        let s1 = explore_shard(&a, &[1, 2, 3], true, &o1); // different tiles
        assert!(matches!(
            merge_reports(&[s0, s1]),
            Err(MergeError::SweepMismatch { .. })
        ));
    }

    #[test]
    fn merge_rejects_truncated_shards() {
        let a = app();
        let mut shards = sharded(&a, 2, &FlowOptions::default());
        shards[1].records.pop();
        assert!(matches!(
            merge_reports(&shards),
            Err(MergeError::IncompleteSweep { .. })
        ));
    }

    #[test]
    fn corrupt_shard_specs_are_errors_not_panics() {
        // count 0 would divide by zero in `owns`; index >= count would
        // index out of bounds in `merge_reports`. Both must surface as
        // structured errors from from_jsonl.
        let a = app();
        let good = {
            let o = FlowOptions {
                shard: Some(ShardSpec::new(0, 2).unwrap()),
                ..FlowOptions::default()
            };
            explore_shard(&a, &[1], false, &o)
        };
        let zero = good
            .to_jsonl()
            .replace("\"index\":0,\"count\":2", "\"index\":0,\"count\":0");
        assert!(matches!(
            DseShard::from_jsonl(&zero),
            Err(ShardFileError::InvalidShard { .. })
        ));
        let oob = good
            .to_jsonl()
            .replace("\"index\":0,\"count\":2", "\"index\":9,\"count\":2");
        assert!(matches!(
            DseShard::from_jsonl(&oob),
            Err(ShardFileError::InvalidShard { .. })
        ));
        // Directly-constructed invalid specs are caught by the merge too.
        let mut bad = good.clone();
        bad.header.shard = ShardSpec { index: 9, count: 2 };
        assert!(matches!(
            merge_reports(&[good, bad]),
            Err(MergeError::SweepMismatch { .. })
        ));
        assert!(!ShardSpec { index: 0, count: 0 }.owns(0));
    }

    #[test]
    fn resumed_sweep_is_identical_to_a_cold_run() {
        let a = app();
        let opts = FlowOptions::default();
        let cold = explore_shard(&a, &[0, 1, 2, 3], true, &opts);
        // Simulate a crash after an arbitrary prefix of the records.
        for keep in [0, 1, cold.records.len() / 2, cold.records.len()] {
            let mut partial = cold.clone();
            partial.records.truncate(keep);
            let resumed =
                explore_shard_with_resume(&a, &[0, 1, 2, 3], true, &opts, &[partial]).unwrap();
            assert_eq!(resumed, cold, "keep={keep}");
            assert_eq!(resumed.to_jsonl(), cold.to_jsonl(), "keep={keep}");
        }
    }

    #[test]
    fn resume_reuses_partials_from_a_differently_sharded_run() {
        // A crashed 3-way sharded sweep's partials seed an unsharded
        // resume: every record carries its canonical seq, so shard
        // geometry does not matter.
        let a = app();
        let opts = FlowOptions::default();
        let cold = explore_shard(&a, &[0, 1, 2, 3], true, &opts);
        let partials = sharded(&a, 3, &opts);
        let resumed = explore_shard_with_resume(&a, &[0, 1, 2, 3], true, &opts, &partials).unwrap();
        assert_eq!(resumed, cold);
    }

    #[test]
    fn resume_rejects_foreign_sweeps() {
        let a = app();
        let opts = FlowOptions::default();
        let other = explore_shard(&a, &[1, 2], false, &opts); // different sweep
        assert!(matches!(
            explore_shard_with_resume(&a, &[0, 1, 2, 3], true, &opts, &[other]),
            Err(ResumeError::SweepMismatch { .. })
        ));
    }

    #[test]
    fn resumed_use_case_sweep_is_identical_to_a_cold_run() {
        let apps = vec![named_app("ra", &[70, 70]), named_app("rb", &[35, 35])];
        let opts = FlowOptions::default();
        let cold = explore_use_case_shard(&apps, &[1, 2], true, &opts);
        let mut partial = cold.clone();
        partial.records.truncate(cold.records.len() / 2);
        let resumed =
            explore_use_case_shard_with_resume(&apps, &[1, 2], true, &opts, &[partial]).unwrap();
        assert_eq!(resumed, cold);
    }

    #[test]
    fn lossy_loader_drops_only_a_torn_trailing_line() {
        let a = app();
        let shard = explore_shard(&a, &[1, 2], false, &FlowOptions::default());
        let text = shard.to_jsonl();

        // Intact file: nothing dropped.
        let (back, dropped) = DseShard::from_jsonl_lossy(&text).unwrap();
        assert_eq!(back, shard);
        assert!(!dropped);

        // Torn mid-write: the final line is half a record.
        let torn = &text[..text.len() - text.lines().last().unwrap().len() / 2 - 1];
        let (back, dropped) = DseShard::from_jsonl_lossy(torn).unwrap();
        assert!(dropped);
        assert_eq!(back.records.len(), shard.records.len() - 1);
        assert_eq!(&back.records[..], &shard.records[..shard.records.len() - 1]);

        // Corruption before intact lines is NOT a crash artefact.
        let mut lines: Vec<&str> = text.lines().collect();
        let garbage = "{\"Record\":garbage}";
        lines.insert(1, garbage);
        let corrupt = lines.join("\n");
        assert!(matches!(
            DseShard::from_jsonl_lossy(&corrupt),
            Err(ShardFileError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn foreign_records_are_rejected_at_parse_time() {
        let a = app();
        let shards = sharded(&a, 2, &FlowOptions::default());
        // Concatenating two different shards' files corrupts ownership.
        let concatenated = format!("{}{}", shards[0].to_jsonl(), shards[1].to_jsonl());
        assert!(DseShard::from_jsonl(&concatenated).is_err());
        assert!(matches!(
            DseShard::from_jsonl(""),
            Err(ShardFileError::MissingHeader)
        ));
        assert!(matches!(
            DseShard::from_jsonl("{\"nonsense\":1}\n"),
            Err(ShardFileError::Parse { line: 1, .. })
        ));
    }
}
