//! Range leasing and incremental merging for the DSE coordinator service.
//!
//! The [`crate::serve`] coordinator splits a sweep's canonical seq space
//! into contiguous ranges and hands them out to worker processes as
//! *leases*. Workers crash, hang and disconnect; the two types here keep
//! the sweep correct anyway:
//!
//! * [`LeaseTable`] — which ranges are pending, leased (to whom, until
//!   when) or done. Leases expire on a virtual-millisecond clock (the
//!   caller supplies `now`, so tests drive time deterministically), and a
//!   disconnected owner's leases are released at once. Completion is
//!   idempotent: a stale lease finishing after its range was reassigned —
//!   and the reassigned lease finishing too — both just confirm the range.
//! * [`MergeLedger`] — the incremental, seq-keyed merge of completed
//!   records. At-least-once execution means the same seq can arrive more
//!   than once (a timed-out worker that was not actually dead, a range
//!   completed by both the original and the reassigned lease); the ledger
//!   keeps the first outcome per seq, which is safe because design-point
//!   outcomes are deterministic. Once complete, [`MergeLedger::to_shard`]
//!   assembles the exact full-sweep [`DseShard`] a single-process run
//!   would have produced — rendering it is byte-identical by
//!   construction.
//!
//! Both types are pure state machines (no I/O, no wall clock), which is
//! what `tests/serve_protocol.rs` leans on: arbitrary join/leave/timeout
//! event sequences must keep leased ranges disjoint and eventually cover
//! every seq exactly once.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dse::shard::{DseShard, ShardHeader, ShardOutcome, ShardRecord, SweepMode};

/// A contiguous run of canonical sweep sequence numbers: `start`
/// inclusive, `end` exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqRange {
    /// First seq of the range.
    pub start: u64,
    /// One past the last seq of the range.
    pub end: u64,
}

impl SeqRange {
    /// The seqs of the range.
    pub fn seqs(&self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }

    /// Number of seqs in the range.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True when the range contains no seqs.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl fmt::Display for SeqRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end)
    }
}

/// State of one work item (range) of a [`LeaseTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemState {
    /// Not yet handed out (or returned after an expiry / disconnect).
    Pending,
    /// Held by a worker.
    Leased {
        /// The lease id returned by [`LeaseTable::acquire`].
        lease: u64,
        /// The owning worker's connection id.
        owner: u64,
        /// Virtual-millisecond deadline; past it the lease is expirable.
        deadline: u64,
    },
    /// Completed (result recorded by the ledger).
    Done,
}

struct WorkItem {
    range: SeqRange,
    state: ItemState,
}

/// Leases of one sweep's ranges. See the module docs for the lifecycle.
pub struct LeaseTable {
    items: Vec<WorkItem>,
    /// Lease id → item index, for completion by lease id (stale ids
    /// included: they still name the item they leased).
    by_lease: BTreeMap<u64, usize>,
    next_lease: u64,
    /// Ranges handed out more than once (expiry or disconnect), for stats.
    reassigned: u64,
}

impl LeaseTable {
    /// Partitions `0..total` into ranges of at most `chunk` seqs
    /// (`chunk` is clamped to at least 1), skipping any seq for which
    /// `already_done` returns true — those were seeded from a previous
    /// run and never need a lease. Seeded seqs split ranges, so a lease
    /// never covers work that is already done.
    pub fn new(total: u64, chunk: u64, already_done: impl Fn(u64) -> bool) -> LeaseTable {
        let chunk = chunk.max(1);
        let mut items = Vec::new();
        let mut start = None;
        for seq in 0..total {
            if already_done(seq) {
                if let Some(s) = start.take() {
                    items.push(WorkItem {
                        range: SeqRange { start: s, end: seq },
                        state: ItemState::Pending,
                    });
                }
                continue;
            }
            match start {
                None => start = Some(seq),
                Some(s) if seq - s >= chunk => {
                    items.push(WorkItem {
                        range: SeqRange { start: s, end: seq },
                        state: ItemState::Pending,
                    });
                    start = Some(seq);
                }
                Some(_) => {}
            }
        }
        if let Some(s) = start {
            items.push(WorkItem {
                range: SeqRange {
                    start: s,
                    end: total,
                },
                state: ItemState::Pending,
            });
        }
        LeaseTable {
            items,
            by_lease: BTreeMap::new(),
            next_lease: 1,
            reassigned: 0,
        }
    }

    /// Leases the first pending range to `owner` until `now + timeout`
    /// virtual milliseconds. Returns the lease id and the range, or
    /// `None` when nothing is pending (everything is leased or done).
    pub fn acquire(&mut self, owner: u64, now: u64, timeout: u64) -> Option<(u64, SeqRange)> {
        let idx = self
            .items
            .iter()
            .position(|i| i.state == ItemState::Pending)?;
        let lease = self.next_lease;
        self.next_lease += 1;
        self.items[idx].state = ItemState::Leased {
            lease,
            owner,
            deadline: now.saturating_add(timeout),
        };
        self.by_lease.insert(lease, idx);
        Some((lease, self.items[idx].range))
    }

    /// Returns every lease whose deadline lies strictly before `now` to
    /// the pending pool and reports the reverted ranges. The stale lease
    /// ids stay valid for [`LeaseTable::complete`]: if the slow worker
    /// finishes after all, its result still lands (idempotently).
    pub fn expire(&mut self, now: u64) -> Vec<SeqRange> {
        let mut reverted = Vec::new();
        for item in &mut self.items {
            if let ItemState::Leased { deadline, .. } = item.state {
                if deadline < now {
                    item.state = ItemState::Pending;
                    self.reassigned += 1;
                    reverted.push(item.range);
                }
            }
        }
        reverted
    }

    /// Releases every lease held by `owner` (worker disconnect) and
    /// reports the reverted ranges.
    pub fn release_owner(&mut self, owner: u64) -> Vec<SeqRange> {
        let mut reverted = Vec::new();
        for item in &mut self.items {
            if matches!(item.state, ItemState::Leased { owner: o, .. } if o == owner) {
                item.state = ItemState::Pending;
                self.reassigned += 1;
                reverted.push(item.range);
            }
        }
        reverted
    }

    /// Marks the range leased as `lease` done and returns it. Idempotent
    /// and stale-tolerant: completing an already-done range (the original
    /// worker of a reassigned lease finishing late, or a retransmit)
    /// returns the range again without changing state; an unknown lease
    /// id returns `None`.
    pub fn complete(&mut self, lease: u64) -> Option<SeqRange> {
        let idx = *self.by_lease.get(&lease)?;
        self.items[idx].state = ItemState::Done;
        Some(self.items[idx].range)
    }

    /// True when every range is done.
    pub fn is_done(&self) -> bool {
        self.items.iter().all(|i| i.state == ItemState::Done)
    }

    /// Ranges currently pending (neither leased nor done).
    pub fn pending(&self) -> usize {
        self.items
            .iter()
            .filter(|i| i.state == ItemState::Pending)
            .count()
    }

    /// Ranges currently out on a live lease.
    pub fn leased(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i.state, ItemState::Leased { .. }))
            .count()
    }

    /// How often a range went back to pending after an expiry or a
    /// disconnect.
    pub fn reassigned(&self) -> u64 {
        self.reassigned
    }

    /// Every item's range and current state, for invariant checks and
    /// coordinator logging.
    pub fn items(&self) -> impl Iterator<Item = (SeqRange, ItemState)> + '_ {
        self.items.iter().map(|i| (i.range, i.state))
    }
}

/// Incremental, seq-keyed merge of completed design-point records. See
/// the module docs: first outcome per seq wins, duplicates are counted
/// and dropped, and the completed ledger reassembles the exact
/// single-process shard.
pub struct MergeLedger {
    header: ShardHeader,
    outcomes: BTreeMap<u64, ShardOutcome>,
    duplicates: u64,
}

impl MergeLedger {
    /// An empty ledger for the sweep identified by `header` (the
    /// coordinator always merges toward the full, unsharded shard).
    pub fn new(header: ShardHeader) -> MergeLedger {
        MergeLedger {
            header,
            outcomes: BTreeMap::new(),
            duplicates: 0,
        }
    }

    /// The sweep this ledger merges.
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// Records one completed design point. Returns `true` when the seq
    /// was fresh, `false` for a duplicate (which is dropped: outcomes are
    /// deterministic, so the first one is as good as any).
    pub fn insert(&mut self, record: ShardRecord) -> bool {
        use std::collections::btree_map::Entry;
        match self.outcomes.entry(record.seq) {
            Entry::Vacant(v) => {
                v.insert(record.outcome);
                true
            }
            Entry::Occupied(_) => {
                self.duplicates += 1;
                false
            }
        }
    }

    /// Seqs recorded so far.
    pub fn len(&self) -> u64 {
        self.outcomes.len() as u64
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Duplicate completions dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// True when `seq` has already been recorded.
    pub fn contains(&self, seq: u64) -> bool {
        self.outcomes.contains_key(&seq)
    }

    /// True when every design point of the sweep is recorded.
    pub fn is_complete(&self) -> bool {
        self.len() == self.header.total_configs
    }

    /// The records in canonical seq order.
    pub fn records(&self) -> Vec<ShardRecord> {
        self.outcomes
            .iter()
            .map(|(&seq, outcome)| ShardRecord {
                seq,
                outcome: outcome.clone(),
            })
            .collect()
    }

    /// Assembles the (possibly still partial) shard: the header plus the
    /// records so far in canonical order. For a complete ledger this is
    /// exactly the shard a single-process `explore_shard` run produces,
    /// so its JSONL bytes and rendered report match byte for byte.
    pub fn to_shard(&self) -> DseShard {
        DseShard {
            header: self.header.clone(),
            records: self.records(),
        }
    }

    /// Renders the completed sweep exactly like `mamps dse` renders it.
    pub fn render(&self) -> String {
        match self.header.mode {
            SweepMode::Binders => {
                crate::report::render_dse_report(&self.to_shard().into_dse_report())
            }
            SweepMode::UseCases => {
                crate::report::render_use_case_report(&self.to_shard().into_use_case_report())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::shard::{ShardSpec, SweepSignature};
    use crate::dse::SkippedPoint;

    fn ranges(table: &LeaseTable) -> Vec<(SeqRange, ItemState)> {
        table.items().collect()
    }

    #[test]
    fn table_chunks_cover_the_seq_space_without_overlap() {
        for total in [0u64, 1, 5, 8, 23] {
            for chunk in [1u64, 2, 4, 7, 100] {
                let table = LeaseTable::new(total, chunk, |_| false);
                let mut covered = vec![false; total as usize];
                for (range, state) in ranges(&table) {
                    assert_eq!(state, ItemState::Pending);
                    assert!(range.len() <= chunk);
                    assert!(!range.is_empty());
                    for seq in range.seqs() {
                        assert!(!covered[seq as usize], "seq {seq} covered twice");
                        covered[seq as usize] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "total={total} chunk={chunk}");
            }
        }
    }

    #[test]
    fn seeded_seqs_are_never_leased() {
        let table = LeaseTable::new(10, 4, |seq| seq % 3 == 0);
        let leased: Vec<u64> = ranges(&table).iter().flat_map(|(r, _)| r.seqs()).collect();
        assert_eq!(leased, vec![1, 2, 4, 5, 7, 8]);
        // A fully-seeded sweep needs no leases at all.
        assert!(LeaseTable::new(6, 2, |_| true).is_done());
    }

    #[test]
    fn expiry_returns_ranges_and_stale_completion_is_idempotent() {
        let mut table = LeaseTable::new(4, 2, |_| false);
        let (stale, r0) = table.acquire(1, 0, 100).unwrap();
        assert_eq!(r0, SeqRange { start: 0, end: 2 });
        // Not yet expired at the deadline itself.
        assert!(table.expire(100).is_empty());
        assert_eq!(table.expire(101), vec![r0]);
        assert_eq!(table.reassigned(), 1);

        // Reassigned to another worker, completed by it…
        let (fresh, r0b) = table.acquire(2, 200, 100).unwrap();
        assert_eq!(r0b, r0);
        assert_eq!(table.complete(fresh), Some(r0));
        // …and the stale lease completing late changes nothing.
        assert_eq!(table.complete(stale), Some(r0));
        assert_eq!(table.complete(stale), Some(r0));
        assert_eq!(table.complete(9999), None);

        let (l1, r1) = table.acquire(1, 300, 100).unwrap();
        assert_eq!(r1, SeqRange { start: 2, end: 4 });
        assert!(
            table.acquire(1, 300, 100).is_none(),
            "nothing left to lease"
        );
        table.complete(l1);
        assert!(table.is_done());
    }

    #[test]
    fn disconnect_releases_only_that_owner() {
        let mut table = LeaseTable::new(6, 2, |_| false);
        let (_, ra) = table.acquire(1, 0, 1000).unwrap();
        let (lb, rb) = table.acquire(2, 0, 1000).unwrap();
        let (_, rc) = table.acquire(1, 0, 1000).unwrap();
        assert_eq!(table.release_owner(1), vec![ra, rc]);
        assert_eq!(table.pending(), 2);
        assert_eq!(table.leased(), 1);
        assert_eq!(table.complete(lb), Some(rb));
        assert_eq!(table.release_owner(2), Vec::new());
    }

    fn header(total: u64) -> ShardHeader {
        ShardHeader {
            mode: SweepMode::Binders,
            shard: ShardSpec::full(),
            total_configs: total,
            signature: SweepSignature {
                apps: vec!["a".into()],
                tile_counts: vec![1, 2],
                include_noc: false,
                binders: vec!["greedy".into()],
            },
        }
    }

    fn record(seq: u64) -> ShardRecord {
        ShardRecord {
            seq,
            outcome: ShardOutcome::Skipped(SkippedPoint {
                tiles: seq as usize,
                interconnect: "fsl",
                strategy: "greedy",
                reason: "test".into(),
            }),
        }
    }

    #[test]
    fn ledger_dedups_by_seq_and_completes() {
        let mut ledger = MergeLedger::new(header(3));
        assert!(ledger.insert(record(1)));
        assert!(ledger.insert(record(0)));
        assert!(!ledger.insert(record(1)), "duplicate seq must be dropped");
        assert_eq!((ledger.len(), ledger.duplicates()), (2, 1));
        assert!(!ledger.is_complete());
        assert!(ledger.insert(record(2)));
        assert!(ledger.is_complete());
        // Records come back in canonical seq order regardless of arrival.
        let seqs: Vec<u64> = ledger.to_shard().records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
