//! Design-space exploration (paper §7 lists improved automated DSE as
//! future work; this module provides the straightforward sweep the flow's
//! speed enables: "designers \[can\] perform a very fast design space
//! exploration").
//!
//! The sweep is three-dimensional: tile counts × interconnects × *binding
//! strategies* ([`mamps_mapping::strategy`]). Every design point records
//! which strategy produced it, so Pareto fronts can be read per strategy —
//! e.g. a `spiral` point that ties `greedy` throughput at fewer allocated
//! NoC wire-links. Design points are independent full flow runs, so
//! [`explore_report`] evaluates them concurrently via
//! [`crate::parallel::parallel_map`] when [`FlowOptions::jobs`] asks for
//! it; the result is point-for-point identical to the sequential sweep.
//! Infeasible points are not silently discarded: they come back as
//! [`SkippedPoint`]s naming the strategy and the failing flow step,
//! surfaced by `mamps dse` and [`crate::report::render_dse_report`].
//!
//! # Sharding a sweep across processes
//!
//! Beyond one host, the design-point space can be split across processes
//! or machines with [`shard`]: every result type serializes to JSON lines
//! (via the workspace's vendored value-based serde), a deterministic
//! [`shard::ShardSpec`] partitioner — threaded through
//! [`FlowOptions::shard`] — assigns each process a disjoint slice of the
//! sweep, and [`shard::merge_reports`] reassembles the partial results
//! into the very report an unsharded run would have produced, recomputing
//! the global Pareto front per strategy across shards. Merging is exact:
//! the merged report compares equal (and renders byte-for-byte identical)
//! to the unsharded sweep on the same inputs.
//!
//! ```
//! use mamps_core::dse::{explore_report, shard};
//! use mamps_core::flow::FlowOptions;
//! use mamps_sdf::graph::SdfGraphBuilder;
//! use mamps_sdf::model::HomogeneousModelBuilder;
//!
//! let mut b = SdfGraphBuilder::new("doc");
//! let x = b.add_actor("x", 1);
//! let y = b.add_actor("y", 1);
//! b.add_channel("e", x, 1, y, 1);
//! let graph = b.build().unwrap();
//! let mut mb = HomogeneousModelBuilder::new("microblaze");
//! mb.actor("x", 40, 2048, 256).actor("y", 70, 2048, 256);
//! let app = mb.finish(graph, None).unwrap();
//!
//! // A 2-point sweep (tile counts 1 and 2, FSL only), unsharded...
//! let opts = FlowOptions::default();
//! let full = explore_report(&app, &[1, 2], false, &opts);
//!
//! // ...and the same sweep split across two shards, then merged. Each
//! // shard evaluates only the design points its `ShardSpec` owns, and
//! // could run in a different process (`mamps dse --shard i/n`), with
//! // the JSON-lines files carrying the results in between.
//! let shards: Vec<_> = (0..2)
//!     .map(|i| {
//!         let mut o = opts.clone();
//!         o.shard = Some(shard::ShardSpec::new(i, 2).unwrap());
//!         let s = shard::explore_shard(&app, &[1, 2], false, &o);
//!         shard::DseShard::from_jsonl(&s.to_jsonl()).unwrap() // round-trip
//!     })
//!     .collect();
//! match shard::merge_reports(&shards).unwrap() {
//!     shard::MergedReport::Dse(merged) => assert_eq!(merged, full),
//!     other => panic!("binder sweeps merge into a DSE report, got {other:?}"),
//! }
//! ```

pub mod cache;
pub mod lease;
pub mod shard;

use mamps_mapping::StrategyHandle;
use mamps_platform::area::platform_area;
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::model::ApplicationModel;
use serde::{Deserialize, Serialize};

use crate::flow::{run_flow, FlowOptions};

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// Tile count.
    pub tiles: usize,
    /// Interconnect kind (`"fsl"` / `"noc"`).
    pub interconnect: &'static str,
    /// Binding strategy that produced the mapping.
    pub strategy: &'static str,
    /// Guaranteed throughput (iterations/cycle).
    pub guaranteed: f64,
    /// Total platform slices (area model).
    pub slices: u64,
    /// Allocated NoC wire-links (SDM wires × route hops; 0 on FSL).
    pub wire_units: u64,
    /// Work units (WCET × repetitions per iteration) placed on each tile
    /// by the binding — the load-balance picture of the design point.
    pub per_tile_load: Vec<u64>,
}

/// A design point the flow could not map, with the reason it failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedPoint {
    /// Tile count.
    pub tiles: usize,
    /// Interconnect kind (`"fsl"` / `"noc"`).
    pub interconnect: &'static str,
    /// Binding strategy that was attempted.
    pub strategy: &'static str,
    /// Rendered flow error (which step failed and why).
    pub reason: String,
}

/// Outcome of a design-space sweep: the feasible points plus every skipped
/// configuration with its reason. Each entry — kept or skipped — is
/// attributed to the binding strategy that produced it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DseReport {
    /// Feasible points, sorted by descending guaranteed throughput
    /// (ties: fewer slices, then fewer wire-links first).
    pub points: Vec<DsePoint>,
    /// Infeasible configurations in sweep order.
    pub skipped: Vec<SkippedPoint>,
}

/// One platform configuration of a sweep: tile count, interconnect kind
/// and its instantiation, and the binding strategy.
pub(crate) type SweepConfig = (usize, &'static str, Interconnect, StrategyHandle);

/// The strategies a sweep evaluates: [`FlowOptions::binders`], falling
/// back to the single configured `map.bind.strategy` when empty.
pub(crate) fn sweep_strategies(opts: &FlowOptions) -> Vec<StrategyHandle> {
    if opts.binders.is_empty() {
        vec![opts.map.bind.strategy.clone()]
    } else {
        opts.binders.clone()
    }
}

/// Enumerates the design-point space in its canonical order (strategy
/// outermost, then tile count, FSL before NoC). Sharding partitions this
/// sequence; its order is part of the shard-file contract.
pub(crate) fn sweep_configs(
    strategies: &[StrategyHandle],
    tile_counts: &[usize],
    include_noc: bool,
) -> Vec<SweepConfig> {
    let mut configs = Vec::new();
    for strategy in strategies {
        for &tiles in tile_counts {
            configs.push((tiles, "fsl", Interconnect::fsl(), strategy.clone()));
            if include_noc {
                configs.push((
                    tiles,
                    "noc",
                    Interconnect::noc_for_tiles(tiles),
                    strategy.clone(),
                ));
            }
        }
    }
    configs
}

/// Runs the full flow for one sweep configuration.
pub(crate) fn evaluate_dse_config(
    app: &ApplicationModel,
    (tiles, name, ic, strategy): &SweepConfig,
    opts: &FlowOptions,
) -> Result<DsePoint, SkippedPoint> {
    let mut point_opts = opts.clone();
    point_opts.map.bind.strategy = strategy.clone();
    match run_flow(app, *tiles, *ic, &point_opts) {
        Ok(flow) => {
            let cross_links = app
                .graph()
                .channels()
                .filter(|(_, c)| {
                    !c.is_self_edge() && flow.mapped.mapping.binding.crosses_tiles(c.src(), c.dst())
                })
                .count();
            let area = platform_area(&flow.arch, cross_links);
            let binding = &flow.mapped.mapping.binding;
            let mut per_tile_load = vec![0u64; flow.arch.tile_count()];
            if let Ok(q) = mamps_sdf::repetition::repetition_vector(app.graph()) {
                for (aid, _) in app.graph().actors() {
                    per_tile_load[binding.tile_of[aid.0].0] += binding.wcet_of[aid.0] * q.of(aid);
                }
            }
            Ok(DsePoint {
                tiles: *tiles,
                interconnect: name,
                strategy: flow.strategy(),
                guaranteed: flow.guaranteed_throughput(),
                slices: area.total.slices,
                wire_units: flow.mapped.mapping.noc_wire_units(app.graph(), &flow.arch),
                per_tile_load,
            })
        }
        Err(e) => Err(SkippedPoint {
            tiles: *tiles,
            interconnect: name,
            strategy: strategy.name(),
            reason: e.to_string(),
        }),
    }
}

/// The final ordering of a DSE report's feasible points.
pub(crate) fn sort_dse_points(points: &mut [DsePoint]) {
    points.sort_by(|a, b| {
        b.guaranteed
            .partial_cmp(&a.guaranteed)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.slices.cmp(&b.slices))
            .then(a.wire_units.cmp(&b.wire_units))
    });
}

/// Sweeps tile counts × interconnects × binding strategies, recording both
/// feasible and skipped design points. The strategies come from
/// [`FlowOptions::binders`]; when that is empty the single configured
/// `opts.map.bind.strategy` is swept. `opts.jobs > 1` evaluates
/// independent design points concurrently with identical results, and
/// [`FlowOptions::shard`] restricts the sweep to the design points that
/// shard owns (merge the shards back with [`shard::merge_reports`]).
pub fn explore_report(
    app: &ApplicationModel,
    tile_counts: &[usize],
    include_noc: bool,
    opts: &FlowOptions,
) -> DseReport {
    shard::explore_shard(app, tile_counts, include_noc, opts).into_dse_report()
}

// ---------------------------------------------------------------------------
// Use-case sweeps
// ---------------------------------------------------------------------------

/// One evaluated use-case design point: which applications of the
/// use-case fit on this platform configuration, and with what guarantees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UseCasePoint {
    /// Tile count.
    pub tiles: usize,
    /// Interconnect kind (`"fsl"` / `"noc"`).
    pub interconnect: &'static str,
    /// Binding strategy used by the admission loop.
    pub strategy: &'static str,
    /// Names of the admitted applications, in admission order.
    pub admitted: Vec<String>,
    /// Rejected applications with their structured reasons, in admission
    /// order.
    pub rejected: Vec<(String, String)>,
    /// The lowest shared guarantee among the admitted applications
    /// (iterations/cycle; 0 when nothing was admitted).
    pub min_guarantee: f64,
    /// Total platform slices (area model).
    pub slices: u64,
}

/// Outcome of a use-case sweep over tile counts × interconnects ×
/// binding strategies.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UseCaseDseReport {
    /// Points sorted by admitted count (descending), then lowest shared
    /// guarantee (descending), then slices (ascending).
    pub points: Vec<UseCasePoint>,
}

/// A use-case prepared for per-configuration evaluation: either the
/// validated [`UseCase`](mamps_mapping::multi::UseCase), or — when the
/// application list itself is invalid (empty, duplicate names) — the
/// rejection every configuration reports.
pub(crate) enum UseCaseContext {
    Ready(mamps_mapping::multi::UseCase),
    Invalid(Vec<(String, String)>),
}

/// Builds (and validates) the use-case once, outside the per-point
/// fan-out; the use-case is configuration-independent.
pub(crate) fn use_case_context(apps: &[ApplicationModel]) -> UseCaseContext {
    match mamps_mapping::multi::UseCase::new(apps.to_vec()) {
        Ok(uc) => UseCaseContext::Ready(uc),
        Err(e) => UseCaseContext::Invalid(
            apps.iter()
                .map(|a| (a.graph().name().to_string(), e.to_string()))
                .collect(),
        ),
    }
}

/// Runs the admission loop for one sweep configuration.
pub(crate) fn evaluate_use_case_config(
    apps: &[ApplicationModel],
    ctx: &UseCaseContext,
    (tiles, name, ic, strategy): &SweepConfig,
    opts: &FlowOptions,
) -> UseCasePoint {
    use mamps_mapping::multi::map_use_case;
    use mamps_platform::arch::Architecture;

    let mut point = UseCasePoint {
        tiles: *tiles,
        interconnect: name,
        strategy: strategy.name(),
        admitted: Vec::new(),
        rejected: Vec::new(),
        min_guarantee: 0.0,
        slices: 0,
    };
    let uc = match ctx {
        UseCaseContext::Ready(uc) => uc,
        UseCaseContext::Invalid(reject_all) => {
            point.rejected = reject_all.clone();
            return point;
        }
    };
    let arch = match Architecture::homogeneous("auto", *tiles, *ic) {
        Ok(a) => a,
        Err(e) => {
            point.rejected = apps
                .iter()
                .map(|a| (a.graph().name().to_string(), format!("architecture: {e}")))
                .collect();
            return point;
        }
    };
    let mut map_opts = opts.map.clone();
    map_opts.bind.strategy = strategy.clone();
    let outcome = map_use_case(uc, &arch, &map_opts);
    point.admitted = outcome.admitted.iter().map(|a| a.name.clone()).collect();
    point.rejected = outcome
        .rejected
        .iter()
        .map(|r| (r.name.clone(), r.reason.to_string()))
        .collect();
    point.min_guarantee = outcome
        .admitted
        .iter()
        .map(|a| a.shared_guarantee.to_f64())
        .fold(f64::INFINITY, f64::min);
    if !point.min_guarantee.is_finite() {
        point.min_guarantee = 0.0;
    }
    let cross_links: usize = outcome
        .admitted
        .iter()
        .map(|a| {
            let g = uc.apps()[a.index].graph();
            g.channels()
                .filter(|(_, c)| {
                    !c.is_self_edge() && a.mapped.mapping.binding.crosses_tiles(c.src(), c.dst())
                })
                .count()
        })
        .sum();
    point.slices = platform_area(&arch, cross_links).total.slices;
    point
}

/// The final ordering of a use-case report's points.
pub(crate) fn sort_use_case_points(points: &mut [UseCasePoint]) {
    points.sort_by(|a, b| {
        b.admitted
            .len()
            .cmp(&a.admitted.len())
            .then(
                b.min_guarantee
                    .partial_cmp(&a.min_guarantee)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.slices.cmp(&b.slices))
            .then(a.tiles.cmp(&b.tiles))
    });
}

/// Sweeps platform configurations for a whole use-case: for every tile
/// count × interconnect × binding strategy, the admission loop
/// ([`mamps_mapping::multi::map_use_case`]) decides which subset of
/// `apps` fits with every per-application guarantee intact. Strategies
/// come from [`FlowOptions::binders`] (falling back to the configured
/// `map.bind.strategy`), `opts.jobs > 1` evaluates configurations
/// concurrently with identical results, and [`FlowOptions::shard`]
/// restricts the sweep to the configurations that shard owns.
pub fn explore_use_cases(
    apps: &[ApplicationModel],
    tile_counts: &[usize],
    include_noc: bool,
    opts: &FlowOptions,
) -> UseCaseDseReport {
    shard::explore_use_case_shard(apps, tile_counts, include_noc, opts).into_use_case_report()
}

/// The Pareto front of `points` over (throughput up, slices down).
///
/// Single sort by descending throughput plus a sweep with a running
/// slice minimum — O(n log n) instead of the all-pairs scan — with the
/// exact tie semantics of the quadratic definition: a point is dominated
/// iff some point has strictly higher throughput at no more slices, or at
/// least equal throughput with strictly fewer slices. Equal (throughput,
/// slices) duplicates are all kept, and the input order is preserved.
pub fn pareto_front(points: &[DsePoint]) -> Vec<DsePoint> {
    // NaN throughputs compare false against everything, so such points are
    // never dominated and dominate nothing: keep them out of the sweep
    // entirely. This also keeps the sort comparator a total order.
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| !points[i].guaranteed.is_nan())
        .collect();
    order.sort_by(|&a, &b| {
        points[b]
            .guaranteed
            .partial_cmp(&points[a].guaranteed)
            .expect("NaN throughputs were filtered out")
    });

    let mut dominated = vec![false; points.len()];
    // Minimum slices over every point with strictly higher throughput than
    // the group currently being swept.
    let mut min_higher = u64::MAX;
    let mut i = 0;
    while i < order.len() {
        let g = points[order[i]].guaranteed;
        // Gather the group of equal-throughput points and its slice minimum.
        let mut j = i;
        let mut min_group = u64::MAX;
        while j < order.len() && points[order[j]].guaranteed == g {
            min_group = min_group.min(points[order[j]].slices);
            j += 1;
        }
        for &idx in &order[i..j] {
            let s = points[idx].slices;
            if min_higher <= s || min_group < s {
                dominated[idx] = true;
            }
        }
        min_higher = min_higher.min(min_group);
        i = j;
    }

    points
        .iter()
        .enumerate()
        .filter(|&(idx, _)| !dominated[idx])
        .map(|(_, p)| p.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    pub(crate) fn app() -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("a");
        let ids: Vec<_> = (0..3).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..2 {
            b.add_channel_full(format!("e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for i in 0..3 {
            mb.actor(format!("a{i}"), 100, 2048, 256);
        }
        mb.finish(g, None).unwrap()
    }

    fn point(guaranteed: f64, slices: u64) -> DsePoint {
        DsePoint {
            tiles: 1,
            interconnect: "fsl",
            strategy: "greedy",
            guaranteed,
            slices,
            wire_units: 0,
            per_tile_load: Vec::new(),
        }
    }

    /// The original O(n²) definition, kept as the oracle for the sweep.
    fn pareto_front_naive(points: &[DsePoint]) -> Vec<DsePoint> {
        let mut front: Vec<DsePoint> = Vec::new();
        for p in points {
            let dominated = points.iter().any(|q| {
                (q.guaranteed > p.guaranteed && q.slices <= p.slices)
                    || (q.guaranteed >= p.guaranteed && q.slices < p.slices)
            });
            if !dominated {
                front.push(p.clone());
            }
        }
        front
    }

    #[test]
    fn exploration_returns_sorted_points() {
        let points = explore_report(&app(), &[1, 2, 3], true, &FlowOptions::default()).points;
        assert!(points.len() >= 4);
        for w in points.windows(2) {
            assert!(w[0].guaranteed >= w[1].guaranteed - 1e-15);
        }
        assert!(points.iter().all(|p| p.strategy == "greedy"));
    }

    #[test]
    fn points_record_per_tile_load() {
        let points = explore_report(&app(), &[2], false, &FlowOptions::default()).points;
        let p = &points[0];
        assert_eq!(p.per_tile_load.len(), 2);
        // Three unit-rate actors of 100 cycles each, split over two tiles.
        assert_eq!(p.per_tile_load.iter().sum::<u64>(), 300);
        assert!(p.per_tile_load.iter().all(|&l| l > 0));
    }

    pub(crate) fn named_app(name: &str, wcets: &[u64]) -> ApplicationModel {
        let mut b = SdfGraphBuilder::new(name);
        let ids: Vec<_> = (0..wcets.len())
            .map(|i| b.add_actor(format!("{name}{i}"), 1))
            .collect();
        for i in 0..wcets.len() - 1 {
            b.add_channel_full(format!("{name}e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &w) in wcets.iter().enumerate() {
            mb.actor(format!("{name}{i}"), w, 2048, 256);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn use_case_sweep_counts_admissions_per_config() {
        let apps = vec![named_app("ua", &[90, 90]), named_app("ub", &[40, 40])];
        let report = explore_use_cases(&apps, &[1, 2], false, &FlowOptions::default());
        assert_eq!(report.points.len(), 2);
        // Both configurations admit both unconstrained apps; sorting puts
        // the higher-guarantee (or cheaper) point first.
        for p in &report.points {
            assert_eq!(p.admitted.len(), 2, "{p:?}");
            assert!(p.min_guarantee > 0.0);
            assert!(p.slices > 0);
        }
        for w in report.points.windows(2) {
            assert!(w[0].admitted.len() >= w[1].admitted.len());
        }
    }

    #[test]
    fn use_case_sweep_records_structured_rejections() {
        use mamps_sdf::model::ThroughputConstraint;
        let mut b = SdfGraphBuilder::new("hungry");
        let x = b.add_actor("hx", 1);
        let y = b.add_actor("hy", 1);
        b.add_channel_full("he", x, 1, y, 1, 0, 16);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("hx", 800, 2048, 256).actor("hy", 800, 2048, 256);
        let hungry = mb
            .finish(
                g,
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 20,
                }),
            )
            .unwrap();
        let apps = vec![named_app("uc", &[60, 60]), hungry];
        let report = explore_use_cases(&apps, &[2], false, &FlowOptions::default());
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.admitted, vec!["uc".to_string()]);
        assert_eq!(p.rejected.len(), 1);
        assert_eq!(p.rejected[0].0, "hungry");
        assert!(p.rejected[0].1.contains("mapping failed"));
    }

    #[test]
    fn parallel_use_case_sweep_matches_sequential() {
        let apps = vec![named_app("pa", &[70, 70]), named_app("pb", &[35, 35])];
        let opts = FlowOptions {
            binders: vec![
                mamps_mapping::strategy::by_name("greedy").unwrap(),
                mamps_mapping::strategy::by_name("spiral").unwrap(),
            ],
            ..FlowOptions::default()
        };
        let seq = explore_use_cases(&apps, &[1, 2, 3], true, &opts);
        let par = explore_use_cases(&apps, &[1, 2, 3], true, &FlowOptions { jobs: 4, ..opts });
        assert_eq!(seq, par);
        // Both strategies appear in the sweep.
        for s in ["greedy", "spiral"] {
            assert!(seq.points.iter().any(|p| p.strategy == s));
        }
    }

    #[test]
    fn pareto_front_is_subset_and_nondominated() {
        let points = explore_report(&app(), &[1, 2, 3], true, &FlowOptions::default()).points;
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        assert!(front.len() <= points.len());
        for p in &front {
            for q in &points {
                assert!(
                    !(q.guaranteed > p.guaranteed && q.slices < p.slices),
                    "{p:?} dominated by {q:?}"
                );
            }
        }
    }

    #[test]
    fn more_tiles_cost_more_area() {
        let points = explore_report(&app(), &[1, 3], false, &FlowOptions::default()).points;
        let p1 = points.iter().find(|p| p.tiles == 1).unwrap();
        let p3 = points.iter().find(|p| p.tiles == 3).unwrap();
        assert!(p3.slices > p1.slices);
    }

    #[test]
    fn infeasible_points_are_recorded_with_reasons() {
        // 0 tiles cannot host any actor: the architecture step fails.
        let report = explore_report(&app(), &[0, 2], false, &FlowOptions::default());
        assert_eq!(report.skipped.len(), 1);
        let s = &report.skipped[0];
        assert_eq!((s.tiles, s.interconnect), (0, "fsl"));
        assert_eq!(s.strategy, "greedy");
        assert!(!s.reason.is_empty(), "reason must name the failing step");
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.points[0].tiles, 2);
    }

    #[test]
    fn strategy_sweep_attributes_every_point() {
        let opts = FlowOptions {
            binders: vec![
                mamps_mapping::strategy::by_name("greedy").unwrap(),
                mamps_mapping::strategy::by_name("spiral").unwrap(),
            ],
            ..FlowOptions::default()
        };
        // Tile count 0 fails for every strategy: skips are attributed too.
        let report = explore_report(&app(), &[0, 1, 2], true, &opts);
        for strategy in ["greedy", "spiral"] {
            let kept = report.points.iter().filter(|p| p.strategy == strategy);
            let skipped = report.skipped.iter().filter(|s| s.strategy == strategy);
            // 2 feasible tile counts x 2 interconnects, 1 infeasible x 2.
            assert_eq!(kept.count(), 4, "{strategy} points");
            assert_eq!(skipped.count(), 2, "{strategy} skips");
        }
    }

    #[test]
    fn parallel_explore_matches_sequential() {
        let a = app();
        let binders: Vec<_> = mamps_mapping::strategy::registry()
            .iter()
            .filter(|(n, _)| *n != "genetic") // keep the test fast
            .map(|(_, make)| make())
            .collect();
        let opts = FlowOptions {
            binders,
            ..FlowOptions::default()
        };
        let seq = explore_report(&a, &[0, 1, 2, 3], true, &opts);
        let par = explore_report(&a, &[0, 1, 2, 3], true, &FlowOptions { jobs: 4, ..opts });
        assert_eq!(seq.points, par.points, "points must match point-for-point");
        assert_eq!(seq.skipped, par.skipped);
    }

    #[test]
    fn pareto_sweep_matches_naive_on_random_inputs() {
        // Deterministic pseudo-random point clouds, including duplicates
        // and throughput ties.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [0usize, 1, 2, 7, 33, 100] {
            let points: Vec<DsePoint> = (0..n)
                // Coarse buckets force plenty of exact ties.
                .map(|_| point((next() % 7) as f64 * 1e-6, next() % 9))
                .collect();
            assert_eq!(
                pareto_front(&points),
                pareto_front_naive(&points),
                "sweep diverges from the quadratic oracle at n={n}"
            );
        }
    }

    #[test]
    fn pareto_ignores_nan_points_without_splitting_groups() {
        // A NaN point is never dominated and dominates nothing, and it must
        // not split an equal-throughput group when it sorts between its
        // members.
        let points = [point(1.0, 5), point(f64::NAN, 1), point(1.0, 5)];
        let front = pareto_front(&points);
        let naive = pareto_front_naive(&points);
        // NaN != NaN, so compare structure rather than the points directly.
        let shape = |f: &[DsePoint]| -> Vec<(u64, bool)> {
            f.iter()
                .map(|p| (p.slices, p.guaranteed.is_nan()))
                .collect()
        };
        assert_eq!(shape(&front), shape(&naive));
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn pareto_keeps_equal_duplicates() {
        let p = DsePoint {
            tiles: 2,
            ..point(1e-5, 100)
        };
        let front = pareto_front(&[p.clone(), p.clone()]);
        assert_eq!(front.len(), 2);
    }
}
