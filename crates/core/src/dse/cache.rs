//! On-disk layer of the global analysis cache: warm sweeps across
//! processes and shards.
//!
//! A [`GlobalAnalysisCache`]
//! memoizes throughput analyses within one process. This module persists
//! it under a directory (`mamps dse --cache-dir DIR`) so the next run —
//! the same process re-invoked, or the *other shards* of a split sweep —
//! starts warm:
//!
//! * **Format.** One JSON object per line
//!   ([`CacheEntry`], canonical bytes),
//!   seq-free: lines are keyed by the entry's graph fingerprint and
//!   options, so files can be concatenated, truncated or partially
//!   written without any ordering contract. Entries are exported sorted
//!   by key, so equal caches produce identical files.
//! * **Naming.** Each run writes `analysis-cache-<index>-of-<count>.jsonl`
//!   for its own [`ShardSpec`] — concurrent shard processes sharing one
//!   `--cache-dir` never write the same file — and loads *every*
//!   `*.jsonl` in the directory on startup, whichever shard produced it.
//! * **Robustness.** The cache is advisory: a line that fails to parse
//!   (torn tail of a killed run, foreign file) is skipped and counted,
//!   never an error — the worst case is re-analysing a design point.
//!   Files are written to a temporary name and renamed into place, so a
//!   reader never observes a half-written cache file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mamps_sdf::cache::{CacheEntry, GlobalAnalysisCache};
use mamps_sdf::passes::{PassCache, PassEntry};
use serde::Serialize;

use crate::dse::shard::ShardSpec;

/// What loading a cache directory found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheDirLoad {
    /// `*.jsonl` files read.
    pub files: usize,
    /// Entries imported into the in-memory cache (first occurrence of
    /// each key wins; later duplicates are not counted).
    pub imported: usize,
    /// Lines skipped because they did not parse as a cache entry.
    pub skipped_lines: usize,
}

impl std::fmt::Display for CacheDirLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries from {} file{}",
            self.imported,
            self.files,
            if self.files == 1 { "" } else { "s" }
        )?;
        if self.skipped_lines > 0 {
            write!(f, " ({} unparseable lines skipped)", self.skipped_lines)?;
        }
        Ok(())
    }
}

/// Loads every `*.jsonl` file of `dir` into `cache`. A missing directory
/// is an empty cache, not an error (the run will create it on persist).
/// Files are visited in name order, so which duplicate of a key wins is
/// deterministic.
///
/// # Errors
///
/// Only real I/O errors (unreadable directory or file); parse failures
/// are skipped and counted in [`CacheDirLoad::skipped_lines`].
pub fn load_cache_dir(cache: &GlobalAnalysisCache, dir: &Path) -> io::Result<CacheDirLoad> {
    let mut load = CacheDirLoad::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(load),
        Err(e) => return Err(e),
    };
    // Pass-cache files share the directory but carry a different record
    // type; they are loaded by `load_pass_cache_dir`, not here.
    let mut files: Vec<PathBuf> = entries
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .filter(|p| !file_name_starts_with(p, PASS_CACHE_PREFIX))
        .collect();
    files.sort();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let mut parsed: Vec<CacheEntry> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match serde::json::from_str::<CacheEntry>(line) {
                Ok(e) => parsed.push(e),
                Err(_) => load.skipped_lines += 1,
            }
        }
        load.imported += cache.import(parsed);
        load.files += 1;
    }
    Ok(load)
}

/// File-name prefix of the pass-cache layer's files.
const PASS_CACHE_PREFIX: &str = "pass-cache-";

fn file_name_starts_with(path: &Path, prefix: &str) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with(prefix))
}

/// Loads every `pass-cache-*.jsonl` file of `dir` into `cache`, with the
/// same contract as [`load_cache_dir`]: a missing directory is an empty
/// cache, files are visited in name order, unparseable lines are skipped
/// and counted.
///
/// # Errors
///
/// Only real I/O errors (unreadable directory or file).
pub fn load_pass_cache_dir(cache: &PassCache, dir: &Path) -> io::Result<CacheDirLoad> {
    let mut load = CacheDirLoad::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(load),
        Err(e) => return Err(e),
    };
    let mut files: Vec<PathBuf> = entries
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .filter(|p| file_name_starts_with(p, PASS_CACHE_PREFIX))
        .collect();
    files.sort();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let mut parsed: Vec<PassEntry> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match serde::json::from_str::<PassEntry>(line) {
                Ok(e) => parsed.push(e),
                Err(_) => load.skipped_lines += 1,
            }
        }
        load.imported += cache.import(parsed);
        load.files += 1;
    }
    Ok(load)
}

/// The cache file a run of shard `spec` owns inside `dir`.
pub fn cache_file_name(spec: ShardSpec) -> String {
    format!("analysis-cache-{}-of-{}.jsonl", spec.index, spec.count)
}

/// Persists `cache` to its shard-owned file in `dir` (creating the
/// directory if needed) and returns the written path. The file is
/// replaced atomically (write to a temporary name, then rename), so
/// concurrent loaders see either the old or the new cache, never a torn
/// one.
///
/// # Errors
///
/// I/O errors creating the directory or writing the file.
pub fn persist_cache(
    cache: &GlobalAnalysisCache,
    dir: &Path,
    spec: ShardSpec,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let name = cache_file_name(spec);
    let mut out = String::new();
    for entry in cache.export() {
        serde::json::emit(&entry.to_value(), &mut out);
        out.push('\n');
    }
    let tmp = dir.join(format!(".{name}.tmp"));
    let path = dir.join(name);
    fs::write(&tmp, out)?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// The pass-cache file a run of shard `spec` owns inside `dir`.
pub fn pass_cache_file_name(spec: ShardSpec) -> String {
    format!("{PASS_CACHE_PREFIX}{}-of-{}.jsonl", spec.index, spec.count)
}

/// Persists `cache` to its shard-owned `pass-cache-*` file in `dir`, with
/// the same atomicity and determinism contract as [`persist_cache`].
///
/// # Errors
///
/// I/O errors creating the directory or writing the file.
pub fn persist_pass_cache(cache: &PassCache, dir: &Path, spec: ShardSpec) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let name = pass_cache_file_name(spec);
    let mut out = String::new();
    for entry in cache.export() {
        serde::json::emit(&entry.to_value(), &mut out);
        out.push('\n');
    }
    let tmp = dir.join(format!(".{name}.tmp"));
    let path = dir.join(name);
    fs::write(&tmp, out)?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::state_space::AnalysisOptions;

    fn populated_cache() -> GlobalAnalysisCache {
        let cache = GlobalAnalysisCache::new();
        for n in 2..6u64 {
            let mut b = SdfGraphBuilder::new("g");
            let a = b.add_actor("a", n);
            let c = b.add_actor("b", 1);
            b.add_channel_with_tokens("e", a, 1, c, 1, 2);
            b.add_channel_with_tokens("r", c, 1, a, 1, 2);
            let g = b.build().unwrap();
            cache
                .throughput(&g, &AnalysisOptions::default())
                .expect("bounded two-actor ring analyses");
        }
        cache
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mamps-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_then_load_round_trips() {
        let dir = tempdir("roundtrip");
        let cache = populated_cache();
        let path = persist_cache(&cache, &dir, ShardSpec::full()).unwrap();
        assert!(path.ends_with("analysis-cache-0-of-1.jsonl"));

        let warm = GlobalAnalysisCache::new();
        let load = load_cache_dir(&warm, &dir).unwrap();
        assert_eq!(load.files, 1);
        assert_eq!(load.imported, cache.len());
        assert_eq!(load.skipped_lines, 0);
        assert_eq!(warm.export(), cache.export());

        // Persisting the re-loaded cache reproduces identical bytes.
        let again = persist_cache(&warm, &dir, ShardSpec::full()).unwrap();
        assert_eq!(
            fs::read_to_string(&again).unwrap(),
            fs::read_to_string(&path).unwrap()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_cache() {
        let warm = GlobalAnalysisCache::new();
        let load = load_cache_dir(&warm, Path::new("/nonexistent/mamps-cache")).unwrap();
        assert_eq!(load, CacheDirLoad::default());
        assert!(warm.is_empty());
    }

    #[test]
    fn unparseable_lines_are_skipped_not_fatal() {
        let dir = tempdir("torn");
        let cache = populated_cache();
        let path = persist_cache(&cache, &dir, ShardSpec::new(1, 4).unwrap()).unwrap();
        assert!(path.ends_with("analysis-cache-1-of-4.jsonl"));
        // Tear the last line mid-record and append garbage, as a killed
        // writer (without the atomic rename) might have.
        let text = fs::read_to_string(&path).unwrap();
        let torn = format!("{}\nnot json\n", &text[..text.len() - 9]);
        fs::write(&path, torn).unwrap();

        let warm = GlobalAnalysisCache::new();
        let load = load_cache_dir(&warm, &dir).unwrap();
        assert_eq!(load.skipped_lines, 2);
        assert_eq!(load.imported, cache.len() - 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pass_cache_round_trips_and_stays_out_of_analysis_load() {
        use serde::Value;
        let dir = tempdir("pass");
        let passes = PassCache::new();
        passes.insert(
            "bind",
            7,
            Value::Seq(vec![Value::Int(1), Value::Str("x".into())]),
        );
        passes.insert(
            "buffer-size",
            9,
            Value::Map(vec![("Ok".into(), Value::Int(3))]),
        );
        let path = persist_pass_cache(&passes, &dir, ShardSpec::full()).unwrap();
        assert!(path.ends_with("pass-cache-0-of-1.jsonl"));

        // Also persist an analysis cache into the same directory.
        let analysis = populated_cache();
        persist_cache(&analysis, &dir, ShardSpec::full()).unwrap();

        // Each loader sees only its own layer, with no skipped lines.
        let warm_pass = PassCache::new();
        let load = load_pass_cache_dir(&warm_pass, &dir).unwrap();
        assert_eq!((load.files, load.imported, load.skipped_lines), (1, 2, 0));
        assert_eq!(warm_pass.export(), passes.export());

        let warm_analysis = GlobalAnalysisCache::new();
        let load = load_cache_dir(&warm_analysis, &dir).unwrap();
        assert_eq!(
            (load.files, load.imported, load.skipped_lines),
            (1, analysis.len(), 0)
        );

        // Re-persisting the re-loaded pass cache reproduces identical bytes.
        let again = persist_pass_cache(&warm_pass, &dir, ShardSpec::full()).unwrap();
        assert_eq!(
            fs::read_to_string(&again).unwrap(),
            fs::read_to_string(&path).unwrap()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_pass_cache() {
        let warm = PassCache::new();
        let load = load_pass_cache_dir(&warm, Path::new("/nonexistent/mamps-cache")).unwrap();
        assert_eq!(load, CacheDirLoad::default());
        assert!(warm.is_empty());
    }

    #[test]
    fn shard_files_do_not_collide_and_all_load() {
        let dir = tempdir("shards");
        let cache = populated_cache();
        let a = persist_cache(&cache, &dir, ShardSpec::new(0, 2).unwrap()).unwrap();
        let b = persist_cache(&cache, &dir, ShardSpec::new(1, 2).unwrap()).unwrap();
        assert_ne!(a, b);
        let warm = GlobalAnalysisCache::new();
        let load = load_cache_dir(&warm, &dir).unwrap();
        assert_eq!(load.files, 2);
        // Same entries twice: the duplicates import as no-ops.
        assert_eq!(load.imported, cache.len());
        assert_eq!(warm.len(), cache.len());
        let _ = fs::remove_dir_all(&dir);
    }
}
