//! Guarantee validation: the flow's contract is
//! `measured throughput >= guaranteed bound`.

/// Comparison of a measured throughput against the analysed bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuaranteeReport {
    /// The analysed worst-case bound (iterations/cycle).
    pub bound: f64,
    /// The measured long-term throughput (iterations/cycle).
    pub measured: f64,
    /// `measured / bound` — at least 1 when the guarantee holds.
    pub margin: f64,
}

impl GuaranteeReport {
    /// Builds the report.
    pub fn new(bound: f64, measured: f64) -> GuaranteeReport {
        GuaranteeReport {
            bound,
            measured,
            margin: if bound > 0.0 {
                measured / bound
            } else {
                f64::INFINITY
            },
        }
    }

    /// True when the measured throughput honours the guarantee (with a tiny
    /// tolerance for floating-point summarization of exact cycle counts).
    pub fn holds(&self) -> bool {
        self.measured >= self.bound * (1.0 - 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_and_holds() {
        let ok = GuaranteeReport::new(0.5, 0.6);
        assert!(ok.holds());
        assert!((ok.margin - 1.2).abs() < 1e-12);
        let bad = GuaranteeReport::new(0.5, 0.4);
        assert!(!bad.holds());
        let free = GuaranteeReport::new(0.0, 0.1);
        assert!(free.holds());
    }
}
