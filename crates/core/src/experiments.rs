//! The paper's evaluation experiments (§6), reusable by benches, examples
//! and integration tests.
//!
//! * [`fig6_experiment`] — Fig. 6(a)/(b): worst-case analysis vs expected
//!   vs measured throughput of the MJPEG decoder for the synthetic and the
//!   five real-life sequences, on an FSL or NoC platform.
//! * [`table1`] — Table 1: designer effort, with the automated rows timed
//!   on this machine and the manual rows quoted from the paper.
//! * [`ca_overhead_experiment`] — §6.3: predicted speedup when the software
//!   (de-)serialization is replaced by a communication assist, with actors
//!   mapped to the same resources.
//! * [`noc_flow_control_overhead`] — §5.3.1: relative slice cost of the
//!   flow control added to the SDM NoC.

use mamps_mapping::flow::MapOptions;
use mamps_mjpeg::app_model::mjpeg_application;
use mamps_mjpeg::encoder::StreamConfig;
use mamps_mjpeg::sequences::{mean_times, profile_sequence, synthetic, test_set, traces_of};
use mamps_platform::arch::Architecture;
use mamps_platform::area::{noc_router_base, noc_router_with_flow_control};
use mamps_platform::interconnect::Interconnect;
use mamps_platform::types::TileId;
use mamps_sim::{System, TraceTimes};

use crate::flow::{run_flow, run_flow_with_arch, FlowError, FlowOptions, FlowResult, StepTimings};
use crate::predict::predicted_throughput;
use crate::validate::GuaranteeReport;

/// One bar group of Fig. 6: a sequence with its three throughput figures,
/// in iterations (MCUs) per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Sequence name.
    pub sequence: String,
    /// The SDF3 worst-case analysis bound (the "worst-case analysis" line).
    pub worst_case: f64,
    /// Analysis re-run with measured mean execution times ("Expected").
    pub expected: f64,
    /// Throughput of the platform running the sequence ("Measured").
    pub measured: f64,
}

impl Fig6Row {
    /// The guarantee check for this sequence.
    pub fn guarantee(&self) -> GuaranteeReport {
        GuaranteeReport::new(self.worst_case, self.measured)
    }

    /// Relative gap between expected and measured (paper: <1 % for the
    /// synthetic sequence).
    pub fn expected_measured_gap(&self) -> f64 {
        if self.expected == 0.0 {
            return f64::INFINITY;
        }
        (self.expected - self.measured).abs() / self.expected
    }
}

/// Runs the Fig. 6 experiment: maps the MJPEG decoder once, then evaluates
/// every sequence on the same platform.
///
/// `sim_iterations` controls the measured run length (MCUs).
///
/// # Errors
///
/// Propagates flow and simulation errors.
pub fn fig6_experiment(
    cfg: &StreamConfig,
    tiles: usize,
    interconnect: Interconnect,
    sim_iterations: u64,
) -> Result<(FlowResult, Vec<Fig6Row>), FlowError> {
    let app = mjpeg_application(cfg, None).expect("valid MJPEG model");
    let flow = run_flow(&app, tiles, interconnect, &FlowOptions::default())?;
    let worst_case = flow.guaranteed_throughput();

    let mut rows = Vec::new();
    for seq in [synthetic()].into_iter().chain(test_set()) {
        let decoded = profile_sequence(cfg, seq).expect("generated streams decode");
        let means = mean_times(&decoded.profile);
        let expected = predicted_throughput(app.graph(), &flow.mapped.mapping, &flow.arch, &means)
            .map_err(FlowError::Map)?
            .to_f64();
        let times = TraceTimes::new(
            traces_of(&decoded.profile),
            flow.mapped.mapping.binding.wcet_of.clone(),
        );
        let system = System::new(app.graph(), &flow.mapped.mapping, &flow.arch, &times)?;
        let measured = system
            .run(sim_iterations, 100_000_000_000)?
            .steady_throughput();
        rows.push(Fig6Row {
            sequence: seq.name.to_string(),
            worst_case,
            expected,
            measured,
        });
    }
    Ok((flow, rows))
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The design step.
    pub step: String,
    /// Time spent (measured for automated steps, quoted from the paper for
    /// the manual ones).
    pub time: String,
    /// True for steps automated by the flow.
    pub automated: bool,
}

/// Builds the Table 1 report from measured step timings.
pub fn table1(timings: &StepTimings) -> Vec<Table1Row> {
    let fmt = |d: std::time::Duration| {
        if d.as_secs() >= 1 {
            format!("{:.1} s", d.as_secs_f64())
        } else {
            format!("{:.1} ms", d.as_secs_f64() * 1e3)
        }
    };
    vec![
        Table1Row {
            step: "Parallelizing the MJPEG code".into(),
            time: "< 3 days (paper)".into(),
            automated: false,
        },
        Table1Row {
            step: "Creating the SDF graph".into(),
            time: "5 minutes (paper)".into(),
            automated: false,
        },
        Table1Row {
            step: "Gathering required actor metrics".into(),
            time: "1 day (paper)".into(),
            automated: false,
        },
        Table1Row {
            step: "Creating application model".into(),
            time: "1 hour (paper)".into(),
            automated: false,
        },
        Table1Row {
            step: "Generating architecture model".into(),
            time: fmt(timings.architecture_generation),
            automated: true,
        },
        Table1Row {
            step: "Mapping the design (SDF3)".into(),
            time: fmt(timings.mapping),
            automated: true,
        },
        Table1Row {
            step: "Generating Xilinx project (MAMPS)".into(),
            time: fmt(timings.platform_generation),
            automated: true,
        },
        Table1Row {
            step: "Synthesis of the system".into(),
            time: fmt(timings.synthesis),
            automated: true,
        },
    ]
}

/// Result of the §6.3 communication-assist what-if study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaOverheadResult {
    /// Guaranteed throughput with PE-side (de-)serialization.
    pub plain_bound: f64,
    /// Guaranteed throughput with CA tiles, same actor binding.
    pub ca_bound: f64,
}

impl CaOverheadResult {
    /// The predicted speedup factor (paper: "up to 300 %" increase).
    pub fn speedup(&self) -> f64 {
        self.ca_bound / self.plain_bound
    }
}

/// Runs the §6.3 experiment: map on plain tiles, then re-analyse with the
/// serialization moved to a CA, actors pinned to the same tiles.
///
/// # Errors
///
/// Propagates flow errors.
pub fn ca_overhead_experiment(
    cfg: &StreamConfig,
    tiles: usize,
    interconnect: Interconnect,
) -> Result<CaOverheadResult, FlowError> {
    let app = mjpeg_application(cfg, None).expect("valid MJPEG model");
    let plain = run_flow(&app, tiles, interconnect, &FlowOptions::default())?;

    // Same resources: pin every actor to its tile from the plain mapping.
    let pinned: Vec<(mamps_sdf::graph::ActorId, TileId)> = app
        .graph()
        .actors()
        .map(|(aid, _)| (aid, plain.mapped.mapping.binding.tile_of[aid.0]))
        .collect();
    let ca_arch = Architecture::homogeneous_with_ca("ca", tiles, interconnect)?;
    let opts = FlowOptions {
        map: MapOptions {
            bind: mamps_mapping::BindOptions {
                pinned,
                ..Default::default()
            },
            ..MapOptions::default()
        },
        ..FlowOptions::default()
    };
    let ca = run_flow_with_arch(&app, ca_arch, &opts)?;
    Ok(CaOverheadResult {
        plain_bound: plain.guaranteed_throughput(),
        ca_bound: ca.guaranteed_throughput(),
    })
}

/// The §5.3.1 area claim: relative slice overhead of NoC flow control.
pub fn noc_flow_control_overhead(wires_per_link: u32) -> f64 {
    let base = noc_router_base(wires_per_link).slices as f64;
    let fc = noc_router_with_flow_control(wires_per_link).slices as f64;
    (fc - base) / base
}

/// Sensitivity of the §6.3 result to the software serialization cost.
///
/// The paper reports "up to 300 %" improvement; the factor depends on the
/// ratio of the (de-)serialization loop to the actor computation on the
/// bottleneck tile, which the paper does not publish. This sweep varies the
/// per-word software cost and reports the predicted CA speedup for each,
/// demonstrating the crossover into the paper's regime.
///
/// # Errors
///
/// Propagates flow errors.
pub fn ca_overhead_vs_serialization_cost(
    cfg: &StreamConfig,
    tiles: usize,
    cycles_per_word: &[u64],
) -> Result<Vec<(u64, f64)>, FlowError> {
    use mamps_platform::tile::{SerializationCost, TileConfig};
    let app = mjpeg_application(cfg, None).expect("valid MJPEG model");
    let mut results = Vec::new();
    for &cpw in cycles_per_word {
        let cost = SerializationCost {
            setup_cycles: 4 * cpw,
            cycles_per_word: cpw,
        };
        let plain_tiles: Vec<TileConfig> = (0..tiles)
            .map(|i| {
                let t = if i == 0 {
                    TileConfig::master(format!("tile{i}"))
                } else {
                    TileConfig::slave(format!("tile{i}"))
                };
                t.with_serialization(cost)
            })
            .collect();
        let plain_arch = Architecture::new("plain", plain_tiles, Interconnect::fsl())?;
        let plain = run_flow_with_arch(&app, plain_arch, &FlowOptions::default())?;
        let pinned: Vec<(mamps_sdf::graph::ActorId, TileId)> = app
            .graph()
            .actors()
            .map(|(aid, _)| (aid, plain.mapped.mapping.binding.tile_of[aid.0]))
            .collect();
        let ca_arch = Architecture::homogeneous_with_ca("ca", tiles, Interconnect::fsl())?;
        let opts = FlowOptions {
            map: MapOptions {
                bind: mamps_mapping::BindOptions {
                    pinned,
                    ..Default::default()
                },
                ..MapOptions::default()
            },
            ..FlowOptions::default()
        };
        let ca = run_flow_with_arch(&app, ca_arch, &opts)?;
        results.push((
            cpw,
            ca.guaranteed_throughput() / plain.guaranteed_throughput(),
        ));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> StreamConfig {
        StreamConfig {
            frames: 1,
            ..StreamConfig::small()
        }
    }

    #[test]
    fn fig6_fsl_shape() {
        let (_, rows) = fig6_experiment(&small_cfg(), 3, Interconnect::fsl(), 60).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.guarantee().holds(),
                "{}: measured {} below bound {}",
                r.sequence,
                r.measured,
                r.worst_case
            );
            assert!(
                r.expected >= r.worst_case * (1.0 - 1e-9),
                "{}: expected below worst case",
                r.sequence
            );
        }
        // The synthetic sequence sits closest to the worst-case bound.
        let synth = &rows[0];
        for r in &rows[1..] {
            assert!(
                synth.measured <= r.measured * 1.001,
                "synthetic should be the slowest: {} vs {} ({})",
                synth.measured,
                r.measured,
                r.sequence
            );
        }
    }

    #[test]
    fn table1_rows_partition() {
        let t = table1(&StepTimings::default());
        assert_eq!(t.len(), 8);
        assert_eq!(t.iter().filter(|r| r.automated).count(), 4);
        assert!(t[0].time.contains("paper"));
    }

    #[test]
    fn ca_overhead_speedup_positive() {
        let r = ca_overhead_experiment(&small_cfg(), 3, Interconnect::fsl()).unwrap();
        assert!(r.speedup() > 1.0, "CA must improve the bound: {:?}", r);
    }

    #[test]
    fn noc_overhead_near_12_percent() {
        let o = noc_flow_control_overhead(8);
        assert!((0.10..=0.14).contains(&o), "overhead {o}");
    }

    #[test]
    fn ca_speedup_grows_with_serialization_cost() {
        let sweep = ca_overhead_vs_serialization_cost(&small_cfg(), 3, &[4, 16, 48]).unwrap();
        assert_eq!(sweep.len(), 3);
        for w in sweep.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e-9,
                "speedup must not fall with costlier serialization: {sweep:?}"
            );
        }
        assert!(sweep[2].1 > sweep[0].1, "sweep should show a clear trend");
    }
}
