//! Throughput prediction with substituted execution times.
//!
//! The paper's Fig. 6 "expected" series re-runs the SDF3 analysis with
//! execution times measured on the test data instead of the WCETs. This
//! module rebuilds the Fig. 4-expanded analysis graph of an existing
//! mapping with per-actor mean times and analyses it.

use mamps_mapping::comm_expand::expand;
use mamps_mapping::mapping::Mapping;
use mamps_mapping::MapError;
use mamps_platform::arch::Architecture;
use mamps_sdf::graph::SdfGraph;
use mamps_sdf::ratio::Ratio;
use mamps_sdf::state_space::{throughput, AnalysisOptions};

/// Predicts throughput for `mapping` with the given per-actor execution
/// times (indexed by actor id) substituted for the WCETs.
///
/// # Errors
///
/// Propagates expansion/analysis errors.
pub fn predicted_throughput(
    graph: &SdfGraph,
    mapping: &Mapping,
    arch: &Architecture,
    times: &[u64],
) -> Result<Ratio, MapError> {
    let mut g = graph.clone();
    for (aid, _) in graph.actors() {
        g.actor_mut(aid).set_execution_time(times[aid.0]);
    }
    let expanded = expand(&g, mapping, arch)?;
    let t = throughput(
        &expanded.graph,
        &AnalysisOptions {
            auto_concurrency: true,
            max_states: 4_000_000,
            ..AnalysisOptions::default()
        },
    )
    .map_err(MapError::Sdf)?;
    Ok(t.iterations_per_cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_mapping::flow::{map_application, MapOptions};
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    #[test]
    fn faster_times_predict_higher_throughput() {
        let mut b = SdfGraphBuilder::new("a");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel_full("e", x, 1, y, 1, 0, 16);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 100, 2048, 256).actor("y", 100, 2048, 256);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();

        let wcet_pred = predicted_throughput(
            app.graph(),
            &mapped.mapping,
            &arch,
            &mapped.mapping.binding.wcet_of,
        )
        .unwrap();
        // Substituting the WCETs reproduces the bound.
        assert_eq!(wcet_pred, mapped.analysis.iterations_per_cycle);

        let fast = predicted_throughput(app.graph(), &mapped.mapping, &arch, &[30, 30]).unwrap();
        assert!(fast > wcet_pred);
    }
}
