//! Design-space exploration (paper §7 lists improved automated DSE as
//! future work; this module provides the straightforward sweep the flow's
//! speed enables: "designers \[can\] perform a very fast design space
//! exploration").
//!
//! The sweep is three-dimensional: tile counts × interconnects × *binding
//! strategies* ([`mamps_mapping::strategy`]). Every design point records
//! which strategy produced it, so Pareto fronts can be read per strategy —
//! e.g. a `spiral` point that ties `greedy` throughput at fewer allocated
//! NoC wire-links. Design points are independent full flow runs, so
//! [`explore_report`] evaluates them concurrently via
//! [`crate::parallel::parallel_map`] when [`FlowOptions::jobs`] asks for
//! it; the result is point-for-point identical to the sequential sweep.
//! Infeasible points are not silently discarded: they come back as
//! [`SkippedPoint`]s naming the strategy and the failing flow step,
//! surfaced by `mamps dse` and [`crate::report::render_dse_report`].

use mamps_mapping::StrategyHandle;
use mamps_platform::area::platform_area;
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::model::ApplicationModel;

use crate::flow::{run_flow, FlowOptions};
use crate::parallel::parallel_map;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Tile count.
    pub tiles: usize,
    /// Interconnect kind (`"fsl"` / `"noc"`).
    pub interconnect: &'static str,
    /// Binding strategy that produced the mapping.
    pub strategy: &'static str,
    /// Guaranteed throughput (iterations/cycle).
    pub guaranteed: f64,
    /// Total platform slices (area model).
    pub slices: u64,
    /// Allocated NoC wire-links (SDM wires × route hops; 0 on FSL).
    pub wire_units: u64,
}

/// A design point the flow could not map, with the reason it failed.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedPoint {
    /// Tile count.
    pub tiles: usize,
    /// Interconnect kind (`"fsl"` / `"noc"`).
    pub interconnect: &'static str,
    /// Binding strategy that was attempted.
    pub strategy: &'static str,
    /// Rendered flow error (which step failed and why).
    pub reason: String,
}

/// Outcome of a design-space sweep: the feasible points plus every skipped
/// configuration with its reason. Each entry — kept or skipped — is
/// attributed to the binding strategy that produced it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DseReport {
    /// Feasible points, sorted by descending guaranteed throughput
    /// (ties: fewer slices, then fewer wire-links first).
    pub points: Vec<DsePoint>,
    /// Infeasible configurations in sweep order.
    pub skipped: Vec<SkippedPoint>,
}

/// Sweeps tile counts × interconnects × binding strategies, recording both
/// feasible and skipped design points. The strategies come from
/// [`FlowOptions::binders`]; when that is empty the single configured
/// `opts.map.bind.strategy` is swept. `opts.jobs > 1` evaluates
/// independent design points concurrently with identical results.
pub fn explore_report(
    app: &ApplicationModel,
    tile_counts: &[usize],
    include_noc: bool,
    opts: &FlowOptions,
) -> DseReport {
    let strategies: Vec<StrategyHandle> = if opts.binders.is_empty() {
        vec![opts.map.bind.strategy.clone()]
    } else {
        opts.binders.clone()
    };

    let mut configs: Vec<(usize, &'static str, Interconnect, StrategyHandle)> = Vec::new();
    for strategy in &strategies {
        for &tiles in tile_counts {
            configs.push((tiles, "fsl", Interconnect::fsl(), strategy.clone()));
            if include_noc {
                configs.push((
                    tiles,
                    "noc",
                    Interconnect::noc_for_tiles(tiles),
                    strategy.clone(),
                ));
            }
        }
    }

    let evaluated = parallel_map(opts.jobs, &configs, |_, (tiles, name, ic, strategy)| {
        let mut point_opts = opts.clone();
        point_opts.map.bind.strategy = strategy.clone();
        match run_flow(app, *tiles, *ic, &point_opts) {
            Ok(flow) => {
                let cross_links = app
                    .graph()
                    .channels()
                    .filter(|(_, c)| {
                        !c.is_self_edge()
                            && flow.mapped.mapping.binding.crosses_tiles(c.src(), c.dst())
                    })
                    .count();
                let area = platform_area(&flow.arch, cross_links);
                Ok(DsePoint {
                    tiles: *tiles,
                    interconnect: name,
                    strategy: flow.strategy(),
                    guaranteed: flow.guaranteed_throughput(),
                    slices: area.total.slices,
                    wire_units: flow.mapped.mapping.noc_wire_units(app.graph(), &flow.arch),
                })
            }
            Err(e) => Err(SkippedPoint {
                tiles: *tiles,
                interconnect: name,
                strategy: strategy.name(),
                reason: e.to_string(),
            }),
        }
    });

    let mut report = DseReport::default();
    for r in evaluated {
        match r {
            Ok(p) => report.points.push(p),
            Err(s) => report.skipped.push(s),
        }
    }
    report.points.sort_by(|a, b| {
        b.guaranteed
            .partial_cmp(&a.guaranteed)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.slices.cmp(&b.slices))
            .then(a.wire_units.cmp(&b.wire_units))
    });
    report
}

// ---------------------------------------------------------------------------
// Use-case sweeps
// ---------------------------------------------------------------------------

/// One evaluated use-case design point: which applications of the
/// use-case fit on this platform configuration, and with what guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct UseCasePoint {
    /// Tile count.
    pub tiles: usize,
    /// Interconnect kind (`"fsl"` / `"noc"`).
    pub interconnect: &'static str,
    /// Binding strategy used by the admission loop.
    pub strategy: &'static str,
    /// Names of the admitted applications, in admission order.
    pub admitted: Vec<String>,
    /// Rejected applications with their structured reasons, in admission
    /// order.
    pub rejected: Vec<(String, String)>,
    /// The lowest shared guarantee among the admitted applications
    /// (iterations/cycle; 0 when nothing was admitted).
    pub min_guarantee: f64,
    /// Total platform slices (area model).
    pub slices: u64,
}

/// Outcome of a use-case sweep over tile counts × interconnects ×
/// binding strategies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UseCaseDseReport {
    /// Points sorted by admitted count (descending), then lowest shared
    /// guarantee (descending), then slices (ascending).
    pub points: Vec<UseCasePoint>,
}

/// Sweeps platform configurations for a whole use-case: for every tile
/// count × interconnect × binding strategy, the admission loop
/// ([`mamps_mapping::multi::map_use_case`]) decides which subset of
/// `apps` fits with every per-application guarantee intact. Strategies
/// come from [`FlowOptions::binders`] (falling back to the configured
/// `map.bind.strategy`), and `opts.jobs > 1` evaluates configurations
/// concurrently with identical results.
pub fn explore_use_cases(
    apps: &[ApplicationModel],
    tile_counts: &[usize],
    include_noc: bool,
    opts: &FlowOptions,
) -> UseCaseDseReport {
    use mamps_mapping::multi::{map_use_case, UseCase};
    use mamps_platform::arch::Architecture;

    let strategies: Vec<StrategyHandle> = if opts.binders.is_empty() {
        vec![opts.map.bind.strategy.clone()]
    } else {
        opts.binders.clone()
    };

    let mut configs: Vec<(usize, &'static str, Interconnect, StrategyHandle)> = Vec::new();
    for strategy in &strategies {
        for &tiles in tile_counts {
            configs.push((tiles, "fsl", Interconnect::fsl(), strategy.clone()));
            if include_noc {
                configs.push((
                    tiles,
                    "noc",
                    Interconnect::noc_for_tiles(tiles),
                    strategy.clone(),
                ));
            }
        }
    }

    // The use-case is configuration-independent: build (and validate) it
    // once, outside the per-point fan-out.
    let uc = match UseCase::new(apps.to_vec()) {
        Ok(uc) => uc,
        Err(e) => {
            let reject_all: Vec<(String, String)> = apps
                .iter()
                .map(|a| (a.graph().name().to_string(), e.to_string()))
                .collect();
            return UseCaseDseReport {
                points: configs
                    .iter()
                    .map(|(tiles, name, _, strategy)| UseCasePoint {
                        tiles: *tiles,
                        interconnect: name,
                        strategy: strategy.name(),
                        admitted: Vec::new(),
                        rejected: reject_all.clone(),
                        min_guarantee: 0.0,
                        slices: 0,
                    })
                    .collect(),
            };
        }
    };

    let points = parallel_map(opts.jobs, &configs, |_, (tiles, name, ic, strategy)| {
        let mut point = UseCasePoint {
            tiles: *tiles,
            interconnect: name,
            strategy: strategy.name(),
            admitted: Vec::new(),
            rejected: Vec::new(),
            min_guarantee: 0.0,
            slices: 0,
        };
        let arch = match Architecture::homogeneous("auto", *tiles, *ic) {
            Ok(a) => a,
            Err(e) => {
                point.rejected = apps
                    .iter()
                    .map(|a| (a.graph().name().to_string(), format!("architecture: {e}")))
                    .collect();
                return point;
            }
        };
        let mut map_opts = opts.map.clone();
        map_opts.bind.strategy = strategy.clone();
        let outcome = map_use_case(&uc, &arch, &map_opts);
        point.admitted = outcome.admitted.iter().map(|a| a.name.clone()).collect();
        point.rejected = outcome
            .rejected
            .iter()
            .map(|r| (r.name.clone(), r.reason.to_string()))
            .collect();
        point.min_guarantee = outcome
            .admitted
            .iter()
            .map(|a| a.shared_guarantee.to_f64())
            .fold(f64::INFINITY, f64::min);
        if !point.min_guarantee.is_finite() {
            point.min_guarantee = 0.0;
        }
        let cross_links: usize = outcome
            .admitted
            .iter()
            .map(|a| {
                let g = uc.apps()[a.index].graph();
                g.channels()
                    .filter(|(_, c)| {
                        !c.is_self_edge()
                            && a.mapped.mapping.binding.crosses_tiles(c.src(), c.dst())
                    })
                    .count()
            })
            .sum();
        point.slices = platform_area(&arch, cross_links).total.slices;
        point
    });

    let mut report = UseCaseDseReport { points };
    report.points.sort_by(|a, b| {
        b.admitted
            .len()
            .cmp(&a.admitted.len())
            .then(
                b.min_guarantee
                    .partial_cmp(&a.min_guarantee)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.slices.cmp(&b.slices))
            .then(a.tiles.cmp(&b.tiles))
    });
    report
}

/// The Pareto front of `points` over (throughput up, slices down).
///
/// Single sort by descending throughput plus a sweep with a running
/// slice minimum — O(n log n) instead of the all-pairs scan — with the
/// exact tie semantics of the quadratic definition: a point is dominated
/// iff some point has strictly higher throughput at no more slices, or at
/// least equal throughput with strictly fewer slices. Equal (throughput,
/// slices) duplicates are all kept, and the input order is preserved.
pub fn pareto_front(points: &[DsePoint]) -> Vec<DsePoint> {
    // NaN throughputs compare false against everything, so such points are
    // never dominated and dominate nothing: keep them out of the sweep
    // entirely. This also keeps the sort comparator a total order.
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| !points[i].guaranteed.is_nan())
        .collect();
    order.sort_by(|&a, &b| {
        points[b]
            .guaranteed
            .partial_cmp(&points[a].guaranteed)
            .expect("NaN throughputs were filtered out")
    });

    let mut dominated = vec![false; points.len()];
    // Minimum slices over every point with strictly higher throughput than
    // the group currently being swept.
    let mut min_higher = u64::MAX;
    let mut i = 0;
    while i < order.len() {
        let g = points[order[i]].guaranteed;
        // Gather the group of equal-throughput points and its slice minimum.
        let mut j = i;
        let mut min_group = u64::MAX;
        while j < order.len() && points[order[j]].guaranteed == g {
            min_group = min_group.min(points[order[j]].slices);
            j += 1;
        }
        for &idx in &order[i..j] {
            let s = points[idx].slices;
            if min_higher <= s || min_group < s {
                dominated[idx] = true;
            }
        }
        min_higher = min_higher.min(min_group);
        i = j;
    }

    points
        .iter()
        .enumerate()
        .filter(|&(idx, _)| !dominated[idx])
        .map(|(_, p)| p.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn app() -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("a");
        let ids: Vec<_> = (0..3).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..2 {
            b.add_channel_full(format!("e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for i in 0..3 {
            mb.actor(format!("a{i}"), 100, 2048, 256);
        }
        mb.finish(g, None).unwrap()
    }

    fn point(guaranteed: f64, slices: u64) -> DsePoint {
        DsePoint {
            tiles: 1,
            interconnect: "fsl",
            strategy: "greedy",
            guaranteed,
            slices,
            wire_units: 0,
        }
    }

    /// The original O(n²) definition, kept as the oracle for the sweep.
    fn pareto_front_naive(points: &[DsePoint]) -> Vec<DsePoint> {
        let mut front: Vec<DsePoint> = Vec::new();
        for p in points {
            let dominated = points.iter().any(|q| {
                (q.guaranteed > p.guaranteed && q.slices <= p.slices)
                    || (q.guaranteed >= p.guaranteed && q.slices < p.slices)
            });
            if !dominated {
                front.push(p.clone());
            }
        }
        front
    }

    #[test]
    fn exploration_returns_sorted_points() {
        let points = explore_report(&app(), &[1, 2, 3], true, &FlowOptions::default()).points;
        assert!(points.len() >= 4);
        for w in points.windows(2) {
            assert!(w[0].guaranteed >= w[1].guaranteed - 1e-15);
        }
        assert!(points.iter().all(|p| p.strategy == "greedy"));
    }

    fn named_app(name: &str, wcets: &[u64]) -> ApplicationModel {
        let mut b = SdfGraphBuilder::new(name);
        let ids: Vec<_> = (0..wcets.len())
            .map(|i| b.add_actor(format!("{name}{i}"), 1))
            .collect();
        for i in 0..wcets.len() - 1 {
            b.add_channel_full(format!("{name}e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &w) in wcets.iter().enumerate() {
            mb.actor(format!("{name}{i}"), w, 2048, 256);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn use_case_sweep_counts_admissions_per_config() {
        let apps = vec![named_app("ua", &[90, 90]), named_app("ub", &[40, 40])];
        let report = explore_use_cases(&apps, &[1, 2], false, &FlowOptions::default());
        assert_eq!(report.points.len(), 2);
        // Both configurations admit both unconstrained apps; sorting puts
        // the higher-guarantee (or cheaper) point first.
        for p in &report.points {
            assert_eq!(p.admitted.len(), 2, "{p:?}");
            assert!(p.min_guarantee > 0.0);
            assert!(p.slices > 0);
        }
        for w in report.points.windows(2) {
            assert!(w[0].admitted.len() >= w[1].admitted.len());
        }
    }

    #[test]
    fn use_case_sweep_records_structured_rejections() {
        use mamps_sdf::model::ThroughputConstraint;
        let mut b = SdfGraphBuilder::new("hungry");
        let x = b.add_actor("hx", 1);
        let y = b.add_actor("hy", 1);
        b.add_channel_full("he", x, 1, y, 1, 0, 16);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("hx", 800, 2048, 256).actor("hy", 800, 2048, 256);
        let hungry = mb
            .finish(
                g,
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 20,
                }),
            )
            .unwrap();
        let apps = vec![named_app("uc", &[60, 60]), hungry];
        let report = explore_use_cases(&apps, &[2], false, &FlowOptions::default());
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.admitted, vec!["uc".to_string()]);
        assert_eq!(p.rejected.len(), 1);
        assert_eq!(p.rejected[0].0, "hungry");
        assert!(p.rejected[0].1.contains("mapping failed"));
    }

    #[test]
    fn parallel_use_case_sweep_matches_sequential() {
        let apps = vec![named_app("pa", &[70, 70]), named_app("pb", &[35, 35])];
        let opts = FlowOptions {
            binders: vec![
                mamps_mapping::strategy::by_name("greedy").unwrap(),
                mamps_mapping::strategy::by_name("spiral").unwrap(),
            ],
            ..FlowOptions::default()
        };
        let seq = explore_use_cases(&apps, &[1, 2, 3], true, &opts);
        let par = explore_use_cases(&apps, &[1, 2, 3], true, &FlowOptions { jobs: 4, ..opts });
        assert_eq!(seq, par);
        // Both strategies appear in the sweep.
        for s in ["greedy", "spiral"] {
            assert!(seq.points.iter().any(|p| p.strategy == s));
        }
    }

    #[test]
    fn pareto_front_is_subset_and_nondominated() {
        let points = explore_report(&app(), &[1, 2, 3], true, &FlowOptions::default()).points;
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        assert!(front.len() <= points.len());
        for p in &front {
            for q in &points {
                assert!(
                    !(q.guaranteed > p.guaranteed && q.slices < p.slices),
                    "{p:?} dominated by {q:?}"
                );
            }
        }
    }

    #[test]
    fn more_tiles_cost_more_area() {
        let points = explore_report(&app(), &[1, 3], false, &FlowOptions::default()).points;
        let p1 = points.iter().find(|p| p.tiles == 1).unwrap();
        let p3 = points.iter().find(|p| p.tiles == 3).unwrap();
        assert!(p3.slices > p1.slices);
    }

    #[test]
    fn infeasible_points_are_recorded_with_reasons() {
        // 0 tiles cannot host any actor: the architecture step fails.
        let report = explore_report(&app(), &[0, 2], false, &FlowOptions::default());
        assert_eq!(report.skipped.len(), 1);
        let s = &report.skipped[0];
        assert_eq!((s.tiles, s.interconnect), (0, "fsl"));
        assert_eq!(s.strategy, "greedy");
        assert!(!s.reason.is_empty(), "reason must name the failing step");
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.points[0].tiles, 2);
    }

    #[test]
    fn strategy_sweep_attributes_every_point() {
        let opts = FlowOptions {
            binders: vec![
                mamps_mapping::strategy::by_name("greedy").unwrap(),
                mamps_mapping::strategy::by_name("spiral").unwrap(),
            ],
            ..FlowOptions::default()
        };
        // Tile count 0 fails for every strategy: skips are attributed too.
        let report = explore_report(&app(), &[0, 1, 2], true, &opts);
        for strategy in ["greedy", "spiral"] {
            let kept = report.points.iter().filter(|p| p.strategy == strategy);
            let skipped = report.skipped.iter().filter(|s| s.strategy == strategy);
            // 2 feasible tile counts x 2 interconnects, 1 infeasible x 2.
            assert_eq!(kept.count(), 4, "{strategy} points");
            assert_eq!(skipped.count(), 2, "{strategy} skips");
        }
    }

    #[test]
    fn parallel_explore_matches_sequential() {
        let a = app();
        let binders: Vec<_> = mamps_mapping::strategy::registry()
            .iter()
            .filter(|(n, _)| *n != "genetic") // keep the test fast
            .map(|(_, make)| make())
            .collect();
        let opts = FlowOptions {
            binders,
            ..FlowOptions::default()
        };
        let seq = explore_report(&a, &[0, 1, 2, 3], true, &opts);
        let par = explore_report(&a, &[0, 1, 2, 3], true, &FlowOptions { jobs: 4, ..opts });
        assert_eq!(seq.points, par.points, "points must match point-for-point");
        assert_eq!(seq.skipped, par.skipped);
    }

    #[test]
    fn pareto_sweep_matches_naive_on_random_inputs() {
        // Deterministic pseudo-random point clouds, including duplicates
        // and throughput ties.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [0usize, 1, 2, 7, 33, 100] {
            let points: Vec<DsePoint> = (0..n)
                // Coarse buckets force plenty of exact ties.
                .map(|_| point((next() % 7) as f64 * 1e-6, next() % 9))
                .collect();
            assert_eq!(
                pareto_front(&points),
                pareto_front_naive(&points),
                "sweep diverges from the quadratic oracle at n={n}"
            );
        }
    }

    #[test]
    fn pareto_ignores_nan_points_without_splitting_groups() {
        // A NaN point is never dominated and dominates nothing, and it must
        // not split an equal-throughput group when it sorts between its
        // members.
        let points = [point(1.0, 5), point(f64::NAN, 1), point(1.0, 5)];
        let front = pareto_front(&points);
        let naive = pareto_front_naive(&points);
        // NaN != NaN, so compare structure rather than the points directly.
        let shape = |f: &[DsePoint]| -> Vec<(u64, bool)> {
            f.iter()
                .map(|p| (p.slices, p.guaranteed.is_nan()))
                .collect()
        };
        assert_eq!(shape(&front), shape(&naive));
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn pareto_keeps_equal_duplicates() {
        let p = DsePoint {
            tiles: 2,
            ..point(1e-5, 100)
        };
        let front = pareto_front(&[p.clone(), p.clone()]);
        assert_eq!(front.len(), 2);
    }
}
