//! Design-space exploration (paper §7 lists improved automated DSE as
//! future work; this module provides the straightforward sweep the flow's
//! speed enables: "designers \[can\] perform a very fast design space
//! exploration").

use mamps_platform::area::platform_area;
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::model::ApplicationModel;

use crate::flow::{run_flow, FlowOptions};

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Tile count.
    pub tiles: usize,
    /// Interconnect kind (`"fsl"` / `"noc"`).
    pub interconnect: &'static str,
    /// Guaranteed throughput (iterations/cycle).
    pub guaranteed: f64,
    /// Total platform slices (area model).
    pub slices: u64,
}

/// Sweeps tile counts and interconnects, returning all feasible points
/// sorted by descending guaranteed throughput (ties: fewer slices first).
pub fn explore(app: &ApplicationModel, tile_counts: &[usize], include_noc: bool) -> Vec<DsePoint> {
    let mut points = Vec::new();
    for &tiles in tile_counts {
        let mut configs = vec![("fsl", Interconnect::fsl())];
        if include_noc {
            configs.push(("noc", Interconnect::noc_for_tiles(tiles)));
        }
        for (name, ic) in configs {
            if let Ok(flow) = run_flow(app, tiles, ic, &FlowOptions::default()) {
                let cross_links = app
                    .graph()
                    .channels()
                    .filter(|(_, c)| {
                        !c.is_self_edge()
                            && flow.mapped.mapping.binding.crosses_tiles(c.src(), c.dst())
                    })
                    .count();
                let area = platform_area(&flow.arch, cross_links);
                points.push(DsePoint {
                    tiles,
                    interconnect: name,
                    guaranteed: flow.guaranteed_throughput(),
                    slices: area.total.slices,
                });
            }
        }
    }
    points.sort_by(|a, b| {
        b.guaranteed
            .partial_cmp(&a.guaranteed)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.slices.cmp(&b.slices))
    });
    points
}

/// The Pareto front of `points` over (throughput up, slices down).
pub fn pareto_front(points: &[DsePoint]) -> Vec<DsePoint> {
    let mut front: Vec<DsePoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.guaranteed > p.guaranteed && q.slices <= p.slices)
                || (q.guaranteed >= p.guaranteed && q.slices < p.slices)
        });
        if !dominated {
            front.push(p.clone());
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn app() -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("a");
        let ids: Vec<_> = (0..3).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..2 {
            b.add_channel_full(format!("e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for i in 0..3 {
            mb.actor(format!("a{i}"), 100, 2048, 256);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn exploration_returns_sorted_points() {
        let points = explore(&app(), &[1, 2, 3], true);
        assert!(points.len() >= 4);
        for w in points.windows(2) {
            assert!(w[0].guaranteed >= w[1].guaranteed - 1e-15);
        }
    }

    #[test]
    fn pareto_front_is_subset_and_nondominated() {
        let points = explore(&app(), &[1, 2, 3], true);
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        assert!(front.len() <= points.len());
        for p in &front {
            for q in &points {
                assert!(
                    !(q.guaranteed > p.guaranteed && q.slices < p.slices),
                    "{p:?} dominated by {q:?}"
                );
            }
        }
    }

    #[test]
    fn more_tiles_cost_more_area() {
        let points = explore(&app(), &[1, 3], false);
        let p1 = points.iter().find(|p| p.tiles == 1).unwrap();
        let p3 = points.iter().find(|p| p.tiles == 3).unwrap();
        assert!(p3.slices > p1.slices);
    }
}
