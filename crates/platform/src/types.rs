//! Identifier newtypes and processor types for the MAMPS platform.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a tile within an [`crate::arch::Architecture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileId(pub usize);

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

/// A processor type name, e.g. `"microblaze"`.
///
/// Matches the `processor_type` strings of
/// [`mamps_sdf::model::ActorImplementation`]; the binder only places an
/// actor on a tile whose processor type has an implementation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessorType(String);

impl ProcessorType {
    /// The Xilinx MicroBlaze soft core used by the MAMPS tiles (paper §5.3.2).
    pub fn microblaze() -> ProcessorType {
        ProcessorType("microblaze".into())
    }

    /// A dedicated hardware implementation of an actor (Tile 4 in Fig. 3).
    pub fn hardware_ip() -> ProcessorType {
        ProcessorType("hardware-ip".into())
    }

    /// A custom processor type.
    pub fn custom(name: impl Into<String>) -> ProcessorType {
        ProcessorType(name.into())
    }

    /// The type name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ProcessorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The network-interface word size: the MAMPS NI is defined around the
/// Xilinx Fast Simplex Link, which transfers 32-bit words (paper §4.1).
pub const NI_WORD_BYTES: u64 = 4;

/// Number of 32-bit words needed to carry a token of `token_size` bytes.
///
/// # Examples
///
/// ```
/// use mamps_platform::types::words_per_token;
/// assert_eq!(words_per_token(4), 1);
/// assert_eq!(words_per_token(5), 2);
/// assert_eq!(words_per_token(256), 64);
/// ```
pub fn words_per_token(token_size: u64) -> u64 {
    token_size.div_ceil(NI_WORD_BYTES).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_type_names() {
        assert_eq!(ProcessorType::microblaze().name(), "microblaze");
        assert_eq!(ProcessorType::custom("dsp").name(), "dsp");
        assert_eq!(
            ProcessorType::microblaze(),
            ProcessorType::custom("microblaze")
        );
    }

    #[test]
    fn word_fragmentation() {
        assert_eq!(words_per_token(1), 1);
        assert_eq!(words_per_token(4), 1);
        assert_eq!(words_per_token(8), 2);
        assert_eq!(words_per_token(9), 3);
        // Degenerate zero-size tokens still occupy one word on the wire.
        assert_eq!(words_per_token(0), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(TileId(3).to_string(), "tile3");
        assert_eq!(ProcessorType::microblaze().to_string(), "microblaze");
    }
}
