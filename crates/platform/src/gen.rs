//! Parameterized platform synthesis for generated scenarios.
//!
//! [`ArchSpec`] is the textual form `mamps gen --arch` accepts — an FSL
//! star of `N` tiles (`fsl:N`) or a NoC mesh of `W×H` tiles
//! (`mesh:WxH`) — and [`synthesize`] instantiates it as a homogeneous
//! [`Architecture`] through the same validated construction path the XML
//! loader uses, so generated platforms obey every template rule
//! (single master, mesh capacity, memory limits).
//!
//! ## Example
//!
//! ```
//! use mamps_platform::gen::{synthesize, ArchSpec};
//!
//! let spec: ArchSpec = "mesh:2x2".parse()?;
//! let arch = synthesize(&spec, "quad")?;
//! assert_eq!(arch.tile_count(), 4);
//! assert_eq!(arch.interconnect().kind_name(), "noc");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::str::FromStr;

use crate::arch::{ArchError, Architecture};
use crate::interconnect::Interconnect;
use crate::noc::NocConfig;

/// A parameterized platform shape: `fsl:N` or `mesh:WxH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchSpec {
    /// Point-to-point FSL star of `tiles` tiles (tile 0 is the master).
    Fsl {
        /// Tile count (at least 1).
        tiles: usize,
    },
    /// SDM mesh NoC of `width × height` tiles.
    Mesh {
        /// Mesh width in routers.
        width: u32,
        /// Mesh height in routers.
        height: u32,
    },
}

impl ArchSpec {
    /// Number of tiles the specification instantiates.
    pub fn tile_count(&self) -> usize {
        match self {
            ArchSpec::Fsl { tiles } => *tiles,
            ArchSpec::Mesh { width, height } => (*width as usize) * (*height as usize),
        }
    }

    /// Identifier-safe name, used in generated file names (`fsl3`,
    /// `mesh2x2`).
    pub fn slug(&self) -> String {
        match self {
            ArchSpec::Fsl { tiles } => format!("fsl{tiles}"),
            ArchSpec::Mesh { width, height } => format!("mesh{width}x{height}"),
        }
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchSpec::Fsl { tiles } => write!(f, "fsl:{tiles}"),
            ArchSpec::Mesh { width, height } => write!(f, "mesh:{width}x{height}"),
        }
    }
}

impl FromStr for ArchSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ArchSpec, String> {
        let bad = || format!("bad architecture spec `{s}` (expected `fsl:N` or `mesh:WxH`)");
        let (kind, dims) = s.split_once(':').ok_or_else(bad)?;
        match kind {
            "fsl" => {
                let tiles: usize = dims.parse().map_err(|_| bad())?;
                if tiles == 0 {
                    return Err(bad());
                }
                Ok(ArchSpec::Fsl { tiles })
            }
            "mesh" | "noc" => {
                let (w, h) = dims.split_once('x').ok_or_else(bad)?;
                let width: u32 = w.parse().map_err(|_| bad())?;
                let height: u32 = h.parse().map_err(|_| bad())?;
                if width == 0 || height == 0 {
                    return Err(bad());
                }
                Ok(ArchSpec::Mesh { width, height })
            }
            _ => Err(bad()),
        }
    }
}

/// Instantiates `spec` as a homogeneous MicroBlaze architecture named
/// `name`, through the same validation as hand-written platforms.
///
/// # Errors
///
/// Propagates [`ArchError`] from architecture validation (e.g. a mesh too
/// small for its tiles — impossible for specs built here, but the
/// validation still runs).
pub fn synthesize(spec: &ArchSpec, name: &str) -> Result<Architecture, ArchError> {
    match spec {
        ArchSpec::Fsl { tiles } => Architecture::homogeneous(name, *tiles, Interconnect::fsl()),
        ArchSpec::Mesh { width, height } => {
            let tiles = (*width as usize) * (*height as usize);
            let noc = NocConfig {
                width: *width,
                height: *height,
                ..NocConfig::for_tiles(tiles)
            };
            Architecture::homogeneous(name, tiles, Interconnect::Noc(noc))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_round_trips() {
        for (text, tiles) in [("fsl:3", 3), ("mesh:2x3", 6), ("mesh:4x4", 16)] {
            let spec: ArchSpec = text.parse().unwrap();
            assert_eq!(spec.tile_count(), tiles);
            assert_eq!(spec.to_string().parse::<ArchSpec>().unwrap(), spec);
        }
        assert_eq!(
            "noc:2x2".parse::<ArchSpec>().unwrap(),
            ArchSpec::Mesh {
                width: 2,
                height: 2
            }
        );
        for bad in ["fsl", "fsl:0", "mesh:2", "mesh:0x2", "ring:4", "mesh:axb"] {
            assert!(bad.parse::<ArchSpec>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn synthesized_platforms_validate_and_serialize() {
        for text in ["fsl:1", "fsl:4", "mesh:2x2", "mesh:3x2"] {
            let spec: ArchSpec = text.parse().unwrap();
            let arch = synthesize(&spec, "gen").unwrap();
            assert_eq!(arch.tile_count(), spec.tile_count());
            let xml = crate::xml::architecture_to_xml(&arch);
            let parsed = crate::xml::architecture_from_xml(&xml).unwrap();
            assert_eq!(crate::xml::architecture_to_xml(&parsed), xml);
        }
    }

    #[test]
    fn mesh_spec_sets_dimensions() {
        let arch = synthesize(&"mesh:3x2".parse().unwrap(), "m").unwrap();
        match arch.interconnect() {
            Interconnect::Noc(cfg) => assert_eq!((cfg.width, cfg.height), (3, 2)),
            other => panic!("expected noc, got {}", other.kind_name()),
        }
    }
}
