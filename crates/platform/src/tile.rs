//! Tile templates of the MAMPS architecture (paper §4, Fig. 3).
//!
//! A tile couples a processing element (PE) with local memories and a
//! network interface (NI). Four variants appear in the template:
//!
//! * **Master** — MicroBlaze PE with peripheral access (Tile 1 in Fig. 3).
//! * **Slave** — the same without peripherals (Tile 2).
//! * **CA tile** — a slave tile whose token (de-)serialization is offloaded
//!   to a communication assist (Tile 3); modelled after CA-MPSoC \[13\].
//! * **IP tile** — a hardware actor attached directly to the NI (Tile 4).
//!
//! The paper's released flow implements master and slave tiles; CA and IP
//! tiles exist in the template and the model (they drive the §6.3 what-if
//! experiment), which this reproduction implements end-to-end.

use serde::{Deserialize, Serialize};

use crate::types::ProcessorType;

/// Maximum local memory of a MAMPS tile (paper §5.3.2: up to 256 kB).
pub const MAX_TILE_MEMORY_BYTES: u64 = 256 * 1024;

/// The tile variant (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// MicroBlaze with peripheral access.
    Master,
    /// MicroBlaze without peripheral access.
    Slave,
    /// Slave tile with a communication assist handling (de-)serialization.
    CommunicationAssist,
    /// Dedicated hardware actor directly on the NI.
    HardwareIp,
}

/// Cost model for moving one token between local memory and the NI.
///
/// Serialization fragments a token into 32-bit words (paper §4.1). On a
/// plain tile the PE executes the loop, costing
/// `setup + words * cycles_per_word` PE cycles per token. On a CA tile the
/// PE only pays `setup` (posting the request) while the CA streams the words
/// concurrently at `cycles_per_word`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerializationCost {
    /// Fixed cycles per token (function call, header, bookkeeping).
    pub setup_cycles: u64,
    /// Cycles per 32-bit word moved.
    pub cycles_per_word: u64,
}

impl SerializationCost {
    /// The software (de-)serialization library of the MAMPS tiles: a C
    /// loop around the MicroBlaze FSL put/get instructions with pointer
    /// arithmetic, blocking-status checks and buffer bookkeeping per word.
    /// The §6.3 experiment implies this loop dominates the PE budget on
    /// communication-heavy tiles (replacing it with a CA buys up to 300 %),
    /// which calibrates it to the order of ten cycles per word.
    pub fn software_default() -> SerializationCost {
        SerializationCost {
            setup_cycles: 48,
            cycles_per_word: 12,
        }
    }

    /// The communication assist of CA-MPSoC \[13\]: dedicated hardware
    /// streaming one word per cycle.
    pub fn ca_default() -> SerializationCost {
        SerializationCost {
            setup_cycles: 10,
            cycles_per_word: 1,
        }
    }

    /// PE cycles consumed per token of `words` words.
    pub fn pe_cycles(&self, words: u64) -> u64 {
        self.setup_cycles + words * self.cycles_per_word
    }
}

/// Configuration of one tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConfig {
    name: String,
    kind: TileKind,
    processor: ProcessorType,
    /// Instruction memory in bytes (Harvard configuration).
    imem_bytes: u64,
    /// Data memory in bytes.
    dmem_bytes: u64,
    /// Software serialization cost on the PE.
    serialization: SerializationCost,
    /// Communication-assist cost (present on CA tiles).
    ca: Option<SerializationCost>,
}

impl TileConfig {
    /// Creates a master tile with default memory and serialization costs.
    pub fn master(name: impl Into<String>) -> TileConfig {
        TileConfig {
            name: name.into(),
            kind: TileKind::Master,
            processor: ProcessorType::microblaze(),
            imem_bytes: 128 * 1024,
            dmem_bytes: 128 * 1024,
            serialization: SerializationCost::software_default(),
            ca: None,
        }
    }

    /// Creates a slave tile with default memory and serialization costs.
    pub fn slave(name: impl Into<String>) -> TileConfig {
        TileConfig {
            kind: TileKind::Slave,
            ..TileConfig::master(name)
        }
    }

    /// Creates a CA tile: a slave whose serialization runs on a
    /// communication assist.
    pub fn with_communication_assist(name: impl Into<String>) -> TileConfig {
        TileConfig {
            kind: TileKind::CommunicationAssist,
            ca: Some(SerializationCost::ca_default()),
            ..TileConfig::master(name)
        }
    }

    /// Creates a hardware-IP tile for a dedicated actor.
    pub fn hardware_ip(name: impl Into<String>) -> TileConfig {
        TileConfig {
            kind: TileKind::HardwareIp,
            processor: ProcessorType::hardware_ip(),
            imem_bytes: 0,
            dmem_bytes: 0,
            serialization: SerializationCost {
                setup_cycles: 0,
                cycles_per_word: 1,
            },
            ca: None,
            name: name.into(),
        }
    }

    /// The tile's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tile variant.
    pub fn kind(&self) -> TileKind {
        self.kind
    }

    /// The processor type of the PE.
    pub fn processor(&self) -> &ProcessorType {
        &self.processor
    }

    /// Instruction memory in bytes.
    pub fn imem_bytes(&self) -> u64 {
        self.imem_bytes
    }

    /// Data memory in bytes.
    pub fn dmem_bytes(&self) -> u64 {
        self.dmem_bytes
    }

    /// Software serialization cost of the PE.
    pub fn serialization(&self) -> SerializationCost {
        self.serialization
    }

    /// Communication-assist cost, when present.
    pub fn ca(&self) -> Option<SerializationCost> {
        self.ca
    }

    /// True if the tile may access board peripherals.
    pub fn has_peripherals(&self) -> bool {
        self.kind == TileKind::Master
    }

    /// Sets the memory sizes (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the total exceeds [`MAX_TILE_MEMORY_BYTES`].
    pub fn with_memory(mut self, imem_bytes: u64, dmem_bytes: u64) -> TileConfig {
        assert!(
            imem_bytes + dmem_bytes <= MAX_TILE_MEMORY_BYTES,
            "tile memory {imem_bytes}+{dmem_bytes} exceeds the {MAX_TILE_MEMORY_BYTES}-byte limit"
        );
        self.imem_bytes = imem_bytes;
        self.dmem_bytes = dmem_bytes;
        self
    }

    /// Overrides the processor type (heterogeneous platforms).
    pub fn with_processor(mut self, processor: ProcessorType) -> TileConfig {
        self.processor = processor;
        self
    }

    /// Overrides the serialization cost model.
    pub fn with_serialization(mut self, cost: SerializationCost) -> TileConfig {
        self.serialization = cost;
        self
    }

    /// Overrides the communication-assist cost model (CA tiles only).
    ///
    /// # Panics
    ///
    /// Panics when called on a tile without a CA.
    pub fn with_ca_cost(mut self, cost: SerializationCost) -> TileConfig {
        assert!(
            self.ca.is_some(),
            "tile `{}` has no communication assist",
            self.name
        );
        self.ca = Some(cost);
        self
    }

    /// PE cycles charged for sending/receiving one token of `words` words:
    /// on CA tiles the PE pays only the setup, the CA moves the words.
    pub fn pe_token_overhead(&self, words: u64) -> u64 {
        match self.ca {
            Some(ca) => ca.setup_cycles,
            None => self.serialization.pe_cycles(words),
        }
    }

    /// Cycles the NI-side engine (PE loop or CA) needs to stream one token.
    pub fn stream_cycles(&self, words: u64) -> u64 {
        match self.ca {
            Some(ca) => ca.pe_cycles(words),
            None => self.serialization.pe_cycles(words),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants() {
        let m = TileConfig::master("t0");
        assert_eq!(m.kind(), TileKind::Master);
        assert!(m.has_peripherals());
        let s = TileConfig::slave("t1");
        assert_eq!(s.kind(), TileKind::Slave);
        assert!(!s.has_peripherals());
        let c = TileConfig::with_communication_assist("t2");
        assert_eq!(c.kind(), TileKind::CommunicationAssist);
        assert!(c.ca().is_some());
        let h = TileConfig::hardware_ip("t3");
        assert_eq!(h.kind(), TileKind::HardwareIp);
        assert_eq!(h.processor().name(), "hardware-ip");
    }

    #[test]
    fn serialization_costs() {
        let sw = SerializationCost::software_default();
        assert_eq!(sw.pe_cycles(10), 48 + 120);
        let ca = SerializationCost::ca_default();
        assert!(ca.pe_cycles(10) < sw.pe_cycles(10));
    }

    #[test]
    fn ca_offloads_pe() {
        let plain = TileConfig::slave("p");
        let ca = TileConfig::with_communication_assist("c");
        // Large tokens: CA tile PE overhead is constant, plain grows.
        assert!(ca.pe_token_overhead(100) < plain.pe_token_overhead(100));
        assert_eq!(ca.pe_token_overhead(100), ca.pe_token_overhead(1000));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn memory_limit_enforced() {
        let _ = TileConfig::master("big").with_memory(200 * 1024, 100 * 1024);
    }

    #[test]
    fn memory_override() {
        let t = TileConfig::slave("t").with_memory(64 * 1024, 32 * 1024);
        assert_eq!(t.imem_bytes(), 64 * 1024);
        assert_eq!(t.dmem_bytes(), 32 * 1024);
    }
}
