//! FPGA area model for the platform components.
//!
//! The paper reports one area figure: integrating the SDM NoC into MAMPS
//! required flow control, costing "approximately 12 % more slices on the
//! FPGA when compared to the original implementation" (§5.3.1). This module
//! provides a per-component area model, calibrated on published Virtex-6
//! figures for the MicroBlaze, FSL and SDM router, that reproduces that
//! relative overhead; absolute numbers are indicative only.

use std::ops::Add;

use serde::{Deserialize, Serialize};

use crate::arch::Architecture;
use crate::interconnect::Interconnect;
use crate::tile::TileKind;

/// FPGA resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Area {
    /// Virtex-6 slices.
    pub slices: u64,
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 kb block RAMs.
    pub bram36: u64,
}

impl Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area {
            slices: self.slices + rhs.slices,
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            bram36: self.bram36 + rhs.bram36,
        }
    }
}

impl std::iter::Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        iter.fold(Area::default(), Add::add)
    }
}

/// Area of one MicroBlaze PE (minimal configuration, Virtex-6).
pub fn microblaze() -> Area {
    Area {
        slices: 350,
        luts: 1100,
        ffs: 900,
        bram36: 0,
    }
}

/// Area of a network interface (FSL adapters + glue).
pub fn network_interface() -> Area {
    Area {
        slices: 60,
        luts: 180,
        ffs: 150,
        bram36: 0,
    }
}

/// Area of a communication assist (CA-MPSoC \[13\] style DMA engine).
pub fn communication_assist() -> Area {
    Area {
        slices: 220,
        luts: 700,
        ffs: 550,
        bram36: 1,
    }
}

/// Area of local memory: one BRAM36 per 4 kB.
pub fn memory(bytes: u64) -> Area {
    Area {
        slices: 0,
        luts: 0,
        ffs: 0,
        bram36: bytes.div_ceil(4 * 1024),
    }
}

/// Area of one FSL FIFO link.
pub fn fsl_link(fifo_depth: u64) -> Area {
    Area {
        slices: 20 + fifo_depth / 8,
        luts: 60 + fifo_depth / 2,
        ffs: 70 + fifo_depth / 2,
        bram36: 0,
    }
}

/// Area of one SDM NoC router, without flow control (as published in \[17\]).
pub fn noc_router_base(wires_per_link: u32) -> Area {
    let w = wires_per_link as u64;
    Area {
        slices: 150 + 25 * w,
        luts: 480 + 80 * w,
        ffs: 380 + 64 * w,
        bram36: 0,
    }
}

/// Area of one SDM NoC router including the credit-based flow control added
/// for MAMPS; ≈12 % more slices than [`noc_router_base`] (paper §5.3.1).
pub fn noc_router_with_flow_control(wires_per_link: u32) -> Area {
    let base = noc_router_base(wires_per_link);
    Area {
        slices: base.slices * 112 / 100,
        luts: base.luts * 112 / 100,
        ffs: base.ffs * 113 / 100,
        bram36: base.bram36,
    }
}

/// Area summary of a full platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Per-tile area (PE + NI + memories + optional CA).
    pub tiles: Vec<Area>,
    /// Total interconnect area.
    pub interconnect: Area,
    /// Grand total.
    pub total: Area,
}

/// Computes the area of `arch` assuming `links` point-to-point connections
/// for an FSL interconnect (NoC area depends only on the mesh).
pub fn platform_area(arch: &Architecture, links: usize) -> AreaReport {
    let tiles: Vec<Area> = arch
        .tiles()
        .iter()
        .map(|t| {
            let pe = match t.kind() {
                TileKind::HardwareIp => Area {
                    slices: 500,
                    luts: 1500,
                    ffs: 1200,
                    bram36: 2,
                },
                _ => microblaze(),
            };
            let ca = match t.kind() {
                TileKind::CommunicationAssist => communication_assist(),
                _ => Area::default(),
            };
            pe + network_interface() + memory(t.imem_bytes() + t.dmem_bytes()) + ca
        })
        .collect();
    let interconnect = match arch.interconnect() {
        Interconnect::Fsl { fifo_depth } => (0..links).map(|_| fsl_link(*fifo_depth)).sum(),
        Interconnect::Noc(noc) => {
            let per_router = if noc.flow_control {
                noc_router_with_flow_control(noc.wires_per_link)
            } else {
                noc_router_base(noc.wires_per_link)
            };
            (0..noc.router_count()).map(|_| per_router).sum()
        }
    };
    let total = tiles.iter().copied().sum::<Area>() + interconnect;
    AreaReport {
        tiles,
        interconnect,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;

    #[test]
    fn flow_control_overhead_is_about_12_percent() {
        for wires in [1u32, 2, 4, 8] {
            let base = noc_router_base(wires).slices as f64;
            let fc = noc_router_with_flow_control(wires).slices as f64;
            let overhead = (fc - base) / base;
            assert!(
                (0.10..=0.14).contains(&overhead),
                "overhead {overhead:.3} for {wires} wires outside 10-14 %"
            );
        }
    }

    #[test]
    fn area_addition() {
        let a = microblaze() + network_interface();
        assert_eq!(a.slices, 410);
        let sum: Area = vec![memory(4096), memory(8192)].into_iter().sum();
        assert_eq!(sum.bram36, 3);
    }

    #[test]
    fn memory_rounds_up_to_bram() {
        assert_eq!(memory(1).bram36, 1);
        assert_eq!(memory(4096).bram36, 1);
        assert_eq!(memory(4097).bram36, 2);
        assert_eq!(memory(256 * 1024).bram36, 64);
    }

    #[test]
    fn platform_area_totals() {
        let arch = Architecture::homogeneous("a", 4, Interconnect::fsl()).unwrap();
        let report = platform_area(&arch, 3);
        assert_eq!(report.tiles.len(), 4);
        let tiles_total: Area = report.tiles.iter().copied().sum();
        assert_eq!(
            report.total.slices,
            tiles_total.slices + report.interconnect.slices
        );
        assert!(report.total.slices > 0);
        assert!(report.total.bram36 > 0);
    }

    #[test]
    fn noc_platform_larger_than_fsl() {
        // Paper §5.3.1: the NoC costs "a larger implementation".
        let fsl = Architecture::homogeneous("f", 4, Interconnect::fsl()).unwrap();
        let noc = Architecture::homogeneous("n", 4, Interconnect::noc_for_tiles(4)).unwrap();
        let fsl_area = platform_area(&fsl, 4);
        let noc_area = platform_area(&noc, 4);
        assert!(noc_area.interconnect.slices > fsl_area.interconnect.slices);
    }

    #[test]
    fn ca_tile_costs_more() {
        let plain = Architecture::homogeneous("p", 2, Interconnect::fsl()).unwrap();
        let ca = Architecture::homogeneous_with_ca("c", 2, Interconnect::fsl()).unwrap();
        let a_plain = platform_area(&plain, 1);
        let a_ca = platform_area(&ca, 1);
        assert!(a_ca.total.slices > a_plain.total.slices);
    }
}
