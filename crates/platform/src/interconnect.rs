//! Interconnect variants and the Fig. 4 communication parameters.
//!
//! Two interconnects are available (paper §5.3.1): point-to-point Xilinx
//! Fast Simplex Links (FSL) and the SDM mesh NoC. Both implement the same
//! network interface, so the tile template composes with either. For every
//! connection, [`CommParams`] captures the parameters of the paper's Fig. 4
//! communication model:
//!
//! * `w` — initial tokens of the interconnect pipeline: the maximum number
//!   of words simultaneously in transmission;
//! * `alpha_n` — words of buffering inside the connection;
//! * `latency` — execution time of the latency actor `c1`;
//! * `cycles_per_word` — execution time of the rate actor `c2`.

use serde::{Deserialize, Serialize};

use crate::noc::NocConfig;
use crate::types::TileId;

/// Depth of an FSL FIFO in 32-bit words (Xilinx default).
pub const DEFAULT_FSL_DEPTH: u64 = 16;

/// The interconnect of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interconnect {
    /// Dedicated point-to-point FIFOs (Xilinx FSL \[15\]).
    Fsl {
        /// FIFO depth in words.
        fifo_depth: u64,
    },
    /// The SDM mesh NoC with programmed connections.
    Noc(NocConfig),
}

impl Interconnect {
    /// FSL links with the default FIFO depth.
    pub fn fsl() -> Interconnect {
        Interconnect::Fsl {
            fifo_depth: DEFAULT_FSL_DEPTH,
        }
    }

    /// An SDM NoC sized for `tiles` tiles.
    pub fn noc_for_tiles(tiles: usize) -> Interconnect {
        Interconnect::Noc(NocConfig::for_tiles(tiles))
    }

    /// Short, stable name for reports (`"fsl"` / `"noc"`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Interconnect::Fsl { .. } => "fsl",
            Interconnect::Noc(_) => "noc",
        }
    }
}

/// Fig. 4 model parameters of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommParams {
    /// Maximum words simultaneously in transmission (`w` in Fig. 4).
    pub w: u64,
    /// Words of buffering within the connection (`alpha_n` in Fig. 4).
    pub alpha_n: u64,
    /// Per-word latency through the connection (`c1` execution time).
    pub latency: u64,
    /// Sustained cycles per word (`c2` execution time; 1/bandwidth).
    pub cycles_per_word: u64,
}

impl CommParams {
    /// Parameters of a connection over `interconnect` from `src` to `dst`,
    /// given the SDM wires assigned to it on a NoC (ignored for FSL).
    ///
    /// FSL: a dedicated FIFO transfers one word per cycle with one register
    /// of latency; the FIFO itself is the in-connection buffer.
    ///
    /// NoC: an XY route of `h` hops pipelines `h` words (one per router
    /// stage), buffers `h * buffer_words_per_hop` words, adds
    /// `h * router_latency` cycles of latency, and sustains one word per
    /// `ceil(32 / wires)` cycles — each SDM wire carries one bit per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `wires == 0` on a NoC connection.
    pub fn for_connection(
        interconnect: &Interconnect,
        src: TileId,
        dst: TileId,
        wires: u32,
    ) -> CommParams {
        match interconnect {
            Interconnect::Fsl { fifo_depth } => CommParams {
                w: 1,
                alpha_n: *fifo_depth,
                latency: 1,
                cycles_per_word: 1,
            },
            Interconnect::Noc(noc) => {
                assert!(wires > 0, "NoC connections need at least one SDM wire");
                let hops = noc.hops(src, dst).max(1);
                CommParams {
                    w: hops,
                    alpha_n: hops * noc.buffer_words_per_hop,
                    latency: hops * noc.router_latency,
                    cycles_per_word: 32u64.div_ceil(wires as u64),
                }
            }
        }
    }

    /// Parameters for a channel whose endpoints share a tile: communication
    /// happens through local memory, modelled as a single-cycle unbounded
    /// "connection" (the mapping flow does not expand such channels).
    pub fn local() -> CommParams {
        CommParams {
            w: 1,
            alpha_n: 1,
            latency: 0,
            cycles_per_word: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsl_params() {
        let p = CommParams::for_connection(&Interconnect::fsl(), TileId(0), TileId(1), 0);
        assert_eq!(p.w, 1);
        assert_eq!(p.alpha_n, DEFAULT_FSL_DEPTH);
        assert_eq!(p.cycles_per_word, 1);
        assert_eq!(p.latency, 1);
    }

    #[test]
    fn noc_params_scale_with_distance() {
        let ic = Interconnect::noc_for_tiles(9); // 3x3
        let near = CommParams::for_connection(&ic, TileId(0), TileId(1), 4);
        let far = CommParams::for_connection(&ic, TileId(0), TileId(8), 4);
        assert!(far.latency > near.latency);
        assert!(far.w > near.w);
        assert!(far.alpha_n > near.alpha_n);
        assert_eq!(near.cycles_per_word, far.cycles_per_word);
    }

    #[test]
    fn noc_bandwidth_scales_with_wires() {
        let ic = Interconnect::noc_for_tiles(4);
        let one = CommParams::for_connection(&ic, TileId(0), TileId(1), 1);
        let four = CommParams::for_connection(&ic, TileId(0), TileId(1), 4);
        assert_eq!(one.cycles_per_word, 32);
        assert_eq!(four.cycles_per_word, 8);
    }

    #[test]
    fn noc_fsl_latency_comparison() {
        // Paper §5.3.1: the NoC provides flexibility "at the cost of a
        // larger implementation and a higher latency".
        let fsl = CommParams::for_connection(&Interconnect::fsl(), TileId(0), TileId(1), 0);
        let noc =
            CommParams::for_connection(&Interconnect::noc_for_tiles(4), TileId(0), TileId(1), 4);
        assert!(noc.latency > fsl.latency);
        assert!(noc.cycles_per_word > fsl.cycles_per_word);
    }

    #[test]
    #[should_panic(expected = "at least one SDM wire")]
    fn zero_wires_panics() {
        let ic = Interconnect::noc_for_tiles(4);
        let _ = CommParams::for_connection(&ic, TileId(0), TileId(1), 0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(Interconnect::fsl().kind_name(), "fsl");
        assert_eq!(Interconnect::noc_for_tiles(2).kind_name(), "noc");
    }

    #[test]
    fn local_params_are_free() {
        let p = CommParams::local();
        assert_eq!(p.cycles_per_word, 0);
        assert_eq!(p.latency, 0);
    }
}
