//! The Spatial-Division-Multiplex (SDM) mesh NoC (paper §5.3.1, after \[17\]).
//!
//! One router per tile, arranged in a 2-D mesh kept as close to square as
//! possible (the maximum distance between tiles relates directly to
//! connection latency). Connections are programmed point-to-point: each is
//! assigned a number of *wires* on every link along its XY route. A wire
//! belongs to exactly one connection at a time — spatial division
//! multiplexing — so allocated bandwidth is guaranteed, and the integration
//! into MAMPS added credit-based flow control (costing ≈12 % extra slices,
//! see [`crate::area`]).

use serde::{Deserialize, Serialize};

use crate::types::TileId;

/// Position of a router in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column (0-based).
    pub x: u32,
    /// Row (0-based).
    pub y: u32,
}

/// A directed link between two neighbouring routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Link {
    /// Source router.
    pub from: (u32, u32),
    /// Destination router (4-neighbour).
    pub to: (u32, u32),
}

/// Static NoC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh width (columns).
    pub width: u32,
    /// Mesh height (rows).
    pub height: u32,
    /// Wires per directed link available for SDM allocation.
    pub wires_per_link: u32,
    /// Pipeline latency of one router hop, in cycles.
    pub router_latency: u64,
    /// Words of buffering per router on each connection's path.
    pub buffer_words_per_hop: u64,
    /// Credit-based flow control (the MAMPS integration adds this; the
    /// original NoC \[17\] lacked it).
    pub flow_control: bool,
}

impl NocConfig {
    /// A NoC sized for `tiles` tiles with default parameters.
    pub fn for_tiles(tiles: usize) -> NocConfig {
        let (width, height) = mesh_dimensions(tiles);
        NocConfig {
            width,
            height,
            wires_per_link: 8,
            router_latency: 2,
            buffer_words_per_hop: 2,
            flow_control: true,
        }
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Coordinate of the router attached to `tile` (row-major placement).
    ///
    /// # Panics
    ///
    /// Panics if the tile index does not fit the mesh.
    pub fn tile_coord(&self, tile: TileId) -> Coord {
        let idx = tile.0 as u32;
        assert!(
            idx < self.width * self.height,
            "tile {tile} does not fit a {}x{} mesh",
            self.width,
            self.height
        );
        Coord {
            x: idx % self.width,
            y: idx / self.width,
        }
    }

    /// XY (dimension-ordered) route between two tiles: first along X, then
    /// along Y. Deterministic and deadlock-free.
    pub fn route(&self, from: TileId, to: TileId) -> Vec<Link> {
        let a = self.tile_coord(from);
        let b = self.tile_coord(to);
        let mut links = Vec::new();
        let (mut x, mut y) = (a.x, a.y);
        while x != b.x {
            let nx = if b.x > x { x + 1 } else { x - 1 };
            links.push(Link {
                from: (x, y),
                to: (nx, y),
            });
            x = nx;
        }
        while y != b.y {
            let ny = if b.y > y { y + 1 } else { y - 1 };
            links.push(Link {
                from: (x, y),
                to: (x, ny),
            });
            y = ny;
        }
        links
    }

    /// Number of hops between two tiles (route length).
    pub fn hops(&self, from: TileId, to: TileId) -> u64 {
        let a = self.tile_coord(from);
        let b = self.tile_coord(to);
        (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as u64
    }
}

/// Chooses near-square mesh dimensions for `tiles` tiles (paper §5.3.1:
/// "the network is kept as close to square as possible").
pub fn mesh_dimensions(tiles: usize) -> (u32, u32) {
    let n = tiles.max(1) as u32;
    let mut w = (n as f64).sqrt().ceil() as u32;
    w = w.max(1);
    let h = n.div_ceil(w);
    (w, h)
}

/// Error produced when SDM wire allocation fails.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireAllocationError {
    /// The saturated link.
    pub link: Link,
    /// Wires requested on that link.
    pub requested: u32,
    /// Wires still free on that link.
    pub available: u32,
}

impl std::fmt::Display for WireAllocationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link {:?}->{:?} has {} free wires, {} requested",
            self.link.from, self.link.to, self.available, self.requested
        )
    }
}

impl std::error::Error for WireAllocationError {}

/// Tracks per-link wire usage while connections are programmed.
#[derive(Debug, Clone)]
pub struct WireAllocator {
    config: NocConfig,
    used: std::collections::HashMap<Link, u32>,
}

impl WireAllocator {
    /// Creates an allocator for `config` with all wires free.
    pub fn new(config: NocConfig) -> WireAllocator {
        WireAllocator {
            config,
            used: std::collections::HashMap::new(),
        }
    }

    /// Free wires on `link`.
    pub fn free_on(&self, link: Link) -> u32 {
        self.config.wires_per_link - self.used.get(&link).copied().unwrap_or(0)
    }

    /// Reserves `wires` wires on every link of the route `from -> to`.
    ///
    /// Returns the route on success. Nothing is reserved on failure.
    ///
    /// # Errors
    ///
    /// [`WireAllocationError`] naming the first saturated link.
    pub fn allocate(
        &mut self,
        from: TileId,
        to: TileId,
        wires: u32,
    ) -> Result<Vec<Link>, WireAllocationError> {
        let route = self.config.route(from, to);
        for &link in &route {
            let available = self.free_on(link);
            if available < wires {
                return Err(WireAllocationError {
                    link,
                    requested: wires,
                    available,
                });
            }
        }
        for &link in &route {
            *self.used.entry(link).or_insert(0) += wires;
        }
        Ok(route)
    }

    /// Maximum wires allocatable on the whole route `from -> to`.
    pub fn max_allocatable(&self, from: TileId, to: TileId) -> u32 {
        self.config
            .route(from, to)
            .iter()
            .map(|&l| self.free_on(l))
            .min()
            .unwrap_or(self.config.wires_per_link)
    }

    /// The NoC configuration this allocator manages.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_dimensions_near_square() {
        assert_eq!(mesh_dimensions(1), (1, 1));
        assert_eq!(mesh_dimensions(2), (2, 1));
        assert_eq!(mesh_dimensions(4), (2, 2));
        assert_eq!(mesh_dimensions(5), (3, 2));
        assert_eq!(mesh_dimensions(9), (3, 3));
        assert_eq!(mesh_dimensions(10), (4, 3));
        // Capacity always sufficient.
        for n in 1..50 {
            let (w, h) = mesh_dimensions(n);
            assert!((w * h) as usize >= n);
            assert!(w.abs_diff(h) <= 1, "{n} tiles -> {w}x{h} not near-square");
        }
    }

    #[test]
    fn xy_route_properties() {
        let noc = NocConfig::for_tiles(9); // 3x3
        let route = noc.route(TileId(0), TileId(8)); // (0,0) -> (2,2)
        assert_eq!(route.len(), 4);
        // X first, then Y.
        assert_eq!(route[0].from, (0, 0));
        assert_eq!(route[0].to, (1, 0));
        assert_eq!(route[3].to, (2, 2));
        assert_eq!(noc.hops(TileId(0), TileId(8)), 4);
        assert!(noc.route(TileId(4), TileId(4)).is_empty());
    }

    #[test]
    fn wire_allocation_exhaustion() {
        let noc = NocConfig {
            wires_per_link: 2,
            ..NocConfig::for_tiles(4)
        };
        let mut alloc = WireAllocator::new(noc);
        assert!(alloc.allocate(TileId(0), TileId(1), 1).is_ok());
        assert!(alloc.allocate(TileId(0), TileId(1), 1).is_ok());
        let err = alloc.allocate(TileId(0), TileId(1), 1).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.requested, 1);
    }

    #[test]
    fn failed_allocation_reserves_nothing() {
        let noc = NocConfig {
            wires_per_link: 2,
            ..NocConfig::for_tiles(4)
        }; // 2x2 mesh
        let mut alloc = WireAllocator::new(noc);
        // Saturate link (1,0)->(1,1) via the route 0->3 (x first: (0,0)->(1,0)->(1,1)).
        alloc.allocate(TileId(0), TileId(3), 2).unwrap();
        // Route 1->3 uses (1,0)->(1,1), which is full.
        let before = alloc.free_on(Link {
            from: (1, 0),
            to: (1, 1),
        });
        assert!(alloc.allocate(TileId(1), TileId(3), 1).is_err());
        let after = alloc.free_on(Link {
            from: (1, 0),
            to: (1, 1),
        });
        assert_eq!(before, after);
    }

    #[test]
    fn max_allocatable_reflects_bottleneck() {
        let noc = NocConfig {
            wires_per_link: 4,
            ..NocConfig::for_tiles(4)
        };
        let mut alloc = WireAllocator::new(noc);
        alloc.allocate(TileId(0), TileId(1), 3).unwrap();
        assert_eq!(alloc.max_allocatable(TileId(0), TileId(1)), 1);
        // The reverse direction is a different set of links.
        assert_eq!(alloc.max_allocatable(TileId(1), TileId(0)), 4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_tile_index_panics() {
        let noc = NocConfig::for_tiles(4);
        let _ = noc.tile_coord(TileId(99));
    }
}
