//! The architecture model: a validated set of tiles plus an interconnect
//! (paper §4), and the automated architecture-model generation used by the
//! flow (Table 1: "Generating architecture model — 1 second").

use serde::{Deserialize, Serialize};

use crate::arbiter::TdmArbiter;
use crate::interconnect::Interconnect;
use crate::noc::mesh_dimensions;
use crate::tile::{TileConfig, TileKind, MAX_TILE_MEMORY_BYTES};
use crate::types::{ProcessorType, TileId};

/// Errors produced while building or validating an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The architecture violates a structural rule; the message explains.
    Invalid(String),
}

impl std::fmt::Display for ArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchError::Invalid(m) => write!(f, "invalid architecture: {m}"),
        }
    }
}

impl std::error::Error for ArchError {}

/// A validated MPSoC architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    name: String,
    tiles: Vec<TileConfig>,
    interconnect: Interconnect,
    /// Platform clock in MHz (the ML605 designs run at 100 MHz). Only used
    /// to convert cycle counts into wall-clock figures for reports.
    clock_mhz: u64,
    /// Predictable TDM arbiter for shared peripherals (the paper's §7
    /// future-work item, after Predator [1]). When present, multiple
    /// peripheral-owning tiles are allowed; their peripheral-access WCETs
    /// must be inflated with the arbiter's worst-case latency.
    peripheral_arbiter: Option<TdmArbiter>,
}

impl Architecture {
    /// Builds and validates an architecture.
    ///
    /// # Errors
    ///
    /// [`ArchError::Invalid`] if there are no tiles, tile names collide,
    /// more than one master tile exists (peripherals are not shared — paper
    /// §4 guarantees predictability by avoiding shared peripherals), a tile
    /// exceeds the memory limit, or a NoC mesh is too small for the tiles.
    pub fn new(
        name: impl Into<String>,
        tiles: Vec<TileConfig>,
        interconnect: Interconnect,
    ) -> Result<Architecture, ArchError> {
        let name = name.into();
        if tiles.is_empty() {
            return Err(ArchError::Invalid("architecture has no tiles".into()));
        }
        let mut names = std::collections::HashSet::new();
        for t in &tiles {
            if !names.insert(t.name().to_string()) {
                return Err(ArchError::Invalid(format!(
                    "duplicate tile name `{}`",
                    t.name()
                )));
            }
            if t.imem_bytes() + t.dmem_bytes() > MAX_TILE_MEMORY_BYTES {
                return Err(ArchError::Invalid(format!(
                    "tile `{}` exceeds the {MAX_TILE_MEMORY_BYTES}-byte memory limit",
                    t.name()
                )));
            }
        }
        let masters = tiles
            .iter()
            .filter(|t| t.kind() == TileKind::Master)
            .count();
        if masters > 1 {
            return Err(ArchError::Invalid(format!(
                "{masters} master tiles; peripherals must not be shared \
                 (add a predictable arbiter via with_peripheral_arbiter)"
            )));
        }
        if let Interconnect::Noc(noc) = &interconnect {
            if noc.router_count() < tiles.len() {
                return Err(ArchError::Invalid(format!(
                    "{}x{} mesh has {} routers for {} tiles",
                    noc.width,
                    noc.height,
                    noc.router_count(),
                    tiles.len()
                )));
            }
        }
        Ok(Architecture {
            name,
            tiles,
            interconnect,
            clock_mhz: 100,
            peripheral_arbiter: None,
        })
    }

    /// Builds an architecture in which several master tiles share the
    /// peripherals through a predictable TDM arbiter. Every master tile
    /// must own at least one slot of the table.
    ///
    /// # Errors
    ///
    /// The errors of [`Architecture::new`], plus [`ArchError::Invalid`] if
    /// a master tile has no TDM slot.
    pub fn with_peripheral_arbiter(
        name: impl Into<String>,
        tiles: Vec<TileConfig>,
        interconnect: Interconnect,
        arbiter: TdmArbiter,
    ) -> Result<Architecture, ArchError> {
        // Reuse the base validation with the single-master rule suspended:
        // temporarily validate with all masters demoted is intrusive, so
        // duplicate the relevant checks instead.
        if tiles.is_empty() {
            return Err(ArchError::Invalid("architecture has no tiles".into()));
        }
        let mut names = std::collections::HashSet::new();
        for t in &tiles {
            if !names.insert(t.name().to_string()) {
                return Err(ArchError::Invalid(format!(
                    "duplicate tile name `{}`",
                    t.name()
                )));
            }
            if t.imem_bytes() + t.dmem_bytes() > MAX_TILE_MEMORY_BYTES {
                return Err(ArchError::Invalid(format!(
                    "tile `{}` exceeds the {MAX_TILE_MEMORY_BYTES}-byte memory limit",
                    t.name()
                )));
            }
        }
        if let Interconnect::Noc(noc) = &interconnect {
            if noc.router_count() < tiles.len() {
                return Err(ArchError::Invalid(format!(
                    "mesh has {} routers for {} tiles",
                    noc.router_count(),
                    tiles.len()
                )));
            }
        }
        for (i, t) in tiles.iter().enumerate() {
            if t.kind() == TileKind::Master && arbiter.slots_of(TileId(i)) == 0 {
                return Err(ArchError::Invalid(format!(
                    "master tile `{}` has no slot in the peripheral TDM table",
                    t.name()
                )));
            }
        }
        Ok(Architecture {
            name: name.into(),
            tiles,
            interconnect,
            clock_mhz: 100,
            peripheral_arbiter: Some(arbiter),
        })
    }

    /// The shared-peripheral arbiter, when configured.
    pub fn peripheral_arbiter(&self) -> Option<&TdmArbiter> {
        self.peripheral_arbiter.as_ref()
    }

    /// Generates a homogeneous architecture of `n` MicroBlaze tiles (one
    /// master, the rest slaves) — the automated "architecture model
    /// generation" step of the flow.
    ///
    /// # Errors
    ///
    /// Propagates validation errors (e.g. `n == 0`).
    pub fn homogeneous(
        name: impl Into<String>,
        n: usize,
        interconnect: Interconnect,
    ) -> Result<Architecture, ArchError> {
        let tiles = (0..n)
            .map(|i| {
                if i == 0 {
                    TileConfig::master(format!("tile{i}"))
                } else {
                    TileConfig::slave(format!("tile{i}"))
                }
            })
            .collect();
        Architecture::new(name, tiles, interconnect)
    }

    /// Like [`homogeneous`](Self::homogeneous) but every tile carries a
    /// communication assist (the §6.3 what-if platform).
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn homogeneous_with_ca(
        name: impl Into<String>,
        n: usize,
        interconnect: Interconnect,
    ) -> Result<Architecture, ArchError> {
        let tiles = (0..n)
            .map(|i| TileConfig::with_communication_assist(format!("tile{i}")))
            .collect();
        Architecture::new(name, tiles, interconnect)
    }

    /// The architecture's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tiles, indexable by [`TileId`].
    pub fn tiles(&self) -> &[TileConfig] {
        &self.tiles
    }

    /// One tile by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn tile(&self, id: TileId) -> &TileConfig {
        &self.tiles[id.0]
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// The interconnect.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Platform clock in MHz.
    pub fn clock_mhz(&self) -> u64 {
        self.clock_mhz
    }

    /// Overrides the platform clock (builder style).
    pub fn with_clock_mhz(mut self, mhz: u64) -> Architecture {
        self.clock_mhz = mhz;
        self
    }

    /// Tiles whose processor type is `pt`.
    pub fn tiles_of_type(&self, pt: &ProcessorType) -> Vec<TileId> {
        self.tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.processor() == pt)
            .map(|(i, _)| TileId(i))
            .collect()
    }
}

/// Suggests an architecture for an application with `actor_count` actors:
/// one tile per actor capped at `max_tiles`, NoC mesh sized to fit. This is
/// the template instantiation entry point of the automated flow.
pub fn suggest_tile_count(actor_count: usize, max_tiles: usize) -> usize {
    actor_count.clamp(1, max_tiles.max(1))
}

/// Reports the mesh that [`Interconnect::noc_for_tiles`] would build.
pub fn suggested_mesh(tiles: usize) -> (u32, u32) {
    mesh_dimensions(tiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_has_one_master() {
        let a = Architecture::homogeneous("a", 5, Interconnect::fsl()).unwrap();
        assert_eq!(a.tile_count(), 5);
        let masters = a
            .tiles()
            .iter()
            .filter(|t| t.kind() == TileKind::Master)
            .count();
        assert_eq!(masters, 1);
        assert_eq!(a.tile(TileId(0)).kind(), TileKind::Master);
        assert_eq!(a.tile(TileId(1)).kind(), TileKind::Slave);
    }

    #[test]
    fn empty_rejected() {
        assert!(Architecture::new("e", vec![], Interconnect::fsl()).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let tiles = vec![TileConfig::master("t"), TileConfig::slave("t")];
        assert!(Architecture::new("d", tiles, Interconnect::fsl()).is_err());
    }

    #[test]
    fn two_masters_rejected() {
        let tiles = vec![TileConfig::master("a"), TileConfig::master("b")];
        assert!(Architecture::new("m", tiles, Interconnect::fsl()).is_err());
    }

    #[test]
    fn undersized_mesh_rejected() {
        let noc = crate::noc::NocConfig::for_tiles(2); // 2x1
        let tiles = vec![
            TileConfig::master("a"),
            TileConfig::slave("b"),
            TileConfig::slave("c"),
        ];
        assert!(Architecture::new("u", tiles, Interconnect::Noc(noc)).is_err());
    }

    #[test]
    fn noc_fits_tiles() {
        let a = Architecture::homogeneous("n", 5, Interconnect::noc_for_tiles(5)).unwrap();
        match a.interconnect() {
            Interconnect::Noc(noc) => assert!(noc.router_count() >= 5),
            _ => panic!("expected NoC"),
        }
    }

    #[test]
    fn tiles_of_type_query() {
        let a = Architecture::homogeneous("a", 3, Interconnect::fsl()).unwrap();
        assert_eq!(a.tiles_of_type(&ProcessorType::microblaze()).len(), 3);
        assert_eq!(a.tiles_of_type(&ProcessorType::hardware_ip()).len(), 0);
    }

    #[test]
    fn suggestion_helpers() {
        assert_eq!(suggest_tile_count(5, 4), 4);
        assert_eq!(suggest_tile_count(2, 4), 2);
        assert_eq!(suggest_tile_count(0, 4), 1);
        assert_eq!(suggested_mesh(5), (3, 2));
    }

    #[test]
    fn clock_override() {
        let a = Architecture::homogeneous("c", 1, Interconnect::fsl())
            .unwrap()
            .with_clock_mhz(150);
        assert_eq!(a.clock_mhz(), 150);
    }
}
