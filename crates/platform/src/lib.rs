//! # mamps-platform — the MAMPS template-based MPSoC architecture model
//!
//! Implements the architecture side of the paper (§4 and §5.3): tile
//! templates (master, slave, communication-assist, hardware-IP), the two
//! interconnects (point-to-point FSL and the SDM mesh NoC with XY routing
//! and per-connection wire allocation), the Fig. 4 communication parameters
//! of each interconnect, an FPGA area model (including the ≈12 % slice
//! overhead of NoC flow control), and validated architecture construction
//! with automated template instantiation.
//!
//! ## Example
//!
//! ```
//! use mamps_platform::arch::Architecture;
//! use mamps_platform::interconnect::{CommParams, Interconnect};
//! use mamps_platform::types::TileId;
//!
//! let arch = Architecture::homogeneous("demo", 4, Interconnect::noc_for_tiles(4))?;
//! let params = CommParams::for_connection(arch.interconnect(), TileId(0), TileId(3), 2);
//! assert_eq!(params.cycles_per_word, 16); // 32 bits over 2 one-bit wires
//! # Ok::<(), mamps_platform::arch::ArchError>(())
//! ```

pub mod arbiter;
pub mod arch;
pub mod area;
pub mod gen;
pub mod interconnect;
pub mod noc;
pub mod tile;
pub mod types;
pub mod xml;

pub use arbiter::TdmArbiter;
pub use arch::{ArchError, Architecture};
pub use area::{platform_area, Area, AreaReport};
pub use gen::ArchSpec;
pub use interconnect::{CommParams, Interconnect};
pub use noc::{NocConfig, WireAllocator};
pub use tile::{SerializationCost, TileConfig, TileKind};
pub use types::{ProcessorType, TileId};
