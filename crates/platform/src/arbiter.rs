//! Predictable TDM arbitration for shared resources — the paper's §7
//! future-work item: "Adding a predictable arbiter could enable multiple
//! tiles in accessing peripherals while keeping a predictable system",
//! following the approach of Predator \[1\] (Akesson et al., CODES+ISSS
//! 2007).
//!
//! A [`TdmArbiter`] grants a shared resource (peripheral, SDRAM port) in a
//! fixed time-division-multiplex table. Each requestor's worst-case service
//! latency is the longest wait between issuing a request and completing the
//! access, which is composable into actor WCETs: an actor performing `k`
//! accesses per firing on a shared peripheral executes at most
//! `wcet + k * worst_case_access(tile)` cycles. This keeps the whole flow
//! predictable while lifting the MAMPS restriction of a single
//! peripheral-owning tile (paper §4).

use serde::{Deserialize, Serialize};

use crate::types::TileId;

/// A time-division-multiplex arbiter over a shared resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TdmArbiter {
    /// Cycles per TDM slot (one access completes within a slot).
    slot_cycles: u64,
    /// The slot table: the tile granted in each slot, repeated cyclically.
    table: Vec<TileId>,
}

impl TdmArbiter {
    /// Creates an arbiter from a slot table.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or `slot_cycles` is zero.
    pub fn new(slot_cycles: u64, table: Vec<TileId>) -> TdmArbiter {
        assert!(!table.is_empty(), "TDM table must have at least one slot");
        assert!(slot_cycles > 0, "slots must be at least one cycle");
        TdmArbiter { slot_cycles, table }
    }

    /// An equal-share arbiter: one slot per tile, round robin.
    pub fn round_robin(slot_cycles: u64, tiles: &[TileId]) -> TdmArbiter {
        TdmArbiter::new(slot_cycles, tiles.to_vec())
    }

    /// Cycles per slot.
    pub fn slot_cycles(&self) -> u64 {
        self.slot_cycles
    }

    /// The slot table.
    pub fn table(&self) -> &[TileId] {
        &self.table
    }

    /// The TDM period in cycles.
    pub fn period_cycles(&self) -> u64 {
        self.table.len() as u64 * self.slot_cycles
    }

    /// Number of slots granted to `tile` per period.
    pub fn slots_of(&self, tile: TileId) -> usize {
        self.table.iter().filter(|&&t| t == tile).count()
    }

    /// Worst-case cycles from issuing one access to completing it, for
    /// `tile`: the longest gap to the tile's next slot (a request can
    /// arrive one cycle after its slot started) plus the access slot
    /// itself. Returns `None` if the tile has no slot (it must not access
    /// the resource at all).
    pub fn worst_case_access(&self, tile: TileId) -> Option<u64> {
        let positions: Vec<usize> = self
            .table
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == tile)
            .map(|(i, _)| i)
            .collect();
        if positions.is_empty() {
            return None;
        }
        // Largest distance (in slots) from just after one own slot start to
        // the start of the next own slot, cyclically.
        let n = self.table.len();
        let max_gap_slots = positions
            .iter()
            .enumerate()
            .map(|(k, &p)| {
                let next = positions[(k + 1) % positions.len()];
                let d = (next + n - p) % n;
                if d == 0 {
                    n // single own slot: a miss waits a whole period
                } else {
                    d
                }
            })
            .max()
            .expect("non-empty positions");
        // The request may just miss its own slot: wait the full gap, then
        // be served in one slot.
        Some(max_gap_slots as u64 * self.slot_cycles + self.slot_cycles)
    }

    /// Inflates an actor WCET with the worst case of `accesses` shared
    /// accesses per firing from `tile`.
    ///
    /// # Errors
    ///
    /// Returns an error string if the tile has no slot in the table.
    pub fn inflate_wcet(&self, wcet: u64, tile: TileId, accesses: u64) -> Result<u64, String> {
        if accesses == 0 {
            return Ok(wcet);
        }
        let per_access = self
            .worst_case_access(tile)
            .ok_or_else(|| format!("{tile} has no slot in the TDM table"))?;
        Ok(wcet + accesses * per_access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_worst_case() {
        // Three tiles, 10-cycle slots: worst case = miss own slot (wait 3
        // slots to come around) + 1 slot service = 40 cycles.
        let a = TdmArbiter::round_robin(10, &[TileId(0), TileId(1), TileId(2)]);
        assert_eq!(a.period_cycles(), 30);
        for t in 0..3 {
            assert_eq!(a.worst_case_access(TileId(t)), Some(40));
        }
    }

    #[test]
    fn weighted_table_shortens_the_frequent_requestor() {
        // Tile 0 gets two slots per period; its worst gap is 2 slots.
        let a = TdmArbiter::new(10, vec![TileId(0), TileId(1), TileId(0), TileId(2)]);
        assert_eq!(a.slots_of(TileId(0)), 2);
        assert_eq!(a.worst_case_access(TileId(0)), Some(30)); // gap 2 + 1
        assert_eq!(a.worst_case_access(TileId(1)), Some(50)); // gap 4 + 1
    }

    #[test]
    fn absent_tile_has_no_bound() {
        let a = TdmArbiter::round_robin(10, &[TileId(0)]);
        assert_eq!(a.worst_case_access(TileId(5)), None);
        assert!(a.inflate_wcet(100, TileId(5), 1).is_err());
    }

    #[test]
    fn single_requestor_still_pays_the_table() {
        // A single-slot table: worst case = just missed it, wait a full
        // period, then the slot.
        let a = TdmArbiter::round_robin(8, &[TileId(0)]);
        assert_eq!(a.worst_case_access(TileId(0)), Some(16));
    }

    #[test]
    fn wcet_inflation() {
        let a = TdmArbiter::round_robin(10, &[TileId(0), TileId(1)]);
        // Worst case per access: 2 slots gap + 1 slot = 30.
        assert_eq!(a.inflate_wcet(100, TileId(0), 0).unwrap(), 100);
        assert_eq!(a.inflate_wcet(100, TileId(0), 3).unwrap(), 100 + 90);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_table_panics() {
        let _ = TdmArbiter::new(10, vec![]);
    }
}
