//! XML interchange for architecture models (the second flow input,
//! paper Fig. 1).
//!
//! ```xml
//! <architecture name="mpsoc" clockMhz="100">
//!   <tile name="tile0" kind="master" processor="microblaze"
//!         imem="131072" dmem="131072"
//!         serSetup="48" serPerWord="12"/>
//!   <interconnect type="noc" width="2" height="2" wires="8"
//!                 routerLatency="2" bufferWordsPerHop="2" flowControl="1"/>
//! </architecture>
//! ```

use mamps_sdf::xmlutil::{parse, Element, XmlError};

use crate::arch::Architecture;
use crate::interconnect::Interconnect;
use crate::noc::NocConfig;
use crate::tile::{SerializationCost, TileConfig, TileKind};
use crate::types::ProcessorType;

fn kind_name(kind: TileKind) -> &'static str {
    match kind {
        TileKind::Master => "master",
        TileKind::Slave => "slave",
        TileKind::CommunicationAssist => "ca",
        TileKind::HardwareIp => "ip",
    }
}

/// Serializes an architecture to XML.
pub fn architecture_to_xml(arch: &Architecture) -> String {
    let mut root = Element::new("architecture")
        .attr("name", arch.name())
        .attr("clockMhz", arch.clock_mhz());
    for t in arch.tiles() {
        let mut el = Element::new("tile")
            .attr("name", t.name())
            .attr("kind", kind_name(t.kind()))
            .attr("processor", t.processor().name())
            .attr("imem", t.imem_bytes())
            .attr("dmem", t.dmem_bytes())
            .attr("serSetup", t.serialization().setup_cycles)
            .attr("serPerWord", t.serialization().cycles_per_word);
        if let Some(ca) = t.ca() {
            el = el
                .attr("caSetup", ca.setup_cycles)
                .attr("caPerWord", ca.cycles_per_word);
        }
        root = root.child(el);
    }
    let ic = match arch.interconnect() {
        Interconnect::Fsl { fifo_depth } => Element::new("interconnect")
            .attr("type", "fsl")
            .attr("fifoDepth", fifo_depth),
        Interconnect::Noc(noc) => Element::new("interconnect")
            .attr("type", "noc")
            .attr("width", noc.width)
            .attr("height", noc.height)
            .attr("wires", noc.wires_per_link)
            .attr("routerLatency", noc.router_latency)
            .attr("bufferWordsPerHop", noc.buffer_words_per_hop)
            .attr("flowControl", if noc.flow_control { 1 } else { 0 }),
    };
    root.child(ic).to_xml()
}

/// Parses an architecture from XML.
///
/// # Errors
///
/// [`XmlError`] on malformed XML; architecture validation failures surface
/// as [`XmlError::Semantic`].
pub fn architecture_from_xml(xml: &str) -> Result<Architecture, XmlError> {
    let root = parse(xml)?;
    if root.name != "architecture" {
        return Err(XmlError::Semantic(format!(
            "expected <architecture>, found <{}>",
            root.name
        )));
    }
    let mut tiles = Vec::new();
    for el in root.find_all("tile") {
        let name = el.req("name")?;
        let base = match el.req("kind")? {
            "master" => TileConfig::master(name),
            "slave" => TileConfig::slave(name),
            "ca" => TileConfig::with_communication_assist(name),
            "ip" => TileConfig::hardware_ip(name),
            other => return Err(XmlError::Semantic(format!("unknown tile kind `{other}`"))),
        };
        let mut tile = base
            .with_processor(ProcessorType::custom(el.req("processor")?))
            .with_serialization(SerializationCost {
                setup_cycles: el.req_u64("serSetup")?,
                cycles_per_word: el.req_u64("serPerWord")?,
            });
        if tile.ca().is_some() && el.get("caSetup").is_some() {
            tile = tile.with_ca_cost(SerializationCost {
                setup_cycles: el.req_u64("caSetup")?,
                cycles_per_word: el.req_u64("caPerWord")?,
            });
        }
        let (imem, dmem) = (el.req_u64("imem")?, el.req_u64("dmem")?);
        if imem + dmem > crate::tile::MAX_TILE_MEMORY_BYTES {
            return Err(XmlError::Semantic(format!(
                "tile `{name}` exceeds the memory limit"
            )));
        }
        tile = tile.with_memory(imem, dmem);
        tiles.push(tile);
    }
    let ic_el = root
        .find("interconnect")
        .ok_or_else(|| XmlError::Semantic("missing <interconnect>".into()))?;
    let interconnect = match ic_el.req("type")? {
        "fsl" => Interconnect::Fsl {
            fifo_depth: ic_el.req_u64("fifoDepth")?,
        },
        "noc" => Interconnect::Noc(NocConfig {
            width: ic_el.req_u64("width")? as u32,
            height: ic_el.req_u64("height")? as u32,
            wires_per_link: ic_el.req_u64("wires")? as u32,
            router_latency: ic_el.req_u64("routerLatency")?,
            buffer_words_per_hop: ic_el.req_u64("bufferWordsPerHop")?,
            flow_control: ic_el.req_u64("flowControl")? != 0,
        }),
        other => {
            return Err(XmlError::Semantic(format!(
                "unknown interconnect type `{other}`"
            )))
        }
    };
    let clock = root.req_u64("clockMhz")?;
    Architecture::new(root.req("name")?, tiles, interconnect)
        .map(|a| a.with_clock_mhz(clock))
        .map_err(|e| XmlError::Semantic(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fsl() {
        let arch = Architecture::homogeneous("m", 3, Interconnect::fsl())
            .unwrap()
            .with_clock_mhz(125);
        let xml = architecture_to_xml(&arch);
        let back = architecture_from_xml(&xml).unwrap();
        assert_eq!(back, arch);
    }

    #[test]
    fn roundtrip_noc_with_ca_tiles() {
        let arch =
            Architecture::homogeneous_with_ca("c", 4, Interconnect::noc_for_tiles(4)).unwrap();
        let xml = architecture_to_xml(&arch);
        let back = architecture_from_xml(&xml).unwrap();
        assert_eq!(back, arch);
        assert!(back.tile(crate::types::TileId(0)).ca().is_some());
    }

    #[test]
    fn hand_written_document() {
        let xml = r#"
<architecture name="custom" clockMhz="100">
  <tile name="t0" kind="master" processor="microblaze" imem="65536"
        dmem="32768" serSetup="10" serPerWord="3"/>
  <tile name="acc" kind="ip" processor="hardware-ip" imem="0" dmem="0"
        serSetup="0" serPerWord="1"/>
  <interconnect type="fsl" fifoDepth="32"/>
</architecture>"#;
        let arch = architecture_from_xml(xml).unwrap();
        assert_eq!(arch.tile_count(), 2);
        assert_eq!(
            arch.tile(crate::types::TileId(1)).kind(),
            TileKind::HardwareIp
        );
        match arch.interconnect() {
            Interconnect::Fsl { fifo_depth } => assert_eq!(*fifo_depth, 32),
            _ => panic!("expected FSL"),
        }
    }

    #[test]
    fn invalid_documents_rejected() {
        assert!(architecture_from_xml("<nope/>").is_err());
        // Two masters.
        let xml = r#"
<architecture name="bad" clockMhz="100">
  <tile name="a" kind="master" processor="m" imem="1" dmem="1" serSetup="0" serPerWord="1"/>
  <tile name="b" kind="master" processor="m" imem="1" dmem="1" serSetup="0" serPerWord="1"/>
  <interconnect type="fsl" fifoDepth="16"/>
</architecture>"#;
        assert!(matches!(
            architecture_from_xml(xml),
            Err(XmlError::Semantic(_))
        ));
    }
}
