//! Static-order schedule construction.
//!
//! Each tile executes a fixed, cyclic *round* of schedule entries; the
//! scheduler on the generated platform is thereby reduced to a lookup table
//! (paper §6.3). A round fires every actor `q[a] / g` times, where `g` is
//! the gcd of the repetition counts on the tile, so `g` rounds make up one
//! graph iteration. On plain (non-CA) tiles, token serialization and
//! de-serialization run on the PE, so `Send`/`Receive` entries are woven
//! into the round right after the producing / before the consuming actor —
//! matching the generated wrapper code, which sends each actor's outputs as
//! part of its firing.
//!
//! The firing order is derived from the deadlock-freedom witness (the
//! abstract iteration execution), restricted per tile to first-appearance
//! order — a valid static order for any live graph.

use mamps_platform::arch::Architecture;
use mamps_platform::tile::TileKind;
use mamps_platform::types::TileId;
use mamps_sdf::graph::{ActorId, SdfGraph};
use mamps_sdf::liveness::check_liveness;
use mamps_sdf::ratio::gcd;
use mamps_sdf::repetition::repetition_vector;

use crate::error::MapError;
use crate::mapping::{Binding, ScheduleEntry};

/// Builds the per-tile static-order rounds.
///
/// Returns `(schedules, rounds_per_iteration)`, both indexed by tile id.
///
/// # Errors
///
/// Propagates consistency/deadlock errors from the SDF analyses.
pub fn build_schedules(
    graph: &SdfGraph,
    binding: &Binding,
    arch: &Architecture,
) -> Result<(Vec<Vec<ScheduleEntry>>, Vec<u64>), MapError> {
    let q = repetition_vector(graph)?;
    let order = check_liveness(graph)?;

    let mut schedules: Vec<Vec<ScheduleEntry>> = vec![Vec::new(); arch.tile_count()];
    let mut rounds: Vec<u64> = vec![1; arch.tile_count()];

    for tile_idx in 0..arch.tile_count() {
        let tile = TileId(tile_idx);
        let actors = binding.actors_on(tile);
        if actors.is_empty() {
            continue;
        }
        // Rounds per iteration: gcd of repetition counts on this tile.
        let g = actors.iter().map(|&a| q.of(a)).fold(0, gcd).max(1);
        rounds[tile_idx] = g;

        // First-appearance order within the liveness witness.
        let mut seen = std::collections::HashSet::new();
        let mut ordered: Vec<ActorId> = Vec::new();
        for &a in order.firings() {
            if binding.tile_of[a.0] == tile && seen.insert(a) {
                ordered.push(a);
            }
        }
        debug_assert_eq!(ordered.len(), actors.len());

        let pe_handles_tokens =
            matches!(arch.tile(tile).kind(), TileKind::Master | TileKind::Slave);

        let mut round = Vec::new();
        for &a in &ordered {
            let fire_reps = q.of(a) / g;
            if pe_handles_tokens {
                for &cid in graph.incoming(a) {
                    let ch = graph.channel(cid);
                    if ch.is_self_edge() || !binding.crosses_tiles(ch.src(), ch.dst()) {
                        continue;
                    }
                    round.push(ScheduleEntry::Receive {
                        channel: cid,
                        reps: fire_reps * ch.consumption_rate(),
                    });
                }
            }
            round.push(ScheduleEntry::Fire {
                actor: a,
                reps: fire_reps,
            });
            if pe_handles_tokens {
                for &cid in graph.outgoing(a) {
                    let ch = graph.channel(cid);
                    if ch.is_self_edge() || !binding.crosses_tiles(ch.src(), ch.dst()) {
                        continue;
                    }
                    round.push(ScheduleEntry::Send {
                        channel: cid,
                        reps: fire_reps * ch.production_rate(),
                    });
                }
            }
        }
        schedules[tile_idx] = round;
    }
    Ok((schedules, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_platform::interconnect::Interconnect;
    use mamps_platform::types::ProcessorType;
    use mamps_sdf::graph::SdfGraphBuilder;

    fn mk_binding(tiles: &[usize], wcets: &[u64]) -> Binding {
        Binding {
            tile_of: tiles.iter().map(|&t| TileId(t)).collect(),
            processor_of: tiles.iter().map(|_| ProcessorType::microblaze()).collect(),
            wcet_of: wcets.to_vec(),
        }
    }

    #[test]
    fn single_tile_round_and_rounds_count() {
        // q = (1, 10): one round fires a once... gcd(1,10)=1 so one round
        // per iteration with reps (1, 10).
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("a", 1);
        let c = b.add_actor("c", 1);
        b.add_channel("e", a, 10, c, 1);
        let g = b.build().unwrap();
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let binding = mk_binding(&[0, 0], &[1, 1]);
        let (sched, rounds) = build_schedules(&g, &binding, &arch).unwrap();
        assert_eq!(rounds[0], 1);
        assert_eq!(
            sched[0],
            vec![
                ScheduleEntry::Fire { actor: a, reps: 1 },
                ScheduleEntry::Fire { actor: c, reps: 10 },
            ]
        );
    }

    #[test]
    fn gcd_splits_iteration_into_rounds() {
        // q = (1, 2, 2); the tile holding the two q=2 actors runs 2 rounds
        // of one firing each per iteration.
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("a", 1);
        let c = b.add_actor("c", 1);
        let d = b.add_actor("d", 1);
        b.add_channel("e1", a, 2, c, 1);
        b.add_channel("e2", c, 1, d, 1);
        let g = b.build().unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let binding = mk_binding(&[1, 0, 0], &[1, 1, 1]);
        let (sched, rounds) = build_schedules(&g, &binding, &arch).unwrap();
        assert_eq!(rounds[0], 2);
        assert_eq!(rounds[1], 1);
        assert_eq!(sched[0].len(), 3); // Receive e1, Fire c, Fire d
        assert_eq!(sched[0][1], ScheduleEntry::Fire { actor: c, reps: 1 });
        assert_eq!(sched[0][2], ScheduleEntry::Fire { actor: d, reps: 1 });
    }

    #[test]
    fn cross_tile_channels_get_send_receive() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("a", 1);
        let c = b.add_actor("c", 1);
        let e = b.add_channel("e", a, 2, c, 1);
        let g = b.build().unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let binding = mk_binding(&[0, 1], &[1, 1]);
        let (sched, _) = build_schedules(&g, &binding, &arch).unwrap();
        assert_eq!(
            sched[0],
            vec![
                ScheduleEntry::Fire { actor: a, reps: 1 },
                ScheduleEntry::Send {
                    channel: e,
                    reps: 2
                },
            ]
        );
        // Tile 1 holds only c (q = 2): it runs 2 rounds of one firing.
        assert_eq!(
            sched[1],
            vec![
                ScheduleEntry::Receive {
                    channel: e,
                    reps: 1
                },
                ScheduleEntry::Fire { actor: c, reps: 1 },
            ]
        );
    }

    #[test]
    fn ca_tiles_skip_send_receive() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("a", 1);
        let c = b.add_actor("c", 1);
        b.add_channel("e", a, 1, c, 1);
        let g = b.build().unwrap();
        let arch = Architecture::homogeneous_with_ca("x", 2, Interconnect::fsl()).unwrap();
        let binding = mk_binding(&[0, 1], &[1, 1]);
        let (sched, _) = build_schedules(&g, &binding, &arch).unwrap();
        assert_eq!(sched[0], vec![ScheduleEntry::Fire { actor: a, reps: 1 }]);
        assert_eq!(sched[1], vec![ScheduleEntry::Fire { actor: c, reps: 1 }]);
    }

    #[test]
    fn self_edges_ignored() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("a", 1);
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let binding = mk_binding(&[0], &[1]);
        let (sched, _) = build_schedules(&g, &binding, &arch).unwrap();
        assert_eq!(sched[0], vec![ScheduleEntry::Fire { actor: a, reps: 1 }]);
    }

    #[test]
    fn empty_tiles_have_empty_schedules() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("a", 1);
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let arch = Architecture::homogeneous("x", 3, Interconnect::fsl()).unwrap();
        let binding = mk_binding(&[1], &[1]);
        let (sched, _) = build_schedules(&g, &binding, &arch).unwrap();
        assert!(sched[0].is_empty());
        assert!(!sched[1].is_empty());
        assert!(sched[2].is_empty());
    }
}
