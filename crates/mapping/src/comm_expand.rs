//! The Fig. 4 communication-model expansion.
//!
//! Every application channel whose endpoints are bound to different tiles is
//! replaced by the parameterized interconnect model of the paper's Fig. 4:
//! tokens are fragmented into `N` 32-bit words, serialized by the sending
//! tile, carried through a latency-rate connection model (`c1`, `c2`) with
//! `w` words pipelined and `alpha_n` words of in-connection buffering, and
//! de-serialized at the receiver; `alpha_src`/`alpha_dst` bound the buffer
//! space at the endpoints.
//!
//! ## Realization
//!
//! The paper draws eight helper actors (`s1..s3`, `c1`, `c2`, `d1..d3`).
//! This implementation uses nine, splitting the paper's per-token `s1`/`d1`
//! into an instantaneous token/word boundary actor plus a *per-word*
//! (de-)serialization actor, for one reason: conservativeness at finite
//! FIFO depth. When the in-connection buffer `alpha_n` is smaller than a
//! token (`N` words — e.g. 32-word MJPEG tokens over a 16-word FSL FIFO),
//! a per-token serialization actor would either ignore back-pressure
//! (optimistic — the guarantee would break) or demand `N` credits upfront
//! (deadlock). A per-word actor acquires one word credit at a time, exactly
//! like the PE's word loop blocking on a full FIFO. The per-token setup
//! cost is amortized into the per-word time, rounded up (safe).
//!
//! | paper | here (per channel `ch`) | role |
//! |-------|--------------------------|------|
//! | s1    | `ch__frag` + `ch__ser`  | fragment token; PE/CA word loop |
//! | s2    | (merged into `ch__ser`) | word hand-off |
//! | s3    | `ch__srel`              | free source buffer per token |
//! | c1    | `ch__lat`               | latency, `w` words in flight |
//! | c2    | `ch__rate`              | bandwidth (cycles/word) |
//! | d1    | `ch__des` + `ch__asm`   | PE/CA word loop; assemble token |
//! | d2    | `ch__drn`               | drain word, return credit |
//! | d3    | `ch__drel`              | free destination buffer per token |
//!
//! The expanded graph carries explicit self-edges (1 token on every actor,
//! `w` on `ch__lat`), so it must be analysed with
//! [`AnalysisOptions::auto_concurrency`] **enabled**; concurrency is then
//! bounded explicitly by the model, exactly as in SDF3.
//!
//! [`AnalysisOptions::auto_concurrency`]: mamps_sdf::state_space::AnalysisOptions

use std::collections::HashMap;

use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::CommParams;
use mamps_platform::tile::TileKind;
use mamps_platform::types::words_per_token;
use mamps_sdf::graph::{ActorId, ChannelId, SdfGraph, SdfGraphBuilder};
use mamps_sdf::transform::with_static_orders;

use crate::error::MapError;
use crate::mapping::{ChannelAlloc, Mapping, ScheduleEntry};

/// The expanded analysis graph with bookkeeping to locate helper actors.
#[derive(Debug, Clone)]
pub struct ExpandedGraph {
    /// The analysis-ready graph (static orders and self-edges included).
    pub graph: SdfGraph,
    /// Per cross-tile channel: the serialization word-loop actor.
    pub ser_of: HashMap<ChannelId, ActorId>,
    /// Per cross-tile channel: the de-serialization word-loop actor.
    pub des_of: HashMap<ChannelId, ActorId>,
    /// Words per token, per channel.
    pub words_of: HashMap<ChannelId, u64>,
}

/// Per-word execution time of a word loop with `setup` amortized over `n`
/// words, rounded up (conservative).
fn per_word_cycles(setup: u64, cycles_per_word: u64, n: u64) -> u64 {
    cycles_per_word + setup.div_ceil(n.max(1))
}

/// Expands `graph` (application graph with bound WCETs) according to
/// `mapping` on `arch`.
///
/// # Errors
///
/// * [`MapError::Infeasible`] if a channel allocation is inconsistent
///   (e.g. `alpha_src` below the channel's initial tokens).
/// * Propagated graph-construction errors.
pub fn expand(
    graph: &SdfGraph,
    mapping: &Mapping,
    arch: &Architecture,
) -> Result<ExpandedGraph, MapError> {
    let binding = &mapping.binding;
    let mut b = SdfGraphBuilder::new(format!("{}:comm", graph.name()));

    // Original actors keep the execution times of the input graph (the
    // caller chooses WCETs or measured times); on CA/IP tiles the PE posts
    // a request per token (setup cycles) which we charge to the actor.
    let mut actor_ids: Vec<ActorId> = Vec::with_capacity(graph.actor_count());
    for (aid, actor) in graph.actors() {
        let tile = arch.tile(binding.tile_of[aid.0]);
        let mut exec = actor.execution_time();
        if !matches!(tile.kind(), TileKind::Master | TileKind::Slave) {
            for &cid in graph.outgoing(aid) {
                let ch = graph.channel(cid);
                if !ch.is_self_edge() && binding.crosses_tiles(ch.src(), ch.dst()) {
                    exec += ch.production_rate() * tile.pe_token_overhead(0);
                }
            }
            for &cid in graph.incoming(aid) {
                let ch = graph.channel(cid);
                if !ch.is_self_edge() && binding.crosses_tiles(ch.src(), ch.dst()) {
                    exec += ch.consumption_rate() * tile.pe_token_overhead(0);
                }
            }
        }
        actor_ids.push(b.add_actor(actor.name(), exec));
    }
    // Self-edges bounding each original actor to one concurrent firing.
    for (aid, actor) in graph.actors() {
        let has_self = graph
            .outgoing(aid)
            .iter()
            .any(|&c| graph.channel(c).is_self_edge());
        if !has_self {
            b.add_channel_with_tokens(
                format!("__self_{}", actor.name()),
                actor_ids[aid.0],
                1,
                actor_ids[aid.0],
                1,
                1,
            );
        }
    }

    let mut ser_of = HashMap::new();
    let mut des_of = HashMap::new();
    let mut words_of = HashMap::new();

    for (cid, ch) in graph.channels() {
        let src = actor_ids[ch.src().0];
        let dst = actor_ids[ch.dst().0];
        let alloc: &ChannelAlloc = &mapping.channels[cid.0];
        if ch.is_self_edge() || !binding.crosses_tiles(ch.src(), ch.dst()) {
            // Local channel: keep it, add the buffer-capacity reverse edge.
            b.add_channel_full(
                ch.name(),
                src,
                ch.production_rate(),
                dst,
                ch.consumption_rate(),
                ch.initial_tokens(),
                ch.token_size(),
            );
            if !ch.is_self_edge() {
                let cap = alloc.local_capacity;
                if cap < ch.initial_tokens() {
                    return Err(MapError::Infeasible(format!(
                        "channel `{}` local capacity {cap} below initial tokens",
                        ch.name()
                    )));
                }
                b.add_channel_with_tokens(
                    format!("__cap_{}", ch.name()),
                    dst,
                    ch.consumption_rate(),
                    src,
                    ch.production_rate(),
                    cap - ch.initial_tokens(),
                );
            }
            continue;
        }

        // Cross-tile channel: full Fig. 4 expansion.
        let n_words = words_per_token(ch.token_size());
        let p = ch.production_rate();
        let q_r = ch.consumption_rate();
        let d0 = ch.initial_tokens();
        if alloc.alpha_src < d0 + p {
            return Err(MapError::Infeasible(format!(
                "channel `{}`: alpha_src {} cannot hold the {} initial tokens \
                 plus one production of {p}",
                ch.name(),
                alloc.alpha_src,
                d0
            )));
        }
        if alloc.alpha_dst < q_r {
            return Err(MapError::Infeasible(format!(
                "channel `{}`: alpha_dst {} below the consumption rate {q_r}",
                ch.name(),
                alloc.alpha_dst
            )));
        }
        let src_tile = arch.tile(binding.tile_of[ch.src().0]);
        let dst_tile = arch.tile(binding.tile_of[ch.dst().0]);
        let params = CommParams::for_connection(
            arch.interconnect(),
            binding.tile_of[ch.src().0],
            binding.tile_of[ch.dst().0],
            alloc.wires,
        );

        let ser_cost = src_tile.stream_cycles(0); // setup part
        let ser_word = per_word_cycles(
            ser_cost,
            match src_tile.ca() {
                Some(ca) => ca.cycles_per_word,
                None => src_tile.serialization().cycles_per_word,
            },
            n_words,
        );
        let des_cost = dst_tile.stream_cycles(0);
        let des_word = per_word_cycles(
            des_cost,
            match dst_tile.ca() {
                Some(ca) => ca.cycles_per_word,
                None => dst_tile.serialization().cycles_per_word,
            },
            n_words,
        );

        let name = ch.name();
        let frag = b.add_actor(format!("{name}__frag"), 0);
        let ser = b.add_actor(format!("{name}__ser"), ser_word);
        let srel = b.add_actor(format!("{name}__srel"), 0);
        let lat = b.add_actor(format!("{name}__lat"), params.latency);
        let rate = b.add_actor(format!("{name}__rate"), params.cycles_per_word);
        let drn = b.add_actor(format!("{name}__drn"), 0);
        let des = b.add_actor(format!("{name}__des"), des_word);
        let asm = b.add_actor(format!("{name}__asm"), 0);
        let drel = b.add_actor(format!("{name}__drel"), 0);
        ser_of.insert(cid, ser);
        des_of.insert(cid, des);
        words_of.insert(cid, n_words);

        // Forward path.
        b.add_channel_full(format!("{name}__tok"), src, p, frag, 1, d0, ch.token_size());
        b.add_channel(format!("{name}__w0"), frag, n_words, ser, 1);
        b.add_channel(format!("{name}__w1"), ser, 1, lat, 1);
        b.add_channel(format!("{name}__w2"), lat, 1, rate, 1);
        b.add_channel(format!("{name}__w3"), rate, 1, drn, 1);
        b.add_channel(format!("{name}__w4"), drn, 1, des, 1);
        b.add_channel(format!("{name}__w5"), des, 1, asm, n_words);
        b.add_channel_full(
            format!("{name}__tok2"),
            asm,
            1,
            dst,
            q_r,
            0,
            ch.token_size(),
        );
        // Source buffer space (alpha_src tokens; initial tokens occupy it).
        b.add_channel(format!("{name}__cnt"), ser, 1, srel, n_words);
        b.add_channel_with_tokens(
            format!("{name}__asrc"),
            srel,
            1,
            src,
            p,
            alloc.alpha_src - d0,
        );
        // In-connection credits (alpha_n words).
        b.add_channel_with_tokens(format!("{name}__an"), drn, 1, ser, 1, params.alpha_n);
        // Destination buffer space (alpha_dst tokens = alpha_dst * N words).
        b.add_channel(format!("{name}__fre"), dst, q_r, drel, 1);
        b.add_channel_with_tokens(
            format!("{name}__adst"),
            drel,
            n_words,
            des,
            1,
            alloc.alpha_dst * n_words,
        );
        // Self-edges: word loops are sequential; the latency stage pipelines
        // `w` words; the rate stage serializes bandwidth.
        b.add_channel_with_tokens(format!("{name}__sser"), ser, 1, ser, 1, 1);
        b.add_channel_with_tokens(format!("{name}__sdes"), des, 1, des, 1, 1);
        b.add_channel_with_tokens(format!("{name}__slat"), lat, 1, lat, 1, params.w);
        b.add_channel_with_tokens(format!("{name}__srate"), rate, 1, rate, 1, 1);
    }

    let expanded = b.build().map_err(MapError::Sdf)?;

    // Static-order chains from the schedule entries.
    let mut chains: Vec<Vec<(ActorId, u64)>> = Vec::new();
    for round in &mapping.schedules {
        if round.len() <= 1 {
            continue;
        }
        let mut chain = Vec::with_capacity(round.len());
        for entry in round {
            match *entry {
                ScheduleEntry::Fire { actor, reps } => chain.push((actor_ids[actor.0], reps)),
                ScheduleEntry::Send { channel, reps } => {
                    chain.push((ser_of[&channel], reps * words_of[&channel]))
                }
                ScheduleEntry::Receive { channel, reps } => {
                    chain.push((des_of[&channel], reps * words_of[&channel]))
                }
            }
        }
        chains.push(chain);
    }
    let graph = with_static_orders(&expanded, &chains).map_err(MapError::Sdf)?;

    Ok(ExpandedGraph {
        graph,
        ser_of,
        des_of,
        words_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_platform::arch::Architecture;
    use mamps_platform::interconnect::Interconnect;
    use mamps_platform::types::{ProcessorType, TileId};
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::state_space::{throughput, AnalysisOptions};

    fn two_actor_graph(token_size: u64) -> SdfGraph {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("a", 10);
        let c = b.add_actor("c", 10);
        b.add_channel_full("e", a, 1, c, 1, 0, token_size);
        b.build().unwrap()
    }

    fn simple_mapping(graph: &SdfGraph, tiles: &[usize]) -> Mapping {
        let binding = crate::mapping::Binding {
            tile_of: tiles.iter().map(|&t| TileId(t)).collect(),
            processor_of: tiles.iter().map(|_| ProcessorType::microblaze()).collect(),
            wcet_of: graph.actors().map(|(_, a)| a.execution_time()).collect(),
        };
        let channels = graph
            .channels()
            .map(|(_, ch)| ChannelAlloc {
                wires: 1,
                alpha_src: ch.initial_tokens() + 2 * ch.production_rate(),
                alpha_dst: 2 * ch.consumption_rate(),
                local_capacity: ch.initial_tokens() + ch.production_rate() + ch.consumption_rate(),
            })
            .collect();
        Mapping {
            binding,
            schedules: vec![Vec::new(); 4],
            rounds_per_iteration: vec![1; 4],
            channels,
            guaranteed_iterations: 0,
            guaranteed_cycles: 1,
        }
    }

    fn analyse(g: &SdfGraph) -> f64 {
        throughput(
            g,
            &AnalysisOptions {
                auto_concurrency: true,
                ..AnalysisOptions::default()
            },
        )
        .unwrap()
        .as_f64()
    }

    #[test]
    fn local_channel_not_expanded() {
        let g = two_actor_graph(4);
        let m = simple_mapping(&g, &[0, 0]);
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let e = expand(&g, &m, &arch).unwrap();
        // Two actors + self edges + forward + capacity channel.
        assert_eq!(e.graph.actor_count(), 2);
        assert!(e.ser_of.is_empty());
        assert_eq!(e.graph.channel_count(), 4);
    }

    #[test]
    fn cross_channel_fully_expanded() {
        let g = two_actor_graph(4);
        let m = simple_mapping(&g, &[0, 1]);
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let e = expand(&g, &m, &arch).unwrap();
        // 2 original + 9 helpers.
        assert_eq!(e.graph.actor_count(), 11);
        assert_eq!(e.ser_of.len(), 1);
        assert_eq!(e.des_of.len(), 1);
        // The expansion stays consistent and live.
        let t = analyse(&e.graph);
        assert!(t > 0.0);
    }

    #[test]
    fn expansion_preserves_consistency_multirate() {
        let mut b = SdfGraphBuilder::new("mr");
        let a = b.add_actor("a", 5);
        let c = b.add_actor("c", 3);
        b.add_channel_full("e", a, 3, c, 2, 0, 8);
        let g = b.build().unwrap();
        let m = simple_mapping(&g, &[0, 1]);
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let e = expand(&g, &m, &arch).unwrap();
        assert!(mamps_sdf::repetition::repetition_vector(&e.graph).is_ok());
        assert!(analyse(&e.graph) > 0.0);
    }

    #[test]
    fn communication_lowers_throughput() {
        // Same app local vs cross-tile: the cross-tile bound must be lower
        // or equal (serialization + network cost).
        let g = two_actor_graph(128); // 32-word tokens
        let arch1 = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let arch2 = Architecture::homogeneous("y", 2, Interconnect::fsl()).unwrap();
        let local = expand(&g, &simple_mapping(&g, &[0, 0]), &arch1).unwrap();
        let cross = expand(&g, &simple_mapping(&g, &[0, 1]), &arch2).unwrap();
        // Local: actors pipeline at 1/10. Cross: serialization word loops
        // run on the PEs... but with empty schedules they are concurrent
        // helpers; the wire itself adds delay, so throughput <= local.
        assert!(analyse(&cross.graph) <= analyse(&local.graph) + 1e-12);
    }

    #[test]
    fn bigger_tokens_are_slower_on_the_wire() {
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let small = two_actor_graph(4);
        let big = two_actor_graph(256);
        let ts = analyse(
            &expand(&small, &simple_mapping(&small, &[0, 1]), &arch)
                .unwrap()
                .graph,
        );
        let tb = analyse(
            &expand(&big, &simple_mapping(&big, &[0, 1]), &arch)
                .unwrap()
                .graph,
        );
        assert!(tb < ts);
    }

    #[test]
    fn noc_distance_matters() {
        let arch = Architecture::homogeneous("x", 9, Interconnect::noc_for_tiles(9)).unwrap();
        let g = two_actor_graph(64);
        let near = expand(&g, &simple_mapping(&g, &[0, 1]), &arch).unwrap();
        let far = expand(&g, &simple_mapping(&g, &[0, 8]), &arch).unwrap();
        // More hops -> more latency but also more pipelining; the guaranteed
        // bound must not improve with distance.
        assert!(analyse(&far.graph) <= analyse(&near.graph) + 1e-12);
    }

    #[test]
    fn insufficient_alpha_src_rejected() {
        let g = two_actor_graph(4);
        let mut m = simple_mapping(&g, &[0, 1]);
        m.channels[0].alpha_src = 0;
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        assert!(matches!(
            expand(&g, &m, &arch),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn schedule_chain_serializes_pe() {
        // a and its serialization loop share tile 0; c is remote. With a
        // schedule [Fire a, Send e], the PE alternates firing and sending.
        let g = two_actor_graph(16); // 4 words/token
        let mut m = simple_mapping(&g, &[0, 1]);
        let e_id = g.channel_by_name("e").unwrap();
        m.schedules = vec![
            vec![
                ScheduleEntry::Fire {
                    actor: g.actor_by_name("a").unwrap(),
                    reps: 1,
                },
                ScheduleEntry::Send {
                    channel: e_id,
                    reps: 1,
                },
            ],
            vec![
                ScheduleEntry::Receive {
                    channel: e_id,
                    reps: 1,
                },
                ScheduleEntry::Fire {
                    actor: g.actor_by_name("c").unwrap(),
                    reps: 1,
                },
            ],
        ];
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let with_sched = expand(&g, &m, &arch).unwrap();
        let m2 = simple_mapping(&g, &[0, 1]); // no schedules
        let without = expand(&g, &m2, &arch).unwrap();
        // Scheduling the word loops on the PE can only reduce throughput.
        assert!(analyse(&with_sched.graph) <= analyse(&without.graph) + 1e-12);
        assert!(analyse(&with_sched.graph) > 0.0);
    }

    #[test]
    fn ca_tile_keeps_pe_free() {
        // Identical app; plain tiles serialize on the PE (scheduled), CA
        // tiles offload. With large tokens the CA variant must be faster.
        let g = two_actor_graph(256); // 64 words
        let e_id = g.channel_by_name("e").unwrap();
        let mk_sched = |with_sr: bool| {
            let a = g.actor_by_name("a").unwrap();
            let c = g.actor_by_name("c").unwrap();
            if with_sr {
                vec![
                    vec![
                        ScheduleEntry::Fire { actor: a, reps: 1 },
                        ScheduleEntry::Send {
                            channel: e_id,
                            reps: 1,
                        },
                    ],
                    vec![
                        ScheduleEntry::Receive {
                            channel: e_id,
                            reps: 1,
                        },
                        ScheduleEntry::Fire { actor: c, reps: 1 },
                    ],
                ]
            } else {
                vec![
                    vec![ScheduleEntry::Fire { actor: a, reps: 1 }],
                    vec![ScheduleEntry::Fire { actor: c, reps: 1 }],
                ]
            }
        };
        let mut m_plain = simple_mapping(&g, &[0, 1]);
        m_plain.schedules = mk_sched(true);
        let arch_plain = Architecture::homogeneous("p", 2, Interconnect::fsl()).unwrap();
        let t_plain = analyse(&expand(&g, &m_plain, &arch_plain).unwrap().graph);

        let mut m_ca = simple_mapping(&g, &[0, 1]);
        m_ca.schedules = mk_sched(false);
        let arch_ca = Architecture::homogeneous_with_ca("c", 2, Interconnect::fsl()).unwrap();
        let t_ca = analyse(&expand(&g, &m_ca, &arch_ca).unwrap().graph);

        assert!(
            t_ca > t_plain,
            "CA offload should increase the bound: {t_ca} vs {t_plain}"
        );
    }
}
