//! XML interchange for mappings — the *common input format* of paper §2:
//! "The flow presented in this paper automates this step by introducing a
//! common input format for both the mapping and platform generation tools,
//! circumventing possible user introduced errors during the translation
//! step."
//!
//! ```xml
//! <mapping>
//!   <bind actor="VLD" tile="0" processor="microblaze" wcet="35766"/>
//!   <schedule tile="0" roundsPerIteration="1">
//!     <fire actor="VLD" reps="1"/>
//!     <send channel="vld2iqzz" reps="10"/>
//!   </schedule>
//!   <channel name="vld2iqzz" wires="2" alphaSrc="12" alphaDst="2"
//!            localCapacity="11"/>
//!   <guarantee iterations="1" cycles="24230"/>
//! </mapping>
//! ```

use mamps_platform::types::{ProcessorType, TileId};
use mamps_sdf::graph::SdfGraph;
use mamps_sdf::xmlutil::{parse, Element, XmlError};

use crate::mapping::{Binding, ChannelAlloc, Mapping, ScheduleEntry};

/// Serializes a mapping to XML. Actor and channel ids are externalized by
/// name against `graph`.
pub fn mapping_to_xml(mapping: &Mapping, graph: &SdfGraph) -> String {
    let mut root = Element::new("mapping");
    for (aid, actor) in graph.actors() {
        root = root.child(
            Element::new("bind")
                .attr("actor", actor.name())
                .attr("tile", mapping.binding.tile_of[aid.0].0)
                .attr("processor", mapping.binding.processor_of[aid.0].name())
                .attr("wcet", mapping.binding.wcet_of[aid.0]),
        );
    }
    for (tile, round) in mapping.schedules.iter().enumerate() {
        if round.is_empty() {
            continue;
        }
        let mut sched = Element::new("schedule")
            .attr("tile", tile)
            .attr("roundsPerIteration", mapping.rounds_per_iteration[tile]);
        for entry in round {
            sched = sched.child(match *entry {
                ScheduleEntry::Fire { actor, reps } => Element::new("fire")
                    .attr("actor", graph.actor(actor).name())
                    .attr("reps", reps),
                ScheduleEntry::Send { channel, reps } => Element::new("send")
                    .attr("channel", graph.channel(channel).name())
                    .attr("reps", reps),
                ScheduleEntry::Receive { channel, reps } => Element::new("receive")
                    .attr("channel", graph.channel(channel).name())
                    .attr("reps", reps),
            });
        }
        root = root.child(sched);
    }
    for (cid, ch) in graph.channels() {
        let a = mapping.channels[cid.0];
        root = root.child(
            Element::new("channel")
                .attr("name", ch.name())
                .attr("wires", a.wires)
                .attr("alphaSrc", a.alpha_src)
                .attr("alphaDst", a.alpha_dst)
                .attr("localCapacity", a.local_capacity),
        );
    }
    root = root.child(
        Element::new("guarantee")
            .attr("iterations", mapping.guaranteed_iterations)
            .attr("cycles", mapping.guaranteed_cycles),
    );
    root.to_xml()
}

/// Parses a mapping from XML, resolving names against `graph` and sizing
/// per-tile tables for `tile_count` tiles.
///
/// # Errors
///
/// [`XmlError`] on malformed XML or unresolved actor/channel/tile
/// references.
pub fn mapping_from_xml(
    xml: &str,
    graph: &SdfGraph,
    tile_count: usize,
) -> Result<Mapping, XmlError> {
    let root = parse(xml)?;
    if root.name != "mapping" {
        return Err(XmlError::Semantic(format!(
            "expected <mapping>, found <{}>",
            root.name
        )));
    }
    let actor_of = |name: &str| {
        graph
            .actor_by_name(name)
            .ok_or_else(|| XmlError::Semantic(format!("unknown actor `{name}`")))
    };
    let channel_of = |name: &str| {
        graph
            .channel_by_name(name)
            .ok_or_else(|| XmlError::Semantic(format!("unknown channel `{name}`")))
    };

    let n = graph.actor_count();
    let mut tile_of = vec![None; n];
    let mut processor_of = vec![None; n];
    let mut wcet_of = vec![0u64; n];
    for el in root.find_all("bind") {
        let aid = actor_of(el.req("actor")?)?;
        let tile = el.req_u64("tile")? as usize;
        if tile >= tile_count {
            return Err(XmlError::Semantic(format!(
                "bind references tile {tile} outside the {tile_count}-tile platform"
            )));
        }
        tile_of[aid.0] = Some(TileId(tile));
        processor_of[aid.0] = Some(ProcessorType::custom(el.req("processor")?));
        wcet_of[aid.0] = el.req_u64("wcet")?;
    }
    let tile_of: Vec<TileId> = tile_of
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            t.ok_or_else(|| {
                XmlError::Semantic(format!(
                    "actor `{}` has no <bind>",
                    graph.actor(mamps_sdf::graph::ActorId(i)).name()
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let processor_of: Vec<ProcessorType> = processor_of
        .into_iter()
        .map(|p| p.expect("set with tile"))
        .collect();

    let mut schedules = vec![Vec::new(); tile_count];
    let mut rounds = vec![1u64; tile_count];
    for el in root.find_all("schedule") {
        let tile = el.req_u64("tile")? as usize;
        if tile >= tile_count {
            return Err(XmlError::Semantic(format!("schedule for bad tile {tile}")));
        }
        rounds[tile] = el.req_u64("roundsPerIteration")?;
        let mut round = Vec::new();
        for c in &el.children {
            let reps = c.req_u64("reps")?;
            round.push(match c.name.as_str() {
                "fire" => ScheduleEntry::Fire {
                    actor: actor_of(c.req("actor")?)?,
                    reps,
                },
                "send" => ScheduleEntry::Send {
                    channel: channel_of(c.req("channel")?)?,
                    reps,
                },
                "receive" => ScheduleEntry::Receive {
                    channel: channel_of(c.req("channel")?)?,
                    reps,
                },
                other => {
                    return Err(XmlError::Semantic(format!(
                        "unknown schedule entry <{other}>"
                    )))
                }
            });
        }
        schedules[tile] = round;
    }

    let mut channels = vec![
        ChannelAlloc {
            wires: 0,
            alpha_src: 0,
            alpha_dst: 0,
            local_capacity: 0,
        };
        graph.channel_count()
    ];
    let mut seen = vec![false; graph.channel_count()];
    for el in root.find_all("channel") {
        let cid = channel_of(el.req("name")?)?;
        channels[cid.0] = ChannelAlloc {
            wires: el.req_u64("wires")? as u32,
            alpha_src: el.req_u64("alphaSrc")?,
            alpha_dst: el.req_u64("alphaDst")?,
            local_capacity: el.req_u64("localCapacity")?,
        };
        seen[cid.0] = true;
    }
    if let Some(idx) = seen.iter().position(|&s| !s) {
        return Err(XmlError::Semantic(format!(
            "channel `{}` has no allocation",
            graph.channel(mamps_sdf::graph::ChannelId(idx)).name()
        )));
    }

    let guarantee = root
        .find("guarantee")
        .ok_or_else(|| XmlError::Semantic("missing <guarantee>".into()))?;
    Ok(Mapping {
        binding: Binding {
            tile_of,
            processor_of,
            wcet_of,
        },
        schedules,
        rounds_per_iteration: rounds,
        channels,
        guaranteed_iterations: guarantee.req_u64("iterations")?,
        guaranteed_cycles: guarantee.req_u64("cycles")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{map_application, MapOptions};
    use mamps_platform::arch::Architecture;
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn mapped() -> (mamps_sdf::model::ApplicationModel, Architecture, Mapping) {
        let mut b = SdfGraphBuilder::new("app");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel_full("e", x, 2, y, 1, 0, 32);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 40, 2048, 256).actor("y", 30, 2048, 256);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("m", 2, Interconnect::noc_for_tiles(2)).unwrap();
        let m = map_application(&app, &arch, &MapOptions::default()).unwrap();
        (app, arch, m.mapping)
    }

    #[test]
    fn roundtrip_full_mapping() {
        let (app, arch, mapping) = mapped();
        let xml = mapping_to_xml(&mapping, app.graph());
        let back = mapping_from_xml(&xml, app.graph(), arch.tile_count()).unwrap();
        assert_eq!(back, mapping);
    }

    #[test]
    fn missing_bind_rejected() {
        let (app, arch, mapping) = mapped();
        let xml = mapping_to_xml(&mapping, app.graph());
        let broken = xml.replacen("<bind actor=\"x\"", "<bind actor=\"y\"", 1);
        // Now x has no bind (y bound twice).
        assert!(matches!(
            mapping_from_xml(&broken, app.graph(), arch.tile_count()),
            Err(XmlError::Semantic(_))
        ));
    }

    #[test]
    fn unknown_references_rejected() {
        let (app, arch, mapping) = mapped();
        let xml = mapping_to_xml(&mapping, app.graph());
        let broken = xml.replace("actor=\"x\"", "actor=\"ghost\"");
        assert!(mapping_from_xml(&broken, app.graph(), arch.tile_count()).is_err());
    }

    #[test]
    fn tile_out_of_range_rejected() {
        let (app, _, mapping) = mapped();
        let xml = mapping_to_xml(&mapping, app.graph());
        // Parse against a 1-tile platform: tile 1 references fail.
        assert!(matches!(
            mapping_from_xml(&xml, app.graph(), 1),
            Err(XmlError::Semantic(_))
        ));
    }

    #[test]
    fn parsed_mapping_expands_identically() {
        // The common-format promise: the analysis graph built from a
        // mapping read back from XML matches the original exactly.
        let (app, arch, mapping) = mapped();
        let xml = mapping_to_xml(&mapping, app.graph());
        let back = mapping_from_xml(&xml, app.graph(), arch.tile_count()).unwrap();
        let e1 = crate::comm_expand::expand(app.graph(), &mapping, &arch).unwrap();
        let e2 = crate::comm_expand::expand(app.graph(), &back, &arch).unwrap();
        assert_eq!(e1.graph, e2.graph);
    }
}
