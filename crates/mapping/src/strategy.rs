//! Pluggable actor-to-tile binding strategies.
//!
//! The paper fixes one greedy list binder ("the algorithms used during
//! mapping ... from \[14\]"), but the quality of the whole flow — and of
//! the DSE sweep built on top of it — is bounded by the mappings it can
//! express. This module turns the binder into an extension point:
//!
//! * [`BindingStrategy`] — the object-safe (`Send + Sync`) trait every
//!   binder implements, so strategies thread through the parallel DSE
//!   fan-out unchanged.
//! * [`StrategyHandle`] — a cheaply-cloneable shared handle carried by
//!   [`BindOptions`]; its [`Default`] is the greedy binder, keeping the
//!   pre-existing flow behaviour bit-identical.
//! * [`GreedyBinder`] — the paper's deterministic cost-weighted list
//!   binder, extracted verbatim from the previous hard-coded `bind()`.
//! * [`SpiralBinder`] — NoC-distance-aware placement: actors are visited
//!   in communication order and filled onto tiles along a spiral of
//!   increasing hop distance from a load-chosen seed tile (after the
//!   run-time spiral mapping heuristics of Benhaoua et al.).
//! * [`GeneticBinder`] — a seeded bias-elitist genetic algorithm over
//!   actor→tile assignment vectors (after Quan & Pimentel), whose fitness
//!   is the guaranteed throughput of the candidate binding computed with
//!   the existing state-space analysis and memoized per assignment;
//!   infeasible assignments are penalized instead of discarded.
//! * [`registry`] / [`by_name`] — name → constructor table used by the
//!   CLI (`mamps map --binder`, `mamps dse --binders`) and the DSE
//!   strategy sweep.
//!
//! Every strategy returns a [`Binding`] that flows through the unchanged
//! wire-allocation / scheduling / buffer-sizing / throughput-verification
//! pipeline of [`crate::flow::map_application`], so the worst-case
//! guarantee holds for all of them.
//!
//! ## Picking a strategy
//!
//! * `greedy` — the default; fast, balances load with a communication
//!   penalty. Best all-rounder and the paper-faithful choice.
//! * `spiral` — minimizes NoC hop distance between communicating actors;
//!   prefer it on mesh NoCs when wire usage (and thus interconnect area
//!   and contention) matters more than perfect load balance.
//! * `genetic` — searches the assignment space with the throughput
//!   analysis in the loop; slowest, but can escape greedy's local optima
//!   on irregular graphs. Deterministic for a fixed [`GeneticBinder::seed`].

use std::collections::HashMap;
use std::sync::Arc;

use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_platform::types::{words_per_token, TileId};
use mamps_sdf::buffer::capacity_lower_bound;
use mamps_sdf::cache::GlobalAnalysisCache;
use mamps_sdf::graph::ActorId;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::repetition::repetition_vector;
use mamps_sdf::state_space::{throughput, AnalysisOptions};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::binding::BindOptions;
use crate::comm_expand::expand;
use crate::cost::CostBreakdown;
use crate::error::MapError;
use crate::mapping::{Binding, ChannelAlloc, Mapping};
use crate::schedule::build_schedules;

/// An actor-to-tile binding heuristic.
///
/// Implementations must be deterministic: the same inputs must produce the
/// same [`Binding`], so DSE results are reproducible and independent of the
/// job count. `Send + Sync` lets handles fan out across the parallel DSE
/// workers.
pub trait BindingStrategy: Send + Sync {
    /// Stable identifier of the strategy (CLI name, report column).
    fn name(&self) -> &'static str;

    /// Binds the application's actors to the architecture's tiles.
    ///
    /// # Errors
    ///
    /// * [`MapError::Sdf`] if the graph is inconsistent.
    /// * [`MapError::Infeasible`] if no feasible placement exists.
    fn bind(
        &self,
        app: &ApplicationModel,
        arch: &Architecture,
        opts: &BindOptions,
    ) -> Result<Binding, MapError>;
}

/// Shared, cheaply-cloneable handle to a [`BindingStrategy`].
///
/// Carried by [`BindOptions::strategy`]; the default is [`GreedyBinder`],
/// which keeps the pre-strategy flow behaviour bit-identical.
#[derive(Clone)]
pub struct StrategyHandle(Arc<dyn BindingStrategy>);

impl StrategyHandle {
    /// Wraps a strategy into a handle.
    pub fn new(strategy: impl BindingStrategy + 'static) -> StrategyHandle {
        StrategyHandle(Arc::new(strategy))
    }

    /// The wrapped strategy's name.
    pub fn name(&self) -> &'static str {
        self.0.name()
    }

    /// Dispatches to the wrapped strategy's [`BindingStrategy::bind`].
    ///
    /// # Errors
    ///
    /// Propagates the strategy's binding errors.
    pub fn bind(
        &self,
        app: &ApplicationModel,
        arch: &Architecture,
        opts: &BindOptions,
    ) -> Result<Binding, MapError> {
        self.0.bind(app, arch, opts)
    }
}

impl std::fmt::Debug for StrategyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StrategyHandle({})", self.name())
    }
}

impl Default for StrategyHandle {
    fn default() -> Self {
        StrategyHandle::new(GreedyBinder)
    }
}

/// One registry entry: the strategy's name and its constructor.
pub type StrategyEntry = (&'static str, fn() -> StrategyHandle);

/// The built-in name → constructor table.
///
/// The CLI and the DSE strategy sweep resolve `--binder` / `--binders`
/// names through this registry, so adding a strategy here makes it
/// available everywhere at once.
pub fn registry() -> &'static [StrategyEntry] {
    &[
        ("greedy", || StrategyHandle::new(GreedyBinder)),
        ("spiral", || StrategyHandle::new(SpiralBinder)),
        ("genetic", || StrategyHandle::new(GeneticBinder::default())),
    ]
}

/// Resolves a strategy by registry name.
pub fn by_name(name: &str) -> Option<StrategyHandle> {
    registry()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, make)| make())
}

/// The registered strategy names, in registry order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|(n, _)| *n).collect()
}

/// Completes a tile assignment into a full [`Binding`] by choosing each
/// actor's implementation for its tile's processor.
///
/// # Panics
///
/// Panics if some actor has no implementation for its tile — callers must
/// have checked feasibility.
fn finish_binding(app: &ApplicationModel, arch: &Architecture, tile_of: Vec<TileId>) -> Binding {
    let processor_of = tile_of
        .iter()
        .map(|&t| arch.tile(t).processor().clone())
        .collect();
    let wcet_of = tile_of
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            app.implementation_for(ActorId(i), arch.tile(t).processor().name())
                .expect("chosen tiles have implementations")
                .wcet
        })
        .collect();
    Binding {
        tile_of,
        processor_of,
        wcet_of,
    }
}

/// Memory needed on tile `t` by actor `a`, or `None` when the tile's
/// processor type has no implementation of the actor.
fn mem_needed(app: &ApplicationModel, arch: &Architecture, a: ActorId, t: TileId) -> Option<u64> {
    app.implementation_for(a, arch.tile(t).processor().name())
        .map(|im| im.instruction_memory + im.data_memory)
}

fn infeasible_actor(app: &ApplicationModel, a: ActorId) -> MapError {
    MapError::Infeasible(format!(
        "actor `{}` fits no tile (implementations: {:?})",
        app.graph().actor(a).name(),
        app.implementations(a)
            .iter()
            .map(|i| i.processor_type.as_str())
            .collect::<Vec<_>>()
    ))
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

/// The deterministic greedy list binder (the previous hard-coded `bind()`,
/// extracted verbatim): actors are placed in order of decreasing work
/// (WCET x repetitions); each actor goes to the feasible tile with the
/// lowest weighted cost ([`crate::cost`]). Feasibility requires an
/// implementation for the tile's processor type and sufficient tile memory.
/// The algorithm mirrors the load-balancing binder of SDF3 (paper §5.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBinder;

impl BindingStrategy for GreedyBinder {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn bind(
        &self,
        app: &ApplicationModel,
        arch: &Architecture,
        opts: &BindOptions,
    ) -> Result<Binding, MapError> {
        let graph = app.graph();
        let q = repetition_vector(graph)?;
        let n = graph.actor_count();

        // Work per actor: max WCET over its implementations x repetitions
        // (placement order heuristic only).
        let mut order: Vec<ActorId> = (0..n).map(ActorId).collect();
        let work = |a: ActorId| -> u64 {
            app.implementations(a)
                .iter()
                .map(|im| im.wcet)
                .max()
                .unwrap_or(0)
                * q.of(a)
        };
        order.sort_by_key(|&a| std::cmp::Reverse((work(a), std::cmp::Reverse(a.0))));

        // Include the occupancy's work so the processing cost stays on the
        // same normalized scale as the other cost components when tiles
        // are pre-loaded by previously admitted applications.
        let total_work: f64 = (0..n)
            .map(|i| work(ActorId(i)) as f64)
            .sum::<f64>()
            .max(1.0)
            + opts.occupancy.total_work() as f64;
        let total_comm: f64 = graph
            .channels()
            .map(|(_, c)| {
                (q.of(c.src()) * c.production_rate() * words_per_token(c.token_size())) as f64
            })
            .sum::<f64>()
            .max(1.0);
        let mesh_diameter = match arch.interconnect() {
            Interconnect::Noc(noc) => (noc.width + noc.height - 2).max(1) as f64,
            Interconnect::Fsl { .. } => 1.0,
        };

        let pinned: HashMap<ActorId, TileId> = opts.pinned.iter().copied().collect();
        // Residual-resource start state: tiles begin at the occupancy of
        // previously admitted applications (all zero for single-app flows).
        let mut tile_load: Vec<f64> = (0..arch.tile_count())
            .map(|t| opts.occupancy.work_on(TileId(t)) as f64)
            .collect();
        let mut tile_mem: Vec<u64> = (0..arch.tile_count())
            .map(|t| opts.occupancy.mem_on(TileId(t)))
            .collect();
        let mut placed: Vec<Option<TileId>> = vec![None; n];

        for &a in &order {
            let candidates: Vec<TileId> = match pinned.get(&a) {
                Some(&t) => vec![t],
                None => (0..arch.tile_count()).map(TileId).collect(),
            };
            let mut best: Option<(f64, TileId)> = None;
            for t in candidates {
                let tile = arch.tile(t);
                let im = match app.implementation_for(a, tile.processor().name()) {
                    Some(im) => im,
                    None => continue,
                };
                let mem_needed = im.instruction_memory + im.data_memory;
                if tile_mem[t.0] + mem_needed > tile.imem_bytes() + tile.dmem_bytes() {
                    continue;
                }
                let mut comm = 0f64;
                let mut lat = 0f64;
                let mut neighbours = 0u32;
                for (_, ch) in graph.channels() {
                    let (other, volume) = if ch.src() == a {
                        (
                            ch.dst(),
                            (q.of(a) * ch.production_rate() * words_per_token(ch.token_size()))
                                as f64,
                        )
                    } else if ch.dst() == a {
                        (
                            ch.src(),
                            (q.of(ch.src())
                                * ch.production_rate()
                                * words_per_token(ch.token_size()))
                                as f64,
                        )
                    } else {
                        continue;
                    };
                    if other == a {
                        continue;
                    }
                    if let Some(ot) = placed[other.0] {
                        if ot != t {
                            let hops = match arch.interconnect() {
                                Interconnect::Noc(noc) => noc.hops(t, ot).max(1) as f64,
                                Interconnect::Fsl { .. } => 1.0,
                            };
                            comm += volume * hops;
                            lat += hops;
                            neighbours += 1;
                        }
                    }
                }
                let breakdown = CostBreakdown {
                    processing: (tile_load[t.0] + work(a) as f64) / total_work,
                    memory: (tile_mem[t.0] + mem_needed) as f64
                        / (tile.imem_bytes() + tile.dmem_bytes()).max(1) as f64,
                    communication: comm / total_comm,
                    latency: if neighbours > 0 {
                        lat / neighbours as f64 / mesh_diameter
                    } else {
                        0.0
                    },
                };
                let cost = breakdown.weighted(&opts.weights);
                let better = match best {
                    None => true,
                    // Tie-break on tile id for determinism.
                    Some((bc, bt)) => cost < bc - 1e-12 || (cost <= bc + 1e-12 && t.0 < bt.0),
                };
                if better {
                    best = Some((cost, t));
                }
            }
            match best {
                Some((_, t)) => {
                    placed[a.0] = Some(t);
                    tile_load[t.0] += work(a) as f64;
                    let im = app
                        .implementation_for(a, arch.tile(t).processor().name())
                        .expect("feasibility checked above");
                    tile_mem[t.0] += im.instruction_memory + im.data_memory;
                }
                None => return Err(infeasible_actor(app, a)),
            }
        }

        let tile_of: Vec<TileId> = placed.into_iter().map(|p| p.expect("all placed")).collect();
        Ok(finish_binding(app, arch, tile_of))
    }
}

// ---------------------------------------------------------------------------
// Spiral
// ---------------------------------------------------------------------------

/// NoC-distance-aware spiral binder.
///
/// Actors are visited in *communication order*: a breadth-first traversal
/// of the application graph that starts at the heaviest actor and expands
/// along the highest-volume channels first, so communicating actors are
/// adjacent in the visit sequence. Tiles are visited along a *spiral*: the
/// seed tile is the feasible tile for the heaviest actor closest to the
/// mesh centre (the load chooses the seed), and the remaining tiles are
/// ordered by increasing hop distance from it — concentric rings around
/// the seed. The binder walks the actor sequence and fills the current
/// spiral tile up to its fair share of the total work before moving
/// outward, which keeps communicating actors on the same or on physically
/// adjacent tiles and minimizes allocated NoC wire length.
///
/// On FSL interconnects every tile pair is one hop apart, so the spiral
/// degenerates to tile-id order and the binder becomes a plain
/// communication-ordered first-fit — still useful as a fast, contention-free
/// alternative to the cost-driven greedy search.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpiralBinder;

impl BindingStrategy for SpiralBinder {
    fn name(&self) -> &'static str {
        "spiral"
    }

    fn bind(
        &self,
        app: &ApplicationModel,
        arch: &Architecture,
        opts: &BindOptions,
    ) -> Result<Binding, MapError> {
        let graph = app.graph();
        let q = repetition_vector(graph)?;
        let n = graph.actor_count();
        let tiles = arch.tile_count();

        let work = |a: ActorId| -> u64 {
            app.implementations(a)
                .iter()
                .map(|im| im.wcet)
                .max()
                .unwrap_or(0)
                * q.of(a)
        };

        // Channel volumes aggregated per undirected actor pair.
        let mut adj: Vec<Vec<(ActorId, u64)>> = vec![Vec::new(); n];
        for (_, ch) in graph.channels() {
            if ch.is_self_edge() {
                continue;
            }
            let vol = q.of(ch.src()) * ch.production_rate() * words_per_token(ch.token_size());
            adj[ch.src().0].push((ch.dst(), vol));
            adj[ch.dst().0].push((ch.src(), vol));
        }
        for neighbours in &mut adj {
            // Highest volume first; ties on actor id for determinism.
            neighbours.sort_by_key(|&(b, v)| (std::cmp::Reverse(v), b.0));
        }

        // Communication-ordered visit sequence: BFS from the heaviest actor
        // of each (possibly disconnected) component, expanding along the
        // highest-volume channels first.
        let mut heaviest_first: Vec<ActorId> = (0..n).map(ActorId).collect();
        heaviest_first.sort_by_key(|&a| (std::cmp::Reverse(work(a)), a.0));
        let mut visited = vec![false; n];
        let mut order: Vec<ActorId> = Vec::with_capacity(n);
        for &root in &heaviest_first {
            if visited[root.0] {
                continue;
            }
            let mut queue = std::collections::VecDeque::from([root]);
            visited[root.0] = true;
            while let Some(a) = queue.pop_front() {
                order.push(a);
                for &(b, _) in &adj[a.0] {
                    if !visited[b.0] {
                        visited[b.0] = true;
                        queue.push_back(b);
                    }
                }
            }
        }

        // Spiral tile order from the load-chosen seed: among the tiles that
        // can host the heaviest actor, the one closest to the mesh centre
        // (ties on tile id); remaining tiles by increasing hop distance.
        let spiral = match order.first() {
            Some(&first) => {
                spiral_tile_order(app, arch, first).ok_or_else(|| infeasible_actor(app, first))?
            }
            None => Vec::new(),
        };

        // Fair share counts the work of previously admitted applications
        // too, so the spiral walks past already-busy tiles earlier.
        let total_work: f64 = (0..n)
            .map(|i| work(ActorId(i)) as f64)
            .sum::<f64>()
            .max(1.0)
            + opts.occupancy.total_work() as f64;
        let fair_share = total_work / tiles.max(1) as f64;

        let pinned: HashMap<ActorId, TileId> = opts.pinned.iter().copied().collect();
        let mut tile_load: Vec<f64> = (0..tiles)
            .map(|t| opts.occupancy.work_on(TileId(t)) as f64)
            .collect();
        let mut tile_mem: Vec<u64> = (0..tiles)
            .map(|t| opts.occupancy.mem_on(TileId(t)))
            .collect();
        let mut placed: Vec<Option<TileId>> = vec![None; n];
        let mut cursor = 0usize;

        let mut place = |a: ActorId,
                         t: TileId,
                         tile_load: &mut Vec<f64>,
                         tile_mem: &mut Vec<u64>,
                         need: u64| {
            placed[a.0] = Some(t);
            tile_load[t.0] += work(a) as f64;
            tile_mem[t.0] += need;
        };

        for &a in &order {
            let fits = |t: TileId, tile_mem: &[u64]| -> Option<u64> {
                let need = mem_needed(app, arch, a, t)?;
                let cap = arch.tile(t).imem_bytes() + arch.tile(t).dmem_bytes();
                (tile_mem[t.0] + need <= cap).then_some(need)
            };
            if let Some(&t) = pinned.get(&a) {
                match fits(t, &tile_mem) {
                    Some(need) => place(a, t, &mut tile_load, &mut tile_mem, need),
                    None => return Err(infeasible_actor(app, a)),
                }
                continue;
            }
            // The current spiral tile is full: move outward.
            while cursor + 1 < spiral.len() && tile_load[spiral[cursor].0] >= fair_share {
                cursor += 1;
            }
            // First feasible tile at or after the cursor, else the least
            // loaded feasible tile anywhere (memory fallback).
            let forward = spiral[cursor..]
                .iter()
                .find_map(|&t| fits(t, &tile_mem).map(|need| (t, need)));
            let chosen = forward.or_else(|| {
                spiral
                    .iter()
                    .filter_map(|&t| fits(t, &tile_mem).map(|need| (t, need)))
                    .min_by(|(ta, _), (tb, _)| {
                        tile_load[ta.0]
                            .partial_cmp(&tile_load[tb.0])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(ta.0.cmp(&tb.0))
                    })
            });
            match chosen {
                Some((t, need)) => place(a, t, &mut tile_load, &mut tile_mem, need),
                None => return Err(infeasible_actor(app, a)),
            }
        }

        let tile_of: Vec<TileId> = placed.into_iter().map(|p| p.expect("all placed")).collect();
        Ok(finish_binding(app, arch, tile_of))
    }
}

/// Tile visit order for [`SpiralBinder`]: seed = feasible tile for `first`
/// nearest the mesh centre, then all tiles by (hop distance from seed,
/// tile id). Returns `None` when no tile can host `first` at all.
fn spiral_tile_order(
    app: &ApplicationModel,
    arch: &Architecture,
    first: ActorId,
) -> Option<Vec<TileId>> {
    let tiles = arch.tile_count();
    let feasible = |t: TileId| -> bool {
        app.implementation_for(first, arch.tile(t).processor().name())
            .is_some()
    };
    let seed = match arch.interconnect() {
        Interconnect::Noc(noc) => {
            // Distance to the mesh centre in doubled coordinates (keeps the
            // comparison integral when width/height are even).
            let centre_dist = |t: TileId| -> u32 {
                let c = noc.tile_coord(t);
                (2 * c.x).abs_diff(noc.width - 1) + (2 * c.y).abs_diff(noc.height - 1)
            };
            (0..tiles)
                .map(TileId)
                .filter(|&t| feasible(t))
                .min_by_key(|&t| (centre_dist(t), t.0))?
        }
        Interconnect::Fsl { .. } => (0..tiles).map(TileId).find(|&t| feasible(t))?,
    };
    let mut spiral: Vec<TileId> = (0..tiles).map(TileId).collect();
    match arch.interconnect() {
        Interconnect::Noc(noc) => spiral.sort_by_key(|&t| (noc.hops(seed, t), t.0)),
        Interconnect::Fsl { .. } => spiral.sort_by_key(|&t| (u64::from(t != seed), t.0)),
    }
    Some(spiral)
}

// ---------------------------------------------------------------------------
// Genetic
// ---------------------------------------------------------------------------

/// Bias-elitist genetic binder (after Quan & Pimentel).
///
/// Chromosomes are actor→tile assignment vectors. The initial population
/// seeds the greedy and spiral solutions (when they exist) alongside random
/// feasibility-aware assignments; each generation copies the `elite` best
/// chromosomes unchanged and breeds the rest by uniform crossover between
/// parents drawn with probability `bias` from the elite pool (the
/// *bias-elitist* selection), followed by per-gene mutation with
/// probability `1/actors`.
///
/// The fitness of a chromosome is the **guaranteed throughput** of the
/// candidate binding: schedules are built, NoC wires allocated, the Fig. 4
/// interconnect expansion applied, and the existing state-space analysis
/// run on the result; fitness values are memoized per assignment so
/// repeated chromosomes cost nothing. Assignments that violate tile memory
/// get a large negative penalty, ones that fail wire allocation or
/// scheduling a smaller one, and ones that deadlock at the initial buffer
/// allocation a token penalty (the downstream flow can often still grow
/// buffers to liveness).
///
/// The fitness model evaluates candidates under this binder's own
/// [`wires_per_connection`](GeneticBinder::wires_per_connection) and
/// [`max_states`](GeneticBinder::max_states) (whose defaults match
/// `MapOptions`), and at the *initial* buffer allocation — it is a
/// heuristic ranking, not the final verdict. When the downstream flow
/// runs with different options, or when a binding only shines after
/// buffer growth, the GA's ranking can diverge from the flow's final
/// numbers; the winning binding is always re-verified by the unchanged
/// pipeline either way.
///
/// All randomness comes from a [`StdRng`] seeded with [`GeneticBinder::seed`]:
/// the same seed always yields the same binding.
#[derive(Debug, Clone, Copy)]
pub struct GeneticBinder {
    /// RNG seed; fixed default for reproducible flows.
    pub seed: u64,
    /// Chromosomes per generation.
    pub population: usize,
    /// Number of generations bred after the initial evaluation.
    pub generations: usize,
    /// Best chromosomes copied unchanged into the next generation.
    pub elite: usize,
    /// Probability of drawing a parent from the elite pool.
    pub bias: f64,
    /// SDM wires requested per NoC connection in the fitness evaluation
    /// (mirrors `MapOptions::wires_per_connection`).
    pub wires_per_connection: u32,
    /// State cap of the fitness throughput analysis.
    pub max_states: usize,
}

impl Default for GeneticBinder {
    fn default() -> Self {
        GeneticBinder {
            seed: 0x5DF3_2011,
            population: 16,
            generations: 8,
            elite: 4,
            bias: 0.7,
            wires_per_connection: 2,
            max_states: 2_000_000,
        }
    }
}

impl GeneticBinder {
    /// The default parameters with a different RNG seed.
    pub fn with_seed(seed: u64) -> GeneticBinder {
        GeneticBinder {
            seed,
            ..GeneticBinder::default()
        }
    }

    /// Penalized guaranteed-throughput fitness of one assignment,
    /// evaluated against the residual resources left by `occ`.
    fn fitness(
        &self,
        app: &ApplicationModel,
        arch: &Architecture,
        occ: &crate::binding::Occupancy,
        cache: Option<&GlobalAnalysisCache>,
        chrom: &[TileId],
    ) -> f64 {
        const MEM_PENALTY: f64 = -1e9;
        const STRUCTURE_PENALTY: f64 = -1e6;
        const DEADLOCK_PENALTY: f64 = -1.0;

        let graph = app.graph();

        // Tile memory feasibility: one penalty unit per overcommitted tile.
        let mut mem_used: Vec<u64> = (0..arch.tile_count())
            .map(|t| occ.mem_on(TileId(t)))
            .collect();
        for (i, &t) in chrom.iter().enumerate() {
            match mem_needed(app, arch, ActorId(i), t) {
                Some(need) => mem_used[t.0] += need,
                None => return MEM_PENALTY * chrom.len() as f64,
            }
        }
        let overcommitted = (0..arch.tile_count())
            .filter(|&t| {
                let tile = arch.tile(TileId(t));
                mem_used[t] > tile.imem_bytes() + tile.dmem_bytes()
            })
            .count();
        if overcommitted > 0 {
            return MEM_PENALTY * overcommitted as f64;
        }

        let binding = finish_binding(app, arch, chrom.to_vec());

        let mut wcet_graph = graph.clone();
        for (aid, _) in graph.actors() {
            wcet_graph
                .actor_mut(aid)
                .set_execution_time(binding.wcet_of[aid.0]);
        }

        let mut wires = vec![0u32; graph.channel_count()];
        if let Interconnect::Noc(noc) = arch.interconnect() {
            let mut alloc = mamps_platform::noc::WireAllocator::new(*noc);
            if occ.seed_wires(&mut alloc).is_err() {
                return STRUCTURE_PENALTY;
            }
            for (cid, ch) in graph.channels() {
                if ch.is_self_edge() || !binding.crosses_tiles(ch.src(), ch.dst()) {
                    continue;
                }
                let from = binding.tile_of[ch.src().0];
                let to = binding.tile_of[ch.dst().0];
                let want = self
                    .wires_per_connection
                    .min(alloc.max_allocatable(from, to))
                    .max(1);
                if alloc.allocate(from, to, want).is_err() {
                    return STRUCTURE_PENALTY;
                }
                wires[cid.0] = want;
            }
        }

        let (schedules, rounds) = match build_schedules(graph, &binding, arch) {
            Ok(s) => s,
            Err(_) => return STRUCTURE_PENALTY,
        };
        let channels: Vec<ChannelAlloc> = graph
            .channels()
            .map(|(cid, ch)| ChannelAlloc {
                wires: wires[cid.0],
                alpha_src: ch.initial_tokens() + 2 * ch.production_rate(),
                alpha_dst: 2 * ch.consumption_rate(),
                local_capacity: capacity_lower_bound(graph, cid),
            })
            .collect();
        let mapping = Mapping {
            binding,
            schedules,
            rounds_per_iteration: rounds,
            channels,
            guaranteed_iterations: 0,
            guaranteed_cycles: 1,
        };
        let expanded = match expand(&wcet_graph, &mapping, arch) {
            Ok(e) => e,
            Err(_) => return STRUCTURE_PENALTY,
        };
        let opts = AnalysisOptions {
            auto_concurrency: true,
            max_states: self.max_states,
            ..AnalysisOptions::default()
        };
        let r = match cache {
            Some(cache) => cache.throughput(&expanded.graph, &opts),
            None => throughput(&expanded.graph, &opts),
        };
        match r {
            Ok(t) => t.as_f64(),
            Err(_) => DEADLOCK_PENALTY,
        }
    }
}

impl BindingStrategy for GeneticBinder {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn bind(
        &self,
        app: &ApplicationModel,
        arch: &Architecture,
        opts: &BindOptions,
    ) -> Result<Binding, MapError> {
        let graph = app.graph();
        // Surface graph inconsistency exactly like the other binders.
        let _ = repetition_vector(graph)?;
        let n = graph.actor_count();
        if n == 0 {
            return Ok(finish_binding(app, arch, Vec::new()));
        }

        let pinned: HashMap<ActorId, TileId> = opts.pinned.iter().copied().collect();
        // Per-gene candidate tiles (implementation exists; pinning fixes
        // the gene to one tile).
        let mut candidates: Vec<Vec<TileId>> = Vec::with_capacity(n);
        for i in 0..n {
            let a = ActorId(i);
            let cands: Vec<TileId> = match pinned.get(&a) {
                Some(&t) => (mem_needed(app, arch, a, t).is_some())
                    .then_some(t)
                    .into_iter()
                    .collect(),
                None => (0..arch.tile_count())
                    .map(TileId)
                    .filter(|&t| mem_needed(app, arch, a, t).is_some())
                    .collect(),
            };
            if cands.is_empty() {
                return Err(infeasible_actor(app, a));
            }
            candidates.push(cands);
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let population = self.population.max(2);
        // At least one elite survives, and at least one slot is bred —
        // elite == population would silently disable the search.
        let elite = self.elite.clamp(1, population - 1);

        // Seed the population with the deterministic heuristics (standard
        // practice for bias-elitist mapping GAs), then random assignments.
        let mut pop: Vec<Vec<TileId>> = Vec::with_capacity(population);
        for handle in [
            StrategyHandle::new(GreedyBinder),
            StrategyHandle::new(SpiralBinder),
        ] {
            if let Ok(b) = handle.bind(app, arch, opts) {
                if !pop.contains(&b.tile_of) {
                    pop.push(b.tile_of);
                }
            }
        }
        while pop.len() < population {
            let chrom: Vec<TileId> = candidates
                .iter()
                .map(|c| c[rng.gen_range(0..c.len())])
                .collect();
            pop.push(chrom);
        }

        // Memoized fitness: chromosomes recur across generations (elitism,
        // converging populations) and each evaluation is a full state-space
        // analysis, so the cache carries most of the GA's cost.
        let mut memo: HashMap<Vec<TileId>, f64> = HashMap::new();
        let score = |chrom: &Vec<TileId>, memo: &mut HashMap<Vec<TileId>, f64>| -> f64 {
            if let Some(&f) = memo.get(chrom) {
                return f;
            }
            let f = self.fitness(app, arch, &opts.occupancy, opts.cache.as_deref(), chrom);
            memo.insert(chrom.clone(), f);
            f
        };
        // Deterministic ranking: fitness descending, chromosome ascending.
        let rank = |pop: &mut Vec<Vec<TileId>>, memo: &mut HashMap<Vec<TileId>, f64>| {
            pop.sort_by(|a, b| {
                let (fa, fb) = (memo[a], memo[b]);
                fb.total_cmp(&fa).then_with(|| a.cmp(b))
            });
        };

        for chrom in &pop {
            score(chrom, &mut memo);
        }
        rank(&mut pop, &mut memo);

        for _ in 0..self.generations {
            let mut next: Vec<Vec<TileId>> = pop[..elite].to_vec();
            while next.len() < population {
                let pick = |rng: &mut StdRng| -> usize {
                    if rng.gen::<f64>() < self.bias {
                        rng.gen_range(0..elite)
                    } else {
                        rng.gen_range(0..pop.len())
                    }
                };
                let (pa, pb) = (pick(&mut rng), pick(&mut rng));
                let mut child: Vec<TileId> = (0..n)
                    .map(|i| {
                        if rng.gen::<bool>() {
                            pop[pa][i]
                        } else {
                            pop[pb][i]
                        }
                    })
                    .collect();
                for (i, gene) in child.iter_mut().enumerate() {
                    if rng.gen_range(0..n) == 0 {
                        let c = &candidates[i];
                        *gene = c[rng.gen_range(0..c.len())];
                    }
                }
                next.push(child);
            }
            pop = next;
            for chrom in &pop {
                score(chrom, &mut memo);
            }
            rank(&mut pop, &mut memo);
        }

        let best = pop.into_iter().next().expect("population is non-empty");
        if memo[&best] <= -1e8 {
            return Err(MapError::Infeasible(
                "genetic binder found no memory-feasible assignment".into(),
            ));
        }
        Ok(finish_binding(app, arch, best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn pipeline_app(wcets: &[u64]) -> ApplicationModel {
        let n = wcets.len();
        let mut b = SdfGraphBuilder::new("pipe");
        let ids: Vec<_> = (0..n).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..n - 1 {
            b.add_channel_full(format!("e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &w) in wcets.iter().enumerate() {
            mb.actor(format!("a{i}"), w, 4096, 512);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn registry_resolves_all_built_ins() {
        for name in ["greedy", "spiral", "genetic"] {
            let h = by_name(name).expect("registered");
            assert_eq!(h.name(), name);
        }
        assert!(by_name("nope").is_none());
        assert_eq!(names(), vec!["greedy", "spiral", "genetic"]);
    }

    #[test]
    fn default_handle_is_greedy() {
        assert_eq!(StrategyHandle::default().name(), "greedy");
        assert_eq!(
            format!("{:?}", StrategyHandle::default()),
            "StrategyHandle(greedy)"
        );
    }

    #[test]
    fn greedy_strategy_matches_free_function() {
        let app = pipeline_app(&[7, 3, 9, 4, 6]);
        let arch = Architecture::homogeneous("a", 3, Interconnect::noc_for_tiles(3)).unwrap();
        let opts = BindOptions::default();
        let via_trait = GreedyBinder.bind(&app, &arch, &opts).unwrap();
        let via_fn = crate::binding::bind(&app, &arch, &opts).unwrap();
        assert_eq!(via_trait, via_fn);
    }

    #[test]
    fn spiral_places_all_actors_and_respects_pinning() {
        let app = pipeline_app(&[100, 1, 1, 100]);
        let arch = Architecture::homogeneous("a", 4, Interconnect::noc_for_tiles(4)).unwrap();
        let b = SpiralBinder
            .bind(&app, &arch, &BindOptions::default())
            .unwrap();
        assert_eq!(b.tile_of.len(), 4);

        let a3 = app.graph().actor_by_name("a3").unwrap();
        let opts = BindOptions {
            pinned: vec![(a3, TileId(2))],
            ..BindOptions::default()
        };
        let b = SpiralBinder.bind(&app, &arch, &opts).unwrap();
        assert_eq!(b.tile_of[a3.0], TileId(2));
    }

    #[test]
    fn spiral_keeps_communicating_actors_close() {
        // A 6-stage pipeline on a 3x2 NoC: spiral placement keeps every
        // cross-tile channel within 2 hops.
        let app = pipeline_app(&[50, 50, 50, 50, 50, 50]);
        let arch = Architecture::homogeneous("a", 6, Interconnect::noc_for_tiles(6)).unwrap();
        let b = SpiralBinder
            .bind(&app, &arch, &BindOptions::default())
            .unwrap();
        if let Interconnect::Noc(noc) = arch.interconnect() {
            for (_, ch) in app.graph().channels() {
                let hops = noc.hops(b.tile_of[ch.src().0], b.tile_of[ch.dst().0]);
                assert!(hops <= 2, "channel spans {hops} hops");
            }
        }
    }

    #[test]
    fn spiral_is_deterministic() {
        let app = pipeline_app(&[7, 3, 9, 4, 6]);
        let arch = Architecture::homogeneous("a", 4, Interconnect::noc_for_tiles(4)).unwrap();
        let b1 = SpiralBinder
            .bind(&app, &arch, &BindOptions::default())
            .unwrap();
        let b2 = SpiralBinder
            .bind(&app, &arch, &BindOptions::default())
            .unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn genetic_same_seed_same_binding() {
        let app = pipeline_app(&[40, 10, 25, 5]);
        let arch = Architecture::homogeneous("a", 2, Interconnect::fsl()).unwrap();
        let g = GeneticBinder::with_seed(42);
        let b1 = g.bind(&app, &arch, &BindOptions::default()).unwrap();
        let b2 = g.bind(&app, &arch, &BindOptions::default()).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn genetic_never_worse_than_greedy_seed() {
        // The greedy solution seeds the population and elites survive, so
        // the GA's best fitness is at least the greedy binding's fitness.
        let app = pipeline_app(&[40, 10, 25, 5]);
        let arch = Architecture::homogeneous("a", 2, Interconnect::fsl()).unwrap();
        let ga = GeneticBinder::default();
        let greedy = GreedyBinder
            .bind(&app, &arch, &BindOptions::default())
            .unwrap();
        let best = ga.bind(&app, &arch, &BindOptions::default()).unwrap();
        let occ = crate::binding::Occupancy::default();
        let f_greedy = ga.fitness(&app, &arch, &occ, None, &greedy.tile_of);
        let f_best = ga.fitness(&app, &arch, &occ, None, &best.tile_of);
        assert!(
            f_best >= f_greedy,
            "GA best {f_best} below greedy {f_greedy}"
        );
    }

    #[test]
    fn genetic_small_population_clamps_elite_and_still_breeds() {
        // elite (default 4) exceeds the population: it must clamp below
        // the population size so crossover/mutation still run.
        let app = pipeline_app(&[40, 10, 25]);
        let arch = Architecture::homogeneous("a", 2, Interconnect::fsl()).unwrap();
        let ga = GeneticBinder {
            population: 2,
            generations: 2,
            ..GeneticBinder::default()
        };
        let b = ga.bind(&app, &arch, &BindOptions::default()).unwrap();
        assert_eq!(b.tile_of.len(), 3);
    }

    #[test]
    fn genetic_infeasible_when_no_implementation() {
        let app = pipeline_app(&[1, 1]);
        let tiles = vec![mamps_platform::tile::TileConfig::master("t0")
            .with_processor(mamps_platform::types::ProcessorType::custom("dsp"))];
        let arch = Architecture::new("a", tiles, Interconnect::fsl()).unwrap();
        assert!(matches!(
            GeneticBinder::default().bind(&app, &arch, &BindOptions::default()),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn all_strategies_handle_single_tile() {
        let app = pipeline_app(&[10, 20, 30]);
        let arch = Architecture::homogeneous("a", 1, Interconnect::fsl()).unwrap();
        for (name, make) in registry() {
            let b = make().bind(&app, &arch, &BindOptions::default()).unwrap();
            assert!(
                b.tile_of.iter().all(|&t| t == TileId(0)),
                "{name} strayed off the only tile"
            );
        }
    }
}
