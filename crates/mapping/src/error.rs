//! Error type of the mapping flow.

use std::error::Error;
use std::fmt;

use mamps_platform::noc::WireAllocationError;
use mamps_sdf::SdfError;
use serde::{Deserialize, Serialize};

/// Errors produced by binding, scheduling and buffer allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapError {
    /// An underlying SDF analysis failed.
    Sdf(SdfError),
    /// No feasible placement exists; the message names the actor.
    Infeasible(String),
    /// NoC wire allocation failed.
    Wires(WireAllocationError),
    /// The throughput constraint cannot be met; the message reports the
    /// best achievable bound.
    ConstraintUnmet(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Sdf(e) => write!(f, "sdf analysis failed: {e}"),
            MapError::Infeasible(m) => write!(f, "infeasible binding: {m}"),
            MapError::Wires(e) => write!(f, "wire allocation failed: {e}"),
            MapError::ConstraintUnmet(m) => write!(f, "throughput constraint unmet: {m}"),
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Sdf(e) => Some(e),
            MapError::Wires(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for MapError {
    fn from(e: SdfError) -> Self {
        MapError::Sdf(e)
    }
}

impl From<WireAllocationError> for MapError {
    fn from(e: WireAllocationError) -> Self {
        MapError::Wires(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MapError = SdfError::Disconnected.into();
        assert!(e.to_string().contains("sdf"));
        assert!(matches!(e, MapError::Sdf(_)));
        let w = MapError::Infeasible("actor x".into());
        assert!(w.to_string().contains("actor x"));
    }
}
