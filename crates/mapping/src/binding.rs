//! Actor-to-tile binding: options and strategy dispatch.
//!
//! The binding algorithm is pluggable (see [`crate::strategy`]): the
//! [`BindOptions`] carry a [`StrategyHandle`] alongside the cost weights
//! and pinning constraints, and [`bind`] dispatches to it. The default
//! strategy is the deterministic greedy list binder
//! ([`crate::strategy::GreedyBinder`]) — actors placed in order of
//! decreasing work (WCET x repetitions), each on the feasible tile with
//! the lowest weighted cost ([`crate::cost`]) — mirroring the
//! load-balancing binder of SDF3 (paper §5.1 keeps "the algorithms used
//! during mapping ... from \[14\]").

use mamps_platform::arch::Architecture;
use mamps_platform::types::TileId;
use mamps_sdf::graph::ActorId;
use mamps_sdf::model::ApplicationModel;

use crate::cost::CostWeights;
use crate::error::MapError;
use crate::mapping::Binding;
use crate::strategy::StrategyHandle;

/// Options for the binder.
#[derive(Debug, Clone, Default)]
pub struct BindOptions {
    /// Cost weights (defaults favour processing balance). Used by the
    /// greedy strategy; other strategies may ignore them.
    pub weights: CostWeights,
    /// Force specific actors onto specific tiles (e.g. peripherals-needing
    /// actors onto the master tile). Honoured by every strategy.
    pub pinned: Vec<(ActorId, TileId)>,
    /// The binding strategy to dispatch to (default: greedy).
    pub strategy: StrategyHandle,
}

impl BindOptions {
    /// The default options with a specific strategy.
    pub fn with_strategy(strategy: StrategyHandle) -> BindOptions {
        BindOptions {
            strategy,
            ..BindOptions::default()
        }
    }
}

/// Binds the application's actors to the architecture's tiles by
/// dispatching to `opts.strategy`.
///
/// # Errors
///
/// * [`MapError::Sdf`] if the graph is inconsistent.
/// * [`MapError::Infeasible`] if some actor fits no tile (no implementation
///   for any tile's processor type, or memory exhausted everywhere).
pub fn bind(
    app: &ApplicationModel,
    arch: &Architecture,
    opts: &BindOptions,
) -> Result<Binding, MapError> {
    opts.strategy.bind(app, arch, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn pipeline_app(n: usize, wcets: &[u64]) -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("pipe");
        let ids: Vec<_> = (0..n).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..n - 1 {
            b.add_channel(format!("e{i}"), ids[i], 1, ids[i + 1], 1);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &wcet) in wcets.iter().enumerate().take(n) {
            mb.actor(format!("a{i}"), wcet, 4096, 512);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn heavy_actors_spread_over_tiles() {
        let app = pipeline_app(4, &[100, 100, 100, 100]);
        let arch = Architecture::homogeneous("a", 4, Interconnect::fsl()).unwrap();
        let b = bind(&app, &arch, &BindOptions::default()).unwrap();
        // Equal heavy work: every actor gets its own tile.
        let mut tiles: Vec<usize> = b.tile_of.iter().map(|t| t.0).collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), 4);
    }

    #[test]
    fn communication_pull_groups_light_actors() {
        // Two heavy + two very light actors, two tiles: the light actors
        // co-locate with their communication partners rather than spreading.
        let app = pipeline_app(4, &[1000, 1, 1, 1000]);
        let arch = Architecture::homogeneous("a", 2, Interconnect::fsl()).unwrap();
        let b = bind(&app, &arch, &BindOptions::default()).unwrap();
        let g = app.graph();
        let a0 = g.actor_by_name("a0").unwrap();
        let a3 = g.actor_by_name("a3").unwrap();
        assert_ne!(
            b.tile_of[a0.0], b.tile_of[a3.0],
            "heavy actors should be load-balanced apart"
        );
    }

    #[test]
    fn pinning_respected() {
        let app = pipeline_app(3, &[10, 10, 10]);
        let arch = Architecture::homogeneous("a", 3, Interconnect::fsl()).unwrap();
        let a2 = app.graph().actor_by_name("a2").unwrap();
        let opts = BindOptions {
            pinned: vec![(a2, TileId(0))],
            ..Default::default()
        };
        let b = bind(&app, &arch, &opts).unwrap();
        assert_eq!(b.tile_of[a2.0], TileId(0));
    }

    #[test]
    fn no_implementation_is_infeasible() {
        let app = pipeline_app(2, &[1, 1]);
        let mut tiles = vec![mamps_platform::tile::TileConfig::master("t0")];
        tiles[0] = tiles[0]
            .clone()
            .with_processor(mamps_platform::types::ProcessorType::custom("dsp"));
        let arch = Architecture::new("a", tiles, Interconnect::fsl()).unwrap();
        assert!(matches!(
            bind(&app, &arch, &BindOptions::default()),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn memory_exhaustion_is_infeasible() {
        // Actors that almost fill a tile each, on a single tile.
        let mut b = SdfGraphBuilder::new("m");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel("e", x, 1, y, 1);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 1, 200 * 1024, 0).actor("y", 1, 200 * 1024, 0);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("a", 1, Interconnect::fsl()).unwrap();
        assert!(matches!(
            bind(&app, &arch, &BindOptions::default()),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn binding_is_deterministic() {
        let app = pipeline_app(5, &[7, 3, 9, 4, 6]);
        let arch = Architecture::homogeneous("a", 3, Interconnect::noc_for_tiles(3)).unwrap();
        let b1 = bind(&app, &arch, &BindOptions::default()).unwrap();
        let b2 = bind(&app, &arch, &BindOptions::default()).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn dispatch_uses_the_configured_strategy() {
        use crate::strategy::BindingStrategy as _;
        let app = pipeline_app(4, &[50, 50, 50, 50]);
        let arch = Architecture::homogeneous("a", 4, Interconnect::noc_for_tiles(4)).unwrap();
        let spiral = BindOptions::with_strategy(crate::strategy::by_name("spiral").unwrap());
        let via_dispatch = bind(&app, &arch, &spiral).unwrap();
        let direct = crate::strategy::SpiralBinder
            .bind(&app, &arch, &spiral)
            .unwrap();
        assert_eq!(via_dispatch, direct);
    }
}
