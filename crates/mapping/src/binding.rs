//! Actor-to-tile binding.
//!
//! A deterministic greedy list binder: actors are placed in order of
//! decreasing work (WCET x repetitions); each actor goes to the feasible
//! tile with the lowest weighted cost ([`crate::cost`]). Feasibility
//! requires an implementation for the tile's processor type and sufficient
//! tile memory. The algorithm mirrors the load-balancing binder of SDF3
//! (paper §5.1 keeps "the algorithms used during mapping ... from \[14\]").

use std::collections::HashMap;

use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_platform::types::{words_per_token, TileId};
use mamps_sdf::graph::ActorId;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::repetition::repetition_vector;

use crate::cost::{CostBreakdown, CostWeights};
use crate::error::MapError;
use crate::mapping::Binding;

/// Options for the binder.
#[derive(Debug, Clone, Default)]
pub struct BindOptions {
    /// Cost weights (defaults favour processing balance).
    pub weights: CostWeights,
    /// Force specific actors onto specific tiles (e.g. peripherals-needing
    /// actors onto the master tile).
    pub pinned: Vec<(ActorId, TileId)>,
}

/// Binds the application's actors to the architecture's tiles.
///
/// # Errors
///
/// * [`MapError::Sdf`] if the graph is inconsistent.
/// * [`MapError::Infeasible`] if some actor fits no tile (no implementation
///   for any tile's processor type, or memory exhausted everywhere).
pub fn bind(
    app: &ApplicationModel,
    arch: &Architecture,
    opts: &BindOptions,
) -> Result<Binding, MapError> {
    let graph = app.graph();
    let q = repetition_vector(graph)?;
    let n = graph.actor_count();

    // Work per actor: max WCET over its implementations x repetitions
    // (placement order heuristic only).
    let mut order: Vec<ActorId> = (0..n).map(ActorId).collect();
    let work = |a: ActorId| -> u64 {
        app.implementations(a)
            .iter()
            .map(|im| im.wcet)
            .max()
            .unwrap_or(0)
            * q.of(a)
    };
    order.sort_by_key(|&a| std::cmp::Reverse((work(a), std::cmp::Reverse(a.0))));

    let total_work: f64 = (0..n)
        .map(|i| work(ActorId(i)) as f64)
        .sum::<f64>()
        .max(1.0);
    let total_comm: f64 = graph
        .channels()
        .map(|(_, c)| {
            (q.of(c.src()) * c.production_rate() * words_per_token(c.token_size())) as f64
        })
        .sum::<f64>()
        .max(1.0);
    let mesh_diameter = match arch.interconnect() {
        Interconnect::Noc(noc) => (noc.width + noc.height - 2).max(1) as f64,
        Interconnect::Fsl { .. } => 1.0,
    };

    let pinned: HashMap<ActorId, TileId> = opts.pinned.iter().copied().collect();
    let mut tile_load = vec![0f64; arch.tile_count()];
    let mut tile_mem = vec![0u64; arch.tile_count()];
    let mut placed: Vec<Option<TileId>> = vec![None; n];

    for &a in &order {
        let candidates: Vec<TileId> = match pinned.get(&a) {
            Some(&t) => vec![t],
            None => (0..arch.tile_count()).map(TileId).collect(),
        };
        let mut best: Option<(f64, TileId)> = None;
        for t in candidates {
            let tile = arch.tile(t);
            let im = match app.implementation_for(a, tile.processor().name()) {
                Some(im) => im,
                None => continue,
            };
            let mem_needed = im.instruction_memory + im.data_memory;
            if tile_mem[t.0] + mem_needed > tile.imem_bytes() + tile.dmem_bytes() {
                continue;
            }
            let mut comm = 0f64;
            let mut lat = 0f64;
            let mut neighbours = 0u32;
            for (_, ch) in graph.channels() {
                let (other, volume) = if ch.src() == a {
                    (
                        ch.dst(),
                        (q.of(a) * ch.production_rate() * words_per_token(ch.token_size())) as f64,
                    )
                } else if ch.dst() == a {
                    (
                        ch.src(),
                        (q.of(ch.src()) * ch.production_rate() * words_per_token(ch.token_size()))
                            as f64,
                    )
                } else {
                    continue;
                };
                if other == a {
                    continue;
                }
                if let Some(ot) = placed[other.0] {
                    if ot != t {
                        let hops = match arch.interconnect() {
                            Interconnect::Noc(noc) => noc.hops(t, ot).max(1) as f64,
                            Interconnect::Fsl { .. } => 1.0,
                        };
                        comm += volume * hops;
                        lat += hops;
                        neighbours += 1;
                    }
                }
            }
            let breakdown = CostBreakdown {
                processing: (tile_load[t.0] + work(a) as f64) / total_work,
                memory: (tile_mem[t.0] + mem_needed) as f64
                    / (tile.imem_bytes() + tile.dmem_bytes()).max(1) as f64,
                communication: comm / total_comm,
                latency: if neighbours > 0 {
                    lat / neighbours as f64 / mesh_diameter
                } else {
                    0.0
                },
            };
            let cost = breakdown.weighted(&opts.weights);
            let better = match best {
                None => true,
                // Tie-break on tile id for determinism.
                Some((bc, bt)) => cost < bc - 1e-12 || (cost <= bc + 1e-12 && t.0 < bt.0),
            };
            if better {
                best = Some((cost, t));
            }
        }
        match best {
            Some((_, t)) => {
                placed[a.0] = Some(t);
                tile_load[t.0] += work(a) as f64;
                let im = app
                    .implementation_for(a, arch.tile(t).processor().name())
                    .expect("feasibility checked above");
                tile_mem[t.0] += im.instruction_memory + im.data_memory;
            }
            None => {
                return Err(MapError::Infeasible(format!(
                    "actor `{}` fits no tile (implementations: {:?})",
                    graph.actor(a).name(),
                    app.implementations(a)
                        .iter()
                        .map(|i| i.processor_type.as_str())
                        .collect::<Vec<_>>()
                )));
            }
        }
    }

    let tile_of: Vec<TileId> = placed.into_iter().map(|p| p.expect("all placed")).collect();
    let processor_of = tile_of
        .iter()
        .map(|&t| arch.tile(t).processor().clone())
        .collect();
    let wcet_of = (0..n)
        .map(|i| {
            app.implementation_for(ActorId(i), arch.tile(tile_of[i]).processor().name())
                .expect("chosen tiles have implementations")
                .wcet
        })
        .collect();
    Ok(Binding {
        tile_of,
        processor_of,
        wcet_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn pipeline_app(n: usize, wcets: &[u64]) -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("pipe");
        let ids: Vec<_> = (0..n).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..n - 1 {
            b.add_channel(format!("e{i}"), ids[i], 1, ids[i + 1], 1);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &wcet) in wcets.iter().enumerate().take(n) {
            mb.actor(format!("a{i}"), wcet, 4096, 512);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn heavy_actors_spread_over_tiles() {
        let app = pipeline_app(4, &[100, 100, 100, 100]);
        let arch = Architecture::homogeneous("a", 4, Interconnect::fsl()).unwrap();
        let b = bind(&app, &arch, &BindOptions::default()).unwrap();
        // Equal heavy work: every actor gets its own tile.
        let mut tiles: Vec<usize> = b.tile_of.iter().map(|t| t.0).collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), 4);
    }

    #[test]
    fn communication_pull_groups_light_actors() {
        // Two heavy + two very light actors, two tiles: the light actors
        // co-locate with their communication partners rather than spreading.
        let app = pipeline_app(4, &[1000, 1, 1, 1000]);
        let arch = Architecture::homogeneous("a", 2, Interconnect::fsl()).unwrap();
        let b = bind(&app, &arch, &BindOptions::default()).unwrap();
        let g = app.graph();
        let a0 = g.actor_by_name("a0").unwrap();
        let a3 = g.actor_by_name("a3").unwrap();
        assert_ne!(
            b.tile_of[a0.0], b.tile_of[a3.0],
            "heavy actors should be load-balanced apart"
        );
    }

    #[test]
    fn pinning_respected() {
        let app = pipeline_app(3, &[10, 10, 10]);
        let arch = Architecture::homogeneous("a", 3, Interconnect::fsl()).unwrap();
        let a2 = app.graph().actor_by_name("a2").unwrap();
        let opts = BindOptions {
            pinned: vec![(a2, TileId(0))],
            ..Default::default()
        };
        let b = bind(&app, &arch, &opts).unwrap();
        assert_eq!(b.tile_of[a2.0], TileId(0));
    }

    #[test]
    fn no_implementation_is_infeasible() {
        let app = pipeline_app(2, &[1, 1]);
        let mut tiles = vec![mamps_platform::tile::TileConfig::master("t0")];
        tiles[0] = tiles[0]
            .clone()
            .with_processor(mamps_platform::types::ProcessorType::custom("dsp"));
        let arch = Architecture::new("a", tiles, Interconnect::fsl()).unwrap();
        assert!(matches!(
            bind(&app, &arch, &BindOptions::default()),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn memory_exhaustion_is_infeasible() {
        // Actors that almost fill a tile each, on a single tile.
        let mut b = SdfGraphBuilder::new("m");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel("e", x, 1, y, 1);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 1, 200 * 1024, 0).actor("y", 1, 200 * 1024, 0);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("a", 1, Interconnect::fsl()).unwrap();
        assert!(matches!(
            bind(&app, &arch, &BindOptions::default()),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn binding_is_deterministic() {
        let app = pipeline_app(5, &[7, 3, 9, 4, 6]);
        let arch = Architecture::homogeneous("a", 3, Interconnect::noc_for_tiles(3)).unwrap();
        let b1 = bind(&app, &arch, &BindOptions::default()).unwrap();
        let b2 = bind(&app, &arch, &BindOptions::default()).unwrap();
        assert_eq!(b1, b2);
    }
}
