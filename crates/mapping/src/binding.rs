//! Actor-to-tile binding: options and strategy dispatch.
//!
//! The binding algorithm is pluggable (see [`crate::strategy`]): the
//! [`BindOptions`] carry a [`StrategyHandle`] alongside the cost weights
//! and pinning constraints, and [`bind`] dispatches to it. The default
//! strategy is the deterministic greedy list binder
//! ([`crate::strategy::GreedyBinder`]) — actors placed in order of
//! decreasing work (WCET x repetitions), each on the feasible tile with
//! the lowest weighted cost ([`crate::cost`]) — mirroring the
//! load-balancing binder of SDF3 (paper §5.1 keeps "the algorithms used
//! during mapping ... from \[14\]").

use std::sync::Arc;

use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_platform::types::TileId;
use mamps_sdf::cache::GlobalAnalysisCache;
use mamps_sdf::graph::ActorId;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::repetition::repetition_vector;
use serde::Serialize as _;

use crate::cost::CostWeights;
use crate::error::MapError;
use crate::mapping::{Binding, Mapping};
use crate::strategy::StrategyHandle;

/// Resources already committed on a partially occupied platform.
///
/// The multi-application admission loop ([`crate::multi`]) maps one
/// application at a time; every binder receives the occupancy of the
/// previously admitted applications through
/// [`BindOptions::occupancy`] and places the next application on the
/// *residual* resources: remaining tile memory, remaining NoC wires, and
/// (as a load-balancing hint) the work already running on each tile. An
/// empty occupancy — the default — reproduces single-application binding
/// exactly.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Occupancy {
    /// Implementation memory bytes (code + data footprints) already
    /// committed per tile (indexed by tile id; short vectors read as
    /// zero).
    pub tile_mem: Vec<u64>,
    /// Channel-buffer bytes already committed against each tile's data
    /// memory ([`crate::mapping::Mapping::buffer_bytes_per_tile`]).
    pub tile_buf: Vec<u64>,
    /// Work units (WCET × repetitions per iteration) already placed per
    /// tile.
    pub tile_work: Vec<u64>,
    /// Reserved NoC connections: `(from, to, wires)` per cross-tile
    /// channel of the already-admitted applications.
    pub connections: Vec<(TileId, TileId, u32)>,
}

impl Occupancy {
    /// An occupancy with all resources free on a `tiles`-tile platform.
    pub fn empty(tiles: usize) -> Occupancy {
        Occupancy {
            tile_mem: vec![0; tiles],
            tile_buf: vec![0; tiles],
            tile_work: vec![0; tiles],
            connections: Vec::new(),
        }
    }

    /// Memory bytes already committed on `tile` — implementation
    /// footprints plus channel-buffer bytes, since both live in the
    /// tile's memories. Binders place against what is genuinely left.
    pub fn mem_on(&self, tile: TileId) -> u64 {
        self.tile_mem.get(tile.0).copied().unwrap_or(0) + self.buf_on(tile)
    }

    /// Channel-buffer bytes already committed against `tile`'s dmem.
    pub fn buf_on(&self, tile: TileId) -> u64 {
        self.tile_buf.get(tile.0).copied().unwrap_or(0)
    }

    /// Work units already placed on `tile`.
    pub fn work_on(&self, tile: TileId) -> u64 {
        self.tile_work.get(tile.0).copied().unwrap_or(0)
    }

    /// Total work units recorded across all tiles.
    pub fn total_work(&self) -> u64 {
        self.tile_work.iter().sum()
    }

    /// Records the resources of a mapped application: per-tile memory of
    /// the chosen implementations, channel-buffer bytes against each
    /// tile's dmem, per-tile work, and the NoC connections of its
    /// cross-tile channels.
    ///
    /// # Errors
    ///
    /// Propagates consistency errors from the repetition vector (cannot
    /// happen for an application that was successfully mapped).
    pub fn occupy(&mut self, app: &ApplicationModel, mapping: &Mapping) -> Result<(), MapError> {
        let graph = app.graph();
        let q = repetition_vector(graph)?;
        let binding = &mapping.binding;
        let max_tile = binding.tile_of.iter().map(|t| t.0 + 1).max().unwrap_or(0);
        if self.tile_mem.len() < max_tile {
            self.tile_mem.resize(max_tile, 0);
            self.tile_buf.resize(max_tile, 0);
            self.tile_work.resize(max_tile, 0);
        }
        for (aid, _) in graph.actors() {
            let t = binding.tile_of[aid.0];
            if let Some(im) = app.implementation_for(aid, binding.processor_of[aid.0].name()) {
                self.tile_mem[t.0] += im.instruction_memory + im.data_memory;
            }
            self.tile_work[t.0] += binding.wcet_of[aid.0] * q.of(aid);
        }
        for (t, bytes) in mapping
            .buffer_bytes_per_tile(graph, self.tile_buf.len())
            .into_iter()
            .enumerate()
        {
            self.tile_buf[t] += bytes;
        }
        for (cid, ch) in graph.channels() {
            if ch.is_self_edge() || !binding.crosses_tiles(ch.src(), ch.dst()) {
                continue;
            }
            let wires = mapping.channels[cid.0].wires;
            if wires > 0 {
                self.connections.push((
                    binding.tile_of[ch.src().0],
                    binding.tile_of[ch.dst().0],
                    wires,
                ));
            }
        }
        Ok(())
    }

    /// Seeds a wire allocator with the reserved connections.
    ///
    /// # Errors
    ///
    /// [`MapError::Wires`] if the recorded reservations no longer fit the
    /// NoC (inconsistent occupancy).
    pub fn seed_wires(
        &self,
        alloc: &mut mamps_platform::noc::WireAllocator,
    ) -> Result<(), MapError> {
        for &(from, to, wires) in &self.connections {
            alloc.allocate(from, to, wires)?;
        }
        Ok(())
    }

    /// Seeds a wire allocator for `arch`'s interconnect, when it is a NoC.
    ///
    /// # Errors
    ///
    /// Same as [`Occupancy::seed_wires`].
    pub fn wire_allocator(
        &self,
        arch: &Architecture,
    ) -> Result<Option<mamps_platform::noc::WireAllocator>, MapError> {
        match arch.interconnect() {
            Interconnect::Noc(noc) => {
                let mut alloc = mamps_platform::noc::WireAllocator::new(*noc);
                self.seed_wires(&mut alloc)?;
                Ok(Some(alloc))
            }
            Interconnect::Fsl { .. } => Ok(None),
        }
    }
}

/// Options for the binder.
#[derive(Debug, Clone, Default)]
pub struct BindOptions {
    /// Cost weights (defaults favour processing balance). Used by the
    /// greedy strategy; other strategies may ignore them.
    pub weights: CostWeights,
    /// Force specific actors onto specific tiles (e.g. peripherals-needing
    /// actors onto the master tile). Honoured by every strategy.
    pub pinned: Vec<(ActorId, TileId)>,
    /// The binding strategy to dispatch to (default: greedy).
    pub strategy: StrategyHandle,
    /// Resources already committed by previously admitted applications
    /// (multi-application use-cases); empty for single-application flows.
    /// Honoured by every strategy: binding happens against the residual
    /// tile memory and, on NoCs, the residual wires.
    pub occupancy: Occupancy,
    /// Shared throughput-analysis cache, consulted by strategies whose
    /// cost function runs the state-space analysis (currently the genetic
    /// binder's fitness). [`crate::flow::map_application`] propagates its
    /// own [`MapOptions::cache`](crate::flow::MapOptions) here when unset.
    pub cache: Option<Arc<GlobalAnalysisCache>>,
}

impl BindOptions {
    /// The default options with a specific strategy.
    pub fn with_strategy(strategy: StrategyHandle) -> BindOptions {
        BindOptions {
            strategy,
            ..BindOptions::default()
        }
    }

    /// The binding-relevant options as a serde value, for pass
    /// fingerprinting: strategy name, weights, pins and occupancy. The
    /// analysis cache is deliberately excluded — it memoizes, never
    /// changes results.
    pub fn fingerprint_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                "strategy".to_string(),
                serde::Value::Str(self.strategy.name().to_string()),
            ),
            ("weights".to_string(), self.weights.to_value()),
            ("pinned".to_string(), self.pinned.to_value()),
            ("occupancy".to_string(), self.occupancy.to_value()),
        ])
    }
}

/// Binds the application's actors to the architecture's tiles by
/// dispatching to `opts.strategy`.
///
/// # Errors
///
/// * [`MapError::Sdf`] if the graph is inconsistent.
/// * [`MapError::Infeasible`] if some actor fits no tile (no implementation
///   for any tile's processor type, or memory exhausted everywhere).
pub fn bind(
    app: &ApplicationModel,
    arch: &Architecture,
    opts: &BindOptions,
) -> Result<Binding, MapError> {
    opts.strategy.bind(app, arch, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn pipeline_app(n: usize, wcets: &[u64]) -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("pipe");
        let ids: Vec<_> = (0..n).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..n - 1 {
            b.add_channel(format!("e{i}"), ids[i], 1, ids[i + 1], 1);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &wcet) in wcets.iter().enumerate().take(n) {
            mb.actor(format!("a{i}"), wcet, 4096, 512);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn heavy_actors_spread_over_tiles() {
        let app = pipeline_app(4, &[100, 100, 100, 100]);
        let arch = Architecture::homogeneous("a", 4, Interconnect::fsl()).unwrap();
        let b = bind(&app, &arch, &BindOptions::default()).unwrap();
        // Equal heavy work: every actor gets its own tile.
        let mut tiles: Vec<usize> = b.tile_of.iter().map(|t| t.0).collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), 4);
    }

    #[test]
    fn communication_pull_groups_light_actors() {
        // Two heavy + two very light actors, two tiles: the light actors
        // co-locate with their communication partners rather than spreading.
        let app = pipeline_app(4, &[1000, 1, 1, 1000]);
        let arch = Architecture::homogeneous("a", 2, Interconnect::fsl()).unwrap();
        let b = bind(&app, &arch, &BindOptions::default()).unwrap();
        let g = app.graph();
        let a0 = g.actor_by_name("a0").unwrap();
        let a3 = g.actor_by_name("a3").unwrap();
        assert_ne!(
            b.tile_of[a0.0], b.tile_of[a3.0],
            "heavy actors should be load-balanced apart"
        );
    }

    #[test]
    fn pinning_respected() {
        let app = pipeline_app(3, &[10, 10, 10]);
        let arch = Architecture::homogeneous("a", 3, Interconnect::fsl()).unwrap();
        let a2 = app.graph().actor_by_name("a2").unwrap();
        let opts = BindOptions {
            pinned: vec![(a2, TileId(0))],
            ..Default::default()
        };
        let b = bind(&app, &arch, &opts).unwrap();
        assert_eq!(b.tile_of[a2.0], TileId(0));
    }

    #[test]
    fn no_implementation_is_infeasible() {
        let app = pipeline_app(2, &[1, 1]);
        let mut tiles = vec![mamps_platform::tile::TileConfig::master("t0")];
        tiles[0] = tiles[0]
            .clone()
            .with_processor(mamps_platform::types::ProcessorType::custom("dsp"));
        let arch = Architecture::new("a", tiles, Interconnect::fsl()).unwrap();
        assert!(matches!(
            bind(&app, &arch, &BindOptions::default()),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn memory_exhaustion_is_infeasible() {
        // Actors that almost fill a tile each, on a single tile.
        let mut b = SdfGraphBuilder::new("m");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel("e", x, 1, y, 1);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 1, 200 * 1024, 0).actor("y", 1, 200 * 1024, 0);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("a", 1, Interconnect::fsl()).unwrap();
        assert!(matches!(
            bind(&app, &arch, &BindOptions::default()),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn binding_is_deterministic() {
        let app = pipeline_app(5, &[7, 3, 9, 4, 6]);
        let arch = Architecture::homogeneous("a", 3, Interconnect::noc_for_tiles(3)).unwrap();
        let b1 = bind(&app, &arch, &BindOptions::default()).unwrap();
        let b2 = bind(&app, &arch, &BindOptions::default()).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn dispatch_uses_the_configured_strategy() {
        use crate::strategy::BindingStrategy as _;
        let app = pipeline_app(4, &[50, 50, 50, 50]);
        let arch = Architecture::homogeneous("a", 4, Interconnect::noc_for_tiles(4)).unwrap();
        let spiral = BindOptions::with_strategy(crate::strategy::by_name("spiral").unwrap());
        let via_dispatch = bind(&app, &arch, &spiral).unwrap();
        let direct = crate::strategy::SpiralBinder
            .bind(&app, &arch, &spiral)
            .unwrap();
        assert_eq!(via_dispatch, direct);
    }
}
