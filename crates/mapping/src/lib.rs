//! # mamps-mapping — SDF3-style mapping onto the MAMPS platform
//!
//! The mapping side of the design flow (paper §5.1): cost-function-driven
//! actor binding, NoC wire allocation, static-order scheduling, buffer
//! sizing, and — the paper's modelling contribution — the Fig. 4 expansion
//! of inter-tile channels into a conservative interconnect model whose
//! state-space analysis yields the *guaranteed* worst-case throughput of
//! the implementation.
//!
//! The central entry point is [`flow::map_application`]; its output
//! [`mapping::Mapping`] is the *common input format* shared with the
//! platform generator and the simulator, eliminating the manual translation
//! step the paper criticizes in prior flows (§2).
//!
//! Binding is pluggable: [`strategy`] defines the [`BindingStrategy`]
//! trait with three built-in binders (`greedy`, `spiral`, `genetic`), all
//! verified through the same scheduling/buffer-sizing/throughput pipeline.
//!
//! Several applications can share one platform: [`multi`] admits the
//! applications of a [`multi::UseCase`] one at a time onto the residual
//! resources ([`binding::Occupancy`]), re-verifies every admitted
//! application's throughput constraint under static-order tile sharing,
//! and rejects applications that do not fit with a structured
//! [`multi::RejectReason`].
//!
//! ## Example
//!
//! ```
//! use mamps_mapping::flow::{map_application, MapOptions};
//! use mamps_platform::arch::Architecture;
//! use mamps_platform::interconnect::Interconnect;
//! use mamps_sdf::graph::SdfGraphBuilder;
//! use mamps_sdf::model::HomogeneousModelBuilder;
//!
//! let mut b = SdfGraphBuilder::new("app");
//! let src = b.add_actor("src", 1);
//! let dst = b.add_actor("dst", 1);
//! b.add_channel("data", src, 1, dst, 1);
//! let graph = b.build().unwrap();
//! let mut mb = HomogeneousModelBuilder::new("microblaze");
//! mb.actor("src", 50, 2048, 128).actor("dst", 80, 2048, 128);
//! let app = mb.finish(graph, None).unwrap();
//!
//! let arch = Architecture::homogeneous("mpsoc", 2, Interconnect::fsl()).unwrap();
//! let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
//! assert!(mapped.analysis.as_f64() > 0.0);
//! ```
//!
//! ## Multi-application example
//!
//! ```
//! use mamps_mapping::flow::MapOptions;
//! use mamps_mapping::multi::{map_use_case, UseCase};
//! use mamps_platform::arch::Architecture;
//! use mamps_platform::interconnect::Interconnect;
//! use mamps_sdf::graph::SdfGraphBuilder;
//! use mamps_sdf::model::HomogeneousModelBuilder;
//!
//! let mk = |name: &str, wcet: u64| {
//!     let mut b = SdfGraphBuilder::new(name);
//!     let x = b.add_actor(format!("{name}_x"), 1);
//!     let y = b.add_actor(format!("{name}_y"), 1);
//!     b.add_channel(format!("{name}_e"), x, 1, y, 1);
//!     let mut mb = HomogeneousModelBuilder::new("microblaze");
//!     mb.actor(format!("{name}_x"), wcet, 2048, 128)
//!       .actor(format!("{name}_y"), wcet, 2048, 128);
//!     mb.finish(b.build().unwrap(), None).unwrap()
//! };
//! let uc = UseCase::new(vec![mk("video", 80), mk("audio", 30)]).unwrap();
//! let arch = Architecture::homogeneous("mpsoc", 2, Interconnect::fsl()).unwrap();
//! let outcome = map_use_case(&uc, &arch, &MapOptions::default());
//! assert!(outcome.fully_admitted());
//! for app in &outcome.admitted {
//!     // Sharing can only cost throughput, never gain it.
//!     assert!(app.shared_guarantee <= app.mapped.analysis.iterations_per_cycle);
//! }
//! ```

pub mod binding;
pub mod comm_expand;
pub mod cost;
pub mod error;
pub mod flow;
pub mod mapping;
pub mod multi;
pub mod schedule;
pub mod strategy;
pub mod xml;

pub use binding::{bind, BindOptions, Occupancy};
pub use comm_expand::{expand, ExpandedGraph};
pub use error::MapError;
pub use flow::{map_application, MapOptions, MappedApplication};
pub use mamps_sdf::passes::{PassCache, PassReport, PassRunner};
pub use mapping::{Binding, ChannelAlloc, Mapping, ScheduleEntry};
pub use multi::{
    map_use_case, AdmittedApp, RejectReason, RejectedApp, SharedSystem, UseCase, UseCaseMapping,
};
pub use schedule::build_schedules;
pub use strategy::{BindingStrategy, GeneticBinder, GreedyBinder, SpiralBinder, StrategyHandle};
