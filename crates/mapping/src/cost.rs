//! Generic cost functions steering the binding (paper §5.1: "SDF3 uses
//! generic cost functions to steer the binding of the application to the
//! architecture based on processing, memory usage, communication, and
//! latency").

use serde::{Deserialize, Serialize};

/// Weights of the four binding cost dimensions. All costs are normalized to
/// roughly comparable magnitudes before weighting; the defaults favour
/// processing balance with a significant communication penalty, which is the
/// SDF3 default behaviour for throughput-constrained mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight of per-tile processing load (WCET x repetitions).
    pub processing: f64,
    /// Weight of per-tile memory usage.
    pub memory: f64,
    /// Weight of inter-tile communication volume (words x hops).
    pub communication: f64,
    /// Weight of connection latency (hops).
    pub latency: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            processing: 1.0,
            memory: 0.05,
            communication: 0.25,
            latency: 0.02,
        }
    }
}

/// The raw cost components of placing an actor on a candidate tile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Processing load of the tile after placement, normalized by the total
    /// application work.
    pub processing: f64,
    /// Memory fraction of the tile used after placement.
    pub memory: f64,
    /// Words crossing tiles to already-placed neighbours, x hops,
    /// normalized by the total communication volume.
    pub communication: f64,
    /// Mean hops to already-placed neighbours, normalized by mesh diameter.
    pub latency: f64,
}

impl CostBreakdown {
    /// Scalarizes the breakdown with the given weights.
    pub fn weighted(&self, w: &CostWeights) -> f64 {
        w.processing * self.processing
            + w.memory * self.memory
            + w.communication * self.communication
            + w.latency * self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_combination() {
        let b = CostBreakdown {
            processing: 1.0,
            memory: 0.5,
            communication: 2.0,
            latency: 0.25,
        };
        let w = CostWeights {
            processing: 1.0,
            memory: 2.0,
            communication: 0.5,
            latency: 4.0,
        };
        assert!((b.weighted(&w) - (1.0 + 1.0 + 1.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn default_weights_emphasize_processing() {
        let w = CostWeights::default();
        assert!(w.processing > w.memory);
        assert!(w.processing > w.latency);
    }
}
