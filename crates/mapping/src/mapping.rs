//! Mapping data structures: the output of the SDF3-style mapping flow and
//! the common input format shared with the platform generator (the paper's
//! §2 contribution: one format for both tools, no manual translation).

use serde::{Deserialize, Serialize};

use mamps_platform::types::{ProcessorType, TileId};
use mamps_sdf::graph::{ActorId, ChannelId};
use mamps_sdf::ratio::Ratio;

/// Actor-to-tile binding with the chosen implementations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// Tile of each actor (indexed by actor id).
    pub tile_of: Vec<TileId>,
    /// Processor type whose implementation was chosen, per actor.
    pub processor_of: Vec<ProcessorType>,
    /// WCET of the chosen implementation, per actor.
    pub wcet_of: Vec<u64>,
}

impl Binding {
    /// Actors bound to `tile`, in id order.
    pub fn actors_on(&self, tile: TileId) -> Vec<ActorId> {
        self.tile_of
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == tile)
            .map(|(i, _)| ActorId(i))
            .collect()
    }

    /// True if the channel's endpoints are on different tiles.
    pub fn crosses_tiles(&self, src: ActorId, dst: ActorId) -> bool {
        self.tile_of[src.0] != self.tile_of[dst.0]
    }
}

/// Resources allocated to one application channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelAlloc {
    /// SDM wires on a NoC route (0 for FSL or same-tile channels).
    pub wires: u32,
    /// Source-side buffer capacity in tokens (`alpha_src` in Fig. 4).
    pub alpha_src: u64,
    /// Destination-side buffer capacity in tokens (`alpha_dst` in Fig. 4).
    pub alpha_dst: u64,
    /// Buffer capacity in tokens for same-tile channels.
    pub local_capacity: u64,
}

/// One step of a tile's static-order schedule round.
///
/// The schedule is the *common input format* consumed by the throughput
/// analysis (as static-order constraint channels), by the platform generator
/// (as the C lookup table) and by the simulator — guaranteeing all three
/// agree on the execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleEntry {
    /// Fire an actor `reps` times.
    Fire {
        /// The actor to fire.
        actor: ActorId,
        /// Consecutive firings in this slot.
        reps: u64,
    },
    /// Serialize and send `reps` tokens of a channel (PE-executed
    /// serialization on plain tiles; absent on CA tiles).
    Send {
        /// The channel whose tokens are sent.
        channel: ChannelId,
        /// Tokens sent in this slot.
        reps: u64,
    },
    /// Receive and de-serialize `reps` tokens of a channel.
    Receive {
        /// The channel whose tokens are received.
        channel: ChannelId,
        /// Tokens received in this slot.
        reps: u64,
    },
}

impl ScheduleEntry {
    /// Repetitions of this slot within the round.
    pub fn reps(&self) -> u64 {
        match *self {
            ScheduleEntry::Fire { reps, .. }
            | ScheduleEntry::Send { reps, .. }
            | ScheduleEntry::Receive { reps, .. } => reps,
        }
    }
}

/// A complete mapping: binding, per-tile schedules, channel resources, and
/// the throughput the analysis guarantees for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// The actor binding.
    pub binding: Binding,
    /// Static-order schedule round per tile (indexed by tile id). A round
    /// executes `rounds_per_iteration[tile]` times per graph iteration.
    pub schedules: Vec<Vec<ScheduleEntry>>,
    /// Rounds per graph iteration, per tile.
    pub rounds_per_iteration: Vec<u64>,
    /// Channel resource allocation (indexed by channel id).
    pub channels: Vec<ChannelAlloc>,
    /// Guaranteed throughput in iterations per cycle (numerator,
    /// denominator) — the worst-case bound of the analysis.
    pub guaranteed_iterations: u64,
    /// Denominator of the guaranteed throughput.
    pub guaranteed_cycles: u64,
}

impl Mapping {
    /// Guaranteed throughput as an exact ratio.
    pub fn guaranteed(&self) -> Ratio {
        if self.guaranteed_cycles == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(
                self.guaranteed_iterations as i128,
                self.guaranteed_cycles as i128,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_queries() {
        let b = Binding {
            tile_of: vec![TileId(0), TileId(1), TileId(0)],
            processor_of: vec![
                ProcessorType::microblaze(),
                ProcessorType::microblaze(),
                ProcessorType::microblaze(),
            ],
            wcet_of: vec![1, 2, 3],
        };
        assert_eq!(b.actors_on(TileId(0)), vec![ActorId(0), ActorId(2)]);
        assert!(b.crosses_tiles(ActorId(0), ActorId(1)));
        assert!(!b.crosses_tiles(ActorId(0), ActorId(2)));
    }

    #[test]
    fn schedule_entry_reps() {
        assert_eq!(
            ScheduleEntry::Fire {
                actor: ActorId(0),
                reps: 3
            }
            .reps(),
            3
        );
        assert_eq!(
            ScheduleEntry::Send {
                channel: ChannelId(1),
                reps: 5
            }
            .reps(),
            5
        );
    }

    #[test]
    fn guaranteed_ratio() {
        let m = Mapping {
            binding: Binding {
                tile_of: vec![],
                processor_of: vec![],
                wcet_of: vec![],
            },
            schedules: vec![],
            rounds_per_iteration: vec![],
            channels: vec![],
            guaranteed_iterations: 1,
            guaranteed_cycles: 250,
        };
        assert_eq!(m.guaranteed(), Ratio::new(1, 250));
    }
}
