//! Mapping data structures: the output of the SDF3-style mapping flow and
//! the common input format shared with the platform generator (the paper's
//! §2 contribution: one format for both tools, no manual translation).

use serde::{Deserialize, Serialize};

use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_platform::types::{ProcessorType, TileId};
use mamps_sdf::graph::{ActorId, ChannelId, SdfGraph};
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::ratio::Ratio;

/// Actor-to-tile binding with the chosen implementations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// Tile of each actor (indexed by actor id).
    pub tile_of: Vec<TileId>,
    /// Processor type whose implementation was chosen, per actor.
    pub processor_of: Vec<ProcessorType>,
    /// WCET of the chosen implementation, per actor.
    pub wcet_of: Vec<u64>,
}

impl Binding {
    /// Actors bound to `tile`, in id order.
    pub fn actors_on(&self, tile: TileId) -> Vec<ActorId> {
        self.tile_of
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == tile)
            .map(|(i, _)| ActorId(i))
            .collect()
    }

    /// True if the channel's endpoints are on different tiles.
    pub fn crosses_tiles(&self, src: ActorId, dst: ActorId) -> bool {
        self.tile_of[src.0] != self.tile_of[dst.0]
    }
}

/// Resources allocated to one application channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelAlloc {
    /// SDM wires on a NoC route (0 for FSL or same-tile channels).
    pub wires: u32,
    /// Source-side buffer capacity in tokens (`alpha_src` in Fig. 4).
    pub alpha_src: u64,
    /// Destination-side buffer capacity in tokens (`alpha_dst` in Fig. 4).
    pub alpha_dst: u64,
    /// Buffer capacity in tokens for same-tile channels.
    pub local_capacity: u64,
}

/// One step of a tile's static-order schedule round.
///
/// The schedule is the *common input format* consumed by the throughput
/// analysis (as static-order constraint channels), by the platform generator
/// (as the C lookup table) and by the simulator — guaranteeing all three
/// agree on the execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleEntry {
    /// Fire an actor `reps` times.
    Fire {
        /// The actor to fire.
        actor: ActorId,
        /// Consecutive firings in this slot.
        reps: u64,
    },
    /// Serialize and send `reps` tokens of a channel (PE-executed
    /// serialization on plain tiles; absent on CA tiles).
    Send {
        /// The channel whose tokens are sent.
        channel: ChannelId,
        /// Tokens sent in this slot.
        reps: u64,
    },
    /// Receive and de-serialize `reps` tokens of a channel.
    Receive {
        /// The channel whose tokens are received.
        channel: ChannelId,
        /// Tokens received in this slot.
        reps: u64,
    },
}

impl ScheduleEntry {
    /// Repetitions of this slot within the round.
    pub fn reps(&self) -> u64 {
        match *self {
            ScheduleEntry::Fire { reps, .. }
            | ScheduleEntry::Send { reps, .. }
            | ScheduleEntry::Receive { reps, .. } => reps,
        }
    }
}

/// A complete mapping: binding, per-tile schedules, channel resources, and
/// the throughput the analysis guarantees for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// The actor binding.
    pub binding: Binding,
    /// Static-order schedule round per tile (indexed by tile id). A round
    /// executes `rounds_per_iteration[tile]` times per graph iteration.
    pub schedules: Vec<Vec<ScheduleEntry>>,
    /// Rounds per graph iteration, per tile.
    pub rounds_per_iteration: Vec<u64>,
    /// Channel resource allocation (indexed by channel id).
    pub channels: Vec<ChannelAlloc>,
    /// Guaranteed throughput in iterations per cycle (numerator,
    /// denominator) — the worst-case bound of the analysis.
    pub guaranteed_iterations: u64,
    /// Denominator of the guaranteed throughput.
    pub guaranteed_cycles: u64,
}

impl Mapping {
    /// Guaranteed throughput as an exact ratio.
    pub fn guaranteed(&self) -> Ratio {
        if self.guaranteed_cycles == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(
                self.guaranteed_iterations as i128,
                self.guaranteed_cycles as i128,
            )
        }
    }

    /// Total allocated NoC wire-links: the sum over cross-tile channels of
    /// allocated SDM wires times the route length in hops. Zero on FSL
    /// interconnects. A strategy-comparison metric: two mappings with the
    /// same throughput and area can still differ in how much of the mesh
    /// they reserve.
    pub fn noc_wire_units(&self, graph: &SdfGraph, arch: &Architecture) -> u64 {
        let Interconnect::Noc(noc) = arch.interconnect() else {
            return 0;
        };
        graph
            .channels()
            .map(|(cid, ch)| {
                if ch.is_self_edge() || !self.binding.crosses_tiles(ch.src(), ch.dst()) {
                    return 0;
                }
                let from = self.binding.tile_of[ch.src().0];
                let to = self.binding.tile_of[ch.dst().0];
                u64::from(self.channels[cid.0].wires) * noc.hops(from, to)
            })
            .sum()
    }

    /// Channel-buffer memory charged to each tile's data memory, in
    /// bytes: for a cross-tile channel, `alpha_src` tokens live in the
    /// source tile's dmem and `alpha_dst` tokens in the destination's;
    /// a same-tile channel keeps `local_capacity` tokens on its tile.
    /// Self-edges model actor state (Fig. 4) and are not buffered in
    /// dmem. The multi-application admission loop charges these bytes
    /// against tile dmem ([`crate::binding::Occupancy`]), so admission
    /// can fail on buffer memory, not just code and data footprints.
    pub fn buffer_bytes_per_tile(&self, graph: &SdfGraph, tiles: usize) -> Vec<u64> {
        let mut bytes = vec![0u64; tiles];
        for (cid, ch) in graph.channels() {
            if ch.is_self_edge() {
                continue;
            }
            let alloc = &self.channels[cid.0];
            let src = self.binding.tile_of[ch.src().0];
            let dst = self.binding.tile_of[ch.dst().0];
            if src == dst {
                bytes[src.0] += alloc.local_capacity * ch.token_size();
            } else {
                bytes[src.0] += alloc.alpha_src * ch.token_size();
                bytes[dst.0] += alloc.alpha_dst * ch.token_size();
            }
        }
        bytes
    }

    /// Structural validation of the mapping against the application and
    /// architecture it claims to map: every strategy's output must pass.
    ///
    /// Checks that every actor is bound to an existing tile whose processor
    /// matches the recorded implementation choice (processor type and WCET),
    /// that per-tile memory stays within the tile's capacity, that the
    /// channel allocation covers every channel, and that each actor is
    /// fired by its own tile's static-order schedule.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation found.
    pub fn validate(&self, app: &ApplicationModel, arch: &Architecture) -> Result<(), String> {
        let graph = app.graph();
        let n = graph.actor_count();
        if self.binding.tile_of.len() != n
            || self.binding.processor_of.len() != n
            || self.binding.wcet_of.len() != n
        {
            return Err(format!("binding does not cover all {n} actors"));
        }
        let tiles = arch.tile_count();
        let mut mem_used = vec![0u64; tiles];
        for (aid, actor) in graph.actors() {
            let t = self.binding.tile_of[aid.0];
            if t.0 >= tiles {
                return Err(format!("actor `{}` bound to nonexistent {t}", actor.name()));
            }
            let proc = arch.tile(t).processor();
            if self.binding.processor_of[aid.0] != *proc {
                return Err(format!(
                    "actor `{}` records processor `{}` but {t} has `{}`",
                    actor.name(),
                    self.binding.processor_of[aid.0].name(),
                    proc.name()
                ));
            }
            let Some(im) = app.implementation_for(aid, proc.name()) else {
                return Err(format!(
                    "actor `{}` has no implementation for `{}`",
                    actor.name(),
                    proc.name()
                ));
            };
            if im.wcet != self.binding.wcet_of[aid.0] {
                return Err(format!(
                    "actor `{}` records WCET {} but the `{}` implementation has {}",
                    actor.name(),
                    self.binding.wcet_of[aid.0],
                    proc.name(),
                    im.wcet
                ));
            }
            mem_used[t.0] += im.instruction_memory + im.data_memory;
        }
        for (t, &used) in mem_used.iter().enumerate() {
            let tile = arch.tile(TileId(t));
            let cap = tile.imem_bytes() + tile.dmem_bytes();
            if used > cap {
                return Err(format!(
                    "tile {t} overcommitted: {used} bytes used of {cap}"
                ));
            }
        }
        if self.channels.len() != graph.channel_count() {
            return Err(format!(
                "channel allocation covers {} of {} channels",
                self.channels.len(),
                graph.channel_count()
            ));
        }
        if self.schedules.len() != tiles || self.rounds_per_iteration.len() != tiles {
            return Err(format!("schedules do not cover all {tiles} tiles"));
        }
        for (aid, actor) in graph.actors() {
            let t = self.binding.tile_of[aid.0];
            let fired = self.schedules[t.0]
                .iter()
                .any(|e| matches!(e, ScheduleEntry::Fire { actor, .. } if *actor == aid));
            if !fired {
                return Err(format!(
                    "actor `{}` is not fired by its tile's schedule ({t})",
                    actor.name()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_queries() {
        let b = Binding {
            tile_of: vec![TileId(0), TileId(1), TileId(0)],
            processor_of: vec![
                ProcessorType::microblaze(),
                ProcessorType::microblaze(),
                ProcessorType::microblaze(),
            ],
            wcet_of: vec![1, 2, 3],
        };
        assert_eq!(b.actors_on(TileId(0)), vec![ActorId(0), ActorId(2)]);
        assert!(b.crosses_tiles(ActorId(0), ActorId(1)));
        assert!(!b.crosses_tiles(ActorId(0), ActorId(2)));
    }

    #[test]
    fn schedule_entry_reps() {
        assert_eq!(
            ScheduleEntry::Fire {
                actor: ActorId(0),
                reps: 3
            }
            .reps(),
            3
        );
        assert_eq!(
            ScheduleEntry::Send {
                channel: ChannelId(1),
                reps: 5
            }
            .reps(),
            5
        );
    }

    #[test]
    fn guaranteed_ratio() {
        let m = Mapping {
            binding: Binding {
                tile_of: vec![],
                processor_of: vec![],
                wcet_of: vec![],
            },
            schedules: vec![],
            rounds_per_iteration: vec![],
            channels: vec![],
            guaranteed_iterations: 1,
            guaranteed_cycles: 250,
        };
        assert_eq!(m.guaranteed(), Ratio::new(1, 250));
    }
}
