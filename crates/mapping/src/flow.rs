//! The complete mapping step of the design flow (paper §5.1), structured
//! as named passes: **bind** (with the strategy configured in
//! [`BindOptions`], see [`crate::strategy`]), **wire-alloc** (NoC SDM
//! wires), **schedule** (static order per tile), and **buffer-size**
//! (deadlock-driven then greedy growth toward the throughput target).
//! Whatever strategy produced the binding, the verification pipeline is
//! identical — so the worst-case guarantee holds for every strategy.
//!
//! Each pass is driven through a [`PassRunner`] (see
//! [`mamps_sdf::passes`]): its inputs are reduced to a stable
//! fingerprint, its output is a serializable value, and when the runner
//! carries a [`mamps_sdf::passes::PassCache`] an unchanged pass replays
//! its memoized output instead of re-executing. Fingerprints are chosen
//! per pass: `wire-alloc` and `schedule` never read actor execution
//! times, so their keys exclude WCETs and both replay across a
//! WCET-only edit; `bind` and `buffer-size` depend on WCETs and
//! re-execute. Replayed outputs are exactly the values the original run
//! produced, so cold, warm and incremental runs build identical
//! mappings by construction.

use std::cell::RefCell;
use std::sync::Arc;

use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_platform::noc::WireAllocator;
use mamps_sdf::buffer::capacity_lower_bound;
use mamps_sdf::cache::GlobalAnalysisCache;
use mamps_sdf::graph::SdfGraph;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::passes::{fingerprint, PassRunner};
use mamps_sdf::ratio::Ratio;
use mamps_sdf::state_space::{throughput, AnalysisOptions, ThroughputResult};
use mamps_sdf::SdfError;
use serde::{Deserialize, Serialize, Value};

use crate::binding::{bind, BindOptions};
use crate::comm_expand::{expand, ExpandedGraph};
use crate::error::MapError;
use crate::mapping::{ChannelAlloc, Mapping};
use crate::schedule::build_schedules;

/// Options of the mapping flow.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Binder options (strategy, cost weights, pinning).
    pub bind: BindOptions,
    /// Throughput target in iterations/cycle; `None` uses the application's
    /// constraint, and if that is absent too, buffers grow until saturation.
    pub target: Option<Ratio>,
    /// SDM wires requested per NoC connection (clamped to availability).
    pub wires_per_connection: u32,
    /// Budget of greedy buffer-growth steps.
    pub growth_budget: usize,
    /// State-space analysis limits.
    pub max_states: usize,
    /// Shared throughput-analysis cache. When set, every expand + analyse
    /// probe of the buffer-growth search consults the cache before falling
    /// back to the state-space kernel, so structurally identical candidate
    /// allocations — common across the points of a DSE sweep — are analysed
    /// once per process (or once ever, with a persistent cache directory).
    pub cache: Option<Arc<GlobalAnalysisCache>>,
    /// Pass runner: per-pass wall-time accounting and (when the runner
    /// carries a [`mamps_sdf::passes::PassCache`]) whole-pass
    /// memoization — unchanged passes replay instead of re-executing.
    /// `None` runs every pass directly with zero bookkeeping.
    pub passes: Option<Arc<PassRunner>>,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            bind: BindOptions::default(),
            target: None,
            wires_per_connection: 2,
            growth_budget: 32,
            max_states: 2_000_000,
            cache: None,
            passes: None,
        }
    }
}

impl MapOptions {
    /// The default options with a specific binding strategy.
    pub fn with_strategy(strategy: crate::strategy::StrategyHandle) -> MapOptions {
        MapOptions {
            bind: BindOptions::with_strategy(strategy),
            ..MapOptions::default()
        }
    }
}

/// A mapped application: the mapping, the expanded analysis graph it was
/// verified on, and the throughput analysis result.
#[derive(Debug, Clone)]
pub struct MappedApplication {
    /// The mapping (common input format for platform generation).
    pub mapping: Mapping,
    /// The Fig. 4-expanded, statically-ordered analysis graph.
    pub expanded: ExpandedGraph,
    /// The worst-case throughput analysis of `expanded`.
    pub analysis: ThroughputResult,
    /// Name of the binding strategy that produced the mapping.
    pub strategy: &'static str,
}

fn analysis_options(max_states: usize) -> AnalysisOptions {
    AnalysisOptions {
        auto_concurrency: true,
        max_states,
        ..AnalysisOptions::default()
    }
}

/// Runs `f` as the pass `name` under `passes`, or directly (uncached,
/// untimed, fingerprint never computed) when no runner is configured.
pub(crate) fn run_pass<T, E>(
    passes: &Option<Arc<PassRunner>>,
    name: &'static str,
    input: impl FnOnce() -> u64,
    f: impl FnOnce() -> Result<T, E>,
) -> Result<T, E>
where
    T: Serialize + for<'de> Deserialize<'de>,
    E: Serialize + for<'de> Deserialize<'de>,
{
    match passes {
        Some(r) => r.run(name, input, f),
        None => f(),
    }
}

/// The channel structure of `graph` — endpoints, rates, initial tokens —
/// as a fingerprint part. Deliberately excludes actor execution times:
/// passes that never read WCETs (`wire-alloc`, `schedule`) key on this,
/// so a WCET-only edit leaves their fingerprints unchanged and they
/// replay from the cache.
pub(crate) fn channel_structure_value(graph: &SdfGraph) -> Value {
    Value::Seq(
        graph
            .channels()
            .map(|(_, ch)| {
                Value::Seq(vec![
                    Value::Int(ch.src().0 as i128),
                    Value::Int(ch.dst().0 as i128),
                    Value::Int(ch.production_rate() as i128),
                    Value::Int(ch.consumption_rate() as i128),
                    Value::Int(ch.initial_tokens() as i128),
                ])
            })
            .collect(),
    )
}

/// How many deadlock-driven buffer-growth attempts are allowed before
/// giving up (shared by the single-application phase-1 loop and the
/// multi-app combined-schedule growth in [`crate::multi`]).
pub(crate) const DEADLOCK_GROWTH_ATTEMPTS: usize = 12;

/// One uniform buffer-growth step on every channel allocation: a
/// production of slack at the source, a consumption at the destination,
/// and one rate-gcd token of local capacity. Used whenever an analysis
/// deadlocks at the current allocation.
pub(crate) fn grow_channels_one_step(
    graph: &mamps_sdf::graph::SdfGraph,
    channels: &mut [ChannelAlloc],
) {
    for (cid, ch) in graph.channels() {
        let c = &mut channels[cid.0];
        c.alpha_src += ch.production_rate().max(ch.initial_tokens());
        c.alpha_dst += ch.consumption_rate();
        c.local_capacity += mamps_sdf::ratio::gcd(ch.production_rate(), ch.consumption_rate());
    }
}

/// Maps `app` onto `arch`: the automated "Mapping (SDF3)" step of Table 1,
/// as the pass sequence bind → wire-alloc → schedule → buffer-size.
///
/// # Errors
///
/// * Binding errors ([`MapError::Infeasible`], [`MapError::Wires`]).
/// * [`MapError::ConstraintUnmet`] if buffer growth saturates below the
///   throughput target.
/// * Propagated analysis errors.
///
/// Every error arm is memoized like a success: an infeasible point stays
/// infeasible on replay.
pub fn map_application(
    app: &ApplicationModel,
    arch: &Architecture,
    opts: &MapOptions,
) -> Result<MappedApplication, MapError> {
    // Analysing binders (the genetic fitness function) share the flow's
    // cache unless the caller configured a dedicated one.
    let bind_opts = if opts.cache.is_some() && opts.bind.cache.is_none() {
        let mut bind_opts = opts.bind.clone();
        bind_opts.cache.clone_from(&opts.cache);
        bind_opts
    } else {
        opts.bind.clone()
    };
    let binding = run_pass(
        &opts.passes,
        "bind",
        || {
            fingerprint(vec![
                app.to_value(),
                arch.to_value(),
                bind_opts.fingerprint_value(),
            ])
        },
        || bind(app, arch, &bind_opts),
    )?;
    let graph = app.graph();

    // WCET-annotated graph for analysis.
    let wcet_graph = {
        let mut g = graph.clone();
        for (aid, _) in graph.actors() {
            g.actor_mut(aid).set_execution_time(binding.wcet_of[aid.0]);
        }
        g
    };

    // NoC wire allocation, one connection per cross-tile channel. The
    // allocator starts from the occupancy's reservations so an admitted
    // use-case's connections are never double-allocated. Keyed WCET-free:
    // wires depend on placement and topology only.
    let wires = run_pass(
        &opts.passes,
        "wire-alloc",
        || {
            fingerprint(vec![
                channel_structure_value(graph),
                binding.tile_of.to_value(),
                arch.to_value(),
                opts.bind.occupancy.connections.to_value(),
                Value::Int(opts.wires_per_connection as i128),
            ])
        },
        || -> Result<Vec<u32>, MapError> {
            let mut wires = vec![0u32; graph.channel_count()];
            if let Interconnect::Noc(noc) = arch.interconnect() {
                let mut alloc = WireAllocator::new(*noc);
                opts.bind.occupancy.seed_wires(&mut alloc)?;
                for (cid, ch) in graph.channels() {
                    if ch.is_self_edge() || !binding.crosses_tiles(ch.src(), ch.dst()) {
                        continue;
                    }
                    let from = binding.tile_of[ch.src().0];
                    let to = binding.tile_of[ch.dst().0];
                    let avail = alloc.max_allocatable(from, to);
                    let want = opts.wires_per_connection.min(avail).max(1);
                    alloc.allocate(from, to, want)?;
                    wires[cid.0] = want;
                }
            }
            Ok(wires)
        },
    )?;

    // Static-order schedules. Also WCET-free: ordering follows the
    // repetition vector and liveness order, never execution times.
    let (schedules, rounds) = run_pass(
        &opts.passes,
        "schedule",
        || {
            fingerprint(vec![
                Value::Int(graph.actor_count() as i128),
                channel_structure_value(graph),
                binding.tile_of.to_value(),
                arch.to_value(),
            ])
        },
        || build_schedules(graph, &binding, arch),
    )?;

    // Initial buffer allocation.
    let channels: Vec<ChannelAlloc> = graph
        .channels()
        .map(|(cid, ch)| ChannelAlloc {
            wires: wires[cid.0],
            alpha_src: ch.initial_tokens() + 2 * ch.production_rate(),
            alpha_dst: 2 * ch.consumption_rate(),
            local_capacity: capacity_lower_bound(graph, cid),
        })
        .collect();

    let target = opts
        .target
        .or_else(|| app.throughput_constraint().map(|c| c.as_ratio()));

    let mut mapping = Mapping {
        binding,
        schedules,
        rounds_per_iteration: rounds,
        channels,
        guaranteed_iterations: 0,
        guaranteed_cycles: 1,
    };

    // Buffer sizing: the dominant pass (phase-1 deadlock growth plus the
    // phase-2 greedy search, each step one expand + throughput analysis).
    // On a replay only the final allocation and analysis come back; the
    // expanded graph is rebuilt below — expansion is deterministic and
    // costs one graph construction, far below a single analysis.
    let expanded_slot: RefCell<Option<ExpandedGraph>> = RefCell::new(None);
    let (sized_channels, analysis) = run_pass(
        &opts.passes,
        "buffer-size",
        || {
            fingerprint(vec![
                app.to_value(),
                arch.to_value(),
                mapping.binding.to_value(),
                mapping.channels.to_value(),
                target.to_value(),
                Value::Int(opts.growth_budget as i128),
                Value::Int(opts.max_states as i128),
            ])
        },
        || -> Result<(Vec<ChannelAlloc>, ThroughputResult), MapError> {
            // One mapping, mutated in place across the search: the greedy
            // growth probes many candidate allocations, and cloning the
            // binding, the schedules and the channel vector once per
            // candidate used to dominate the mapping step's cost outside
            // the throughput kernel.
            let mut m = mapping.clone();
            let analyse = |m: &Mapping| -> Result<(ExpandedGraph, ThroughputResult), MapError> {
                let e = expand(&wcet_graph, m, arch)?;
                let aopts = analysis_options(opts.max_states);
                // Buffer capacities are encoded structurally (reverse
                // channels) in the expanded graph, so the cache key needs
                // no capacity vector.
                let r = match &opts.cache {
                    Some(cache) => cache.throughput(&e.graph, &aopts),
                    None => throughput(&e.graph, &aopts),
                };
                Ok((e, r.map_err(MapError::Sdf)?))
            };

            // Phase 1: reach liveness by doubling buffers on deadlock.
            let mut attempt = 0;
            let mut current = loop {
                match analyse(&m) {
                    Ok(r) => break r,
                    Err(MapError::Sdf(SdfError::Deadlock(msg))) => {
                        attempt += 1;
                        if attempt > DEADLOCK_GROWTH_ATTEMPTS {
                            return Err(MapError::Sdf(SdfError::Deadlock(msg)));
                        }
                        grow_channels_one_step(graph, &mut m.channels);
                    }
                    Err(e) => return Err(e),
                }
            };

            // Applies or reverts one growth step of `kind` on channel `idx`.
            let grow = |m: &mut Mapping, idx: usize, kind: u8, revert: bool| {
                let ch = graph.channel(mamps_sdf::graph::ChannelId(idx));
                let (field, step) = match kind {
                    0 => (&mut m.channels[idx].alpha_src, ch.production_rate()),
                    1 => (&mut m.channels[idx].alpha_dst, ch.consumption_rate()),
                    _ => (
                        &mut m.channels[idx].local_capacity,
                        mamps_sdf::ratio::gcd(ch.production_rate(), ch.consumption_rate()),
                    ),
                };
                if revert {
                    *field -= step;
                } else {
                    *field += step;
                }
            };

            // Phase 2: greedy growth toward the target (or saturation when
            // no target is set, bounded by the growth budget). Candidates
            // are probed by mutating the mapping in place and reverting.
            let mut budget = opts.growth_budget;
            loop {
                let met = match target {
                    Some(t) => current.1.iterations_per_cycle >= t,
                    None => false,
                };
                if met || budget == 0 {
                    break;
                }
                budget -= 1;
                let mut best: Option<(usize, u8, (ExpandedGraph, ThroughputResult))> = None;
                for (cid, ch) in graph.channels() {
                    if ch.is_self_edge() {
                        continue;
                    }
                    let steps: &[u8] = if m.binding.crosses_tiles(ch.src(), ch.dst()) {
                        &[0, 1] // grow alpha_src / alpha_dst
                    } else {
                        &[2] // grow local capacity
                    };
                    for &kind in steps {
                        grow(&mut m, cid.0, kind, false);
                        let r = analyse(&m);
                        grow(&mut m, cid.0, kind, true);
                        if let Ok(r) = r {
                            let better = match &best {
                                None => r.1.iterations_per_cycle > current.1.iterations_per_cycle,
                                Some((_, _, b)) => {
                                    r.1.iterations_per_cycle > b.1.iterations_per_cycle
                                }
                            };
                            if better {
                                best = Some((cid.0, kind, r));
                            }
                        }
                    }
                }
                match best {
                    Some((idx, kind, r)) => {
                        grow(&mut m, idx, kind, false);
                        current = r;
                    }
                    None => break, // saturated
                }
            }

            if let Some(t) = target {
                if current.1.iterations_per_cycle < t {
                    return Err(MapError::ConstraintUnmet(format!(
                        "target {t}, achieved {}",
                        current.1.iterations_per_cycle
                    )));
                }
            }

            expanded_slot.replace(Some(current.0));
            Ok((m.channels, current.1))
        },
    )?;

    mapping.channels = sized_channels;
    mapping.guaranteed_iterations = analysis.iterations_per_cycle.numer().max(0) as u64;
    mapping.guaranteed_cycles = analysis.iterations_per_cycle.denom() as u64;
    let expanded = match expanded_slot.into_inner() {
        Some(e) => e,
        None => expand(&wcet_graph, &mapping, arch)?,
    };
    Ok(MappedApplication {
        mapping,
        expanded,
        analysis,
        strategy: opts.bind.strategy.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::{HomogeneousModelBuilder, ThroughputConstraint};
    use mamps_sdf::passes::PassCache;

    fn pipeline_app(wcets: &[u64], token_size: u64) -> ApplicationModel {
        let n = wcets.len();
        let mut b = SdfGraphBuilder::new("pipe");
        let ids: Vec<_> = (0..n).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..n - 1 {
            b.add_channel_full(format!("e{i}"), ids[i], 1, ids[i + 1], 1, 0, token_size);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &w) in wcets.iter().enumerate() {
            mb.actor(format!("a{i}"), w, 4096, 512);
        }
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn map_two_actor_pipeline_fsl() {
        let app = pipeline_app(&[100, 100], 16);
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let t = mapped.analysis.as_f64();
        assert!(t > 0.0);
        // Upper bound: one actor of 100 cycles per iteration -> <= 1/100.
        assert!(t <= 1.0 / 100.0 + 1e-9);
        assert_eq!(
            mapped.mapping.guaranteed(),
            mapped.analysis.iterations_per_cycle
        );
    }

    #[test]
    fn map_on_noc_allocates_wires() {
        let app = pipeline_app(&[50, 50, 50, 50], 16);
        let arch = Architecture::homogeneous("x", 4, Interconnect::noc_for_tiles(4)).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let cross: Vec<_> = mapped
            .mapping
            .channels
            .iter()
            .filter(|c| c.wires > 0)
            .collect();
        assert!(!cross.is_empty(), "pipeline over 4 tiles must cross tiles");
        assert!(mapped.analysis.as_f64() > 0.0);
    }

    #[test]
    fn single_tile_mapping_matches_sum_of_wcets() {
        let app = pipeline_app(&[30, 70], 4);
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        // Sequential execution: period >= 100 cycles.
        assert!(mapped.analysis.cycles_per_iteration() >= 100.0 - 1e-9);
    }

    #[test]
    fn constraint_met_or_error() {
        let app = pipeline_app(&[100, 100], 4);
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        // Unreachable target: 1 iteration per 10 cycles.
        let opts = MapOptions {
            target: Some(Ratio::new(1, 10)),
            ..MapOptions::default()
        };
        assert!(matches!(
            map_application(&app, &arch, &opts),
            Err(MapError::ConstraintUnmet(_))
        ));
    }

    #[test]
    fn constraint_from_model_applied() {
        let mut b = SdfGraphBuilder::new("c");
        let a = b.add_actor("a", 1);
        let c = b.add_actor("c", 1);
        b.add_channel("e", a, 1, c, 1);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("a", 40, 1024, 64).actor("c", 60, 1024, 64);
        let app = mb
            .finish(
                g,
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 100_000,
                }),
            )
            .unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        assert!(mapped.analysis.iterations_per_cycle >= Ratio::new(1, 100_000));
    }

    #[test]
    fn strategy_recorded_in_mapped_application() {
        let app = pipeline_app(&[100, 100], 16);
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        assert_eq!(mapped.strategy, "greedy");
        let spiral = MapOptions::with_strategy(crate::strategy::by_name("spiral").unwrap());
        let mapped = map_application(&app, &arch, &spiral).unwrap();
        assert_eq!(mapped.strategy, "spiral");
    }

    #[test]
    fn pass_cached_mapping_matches_plain_and_replays_warm() {
        let app = pipeline_app(&[50, 50, 50], 8);
        let arch = Architecture::homogeneous("x", 3, Interconnect::noc_for_tiles(3)).unwrap();
        let plain = map_application(&app, &arch, &MapOptions::default()).unwrap();

        let cache = Arc::new(GlobalAnalysisCache::new());
        let pass_cache = Arc::new(PassCache::new());
        let opts = MapOptions {
            cache: Some(Arc::clone(&cache)),
            passes: Some(Arc::new(PassRunner::with_cache(Arc::clone(&pass_cache)))),
            ..MapOptions::default()
        };
        let cold = map_application(&app, &arch, &opts).unwrap();
        let warm = map_application(&app, &arch, &opts).unwrap();

        // Neither cache ever changes results.
        assert_eq!(plain.mapping, cold.mapping);
        assert_eq!(plain.analysis, cold.analysis);
        assert_eq!(cold.mapping, warm.mapping);
        assert_eq!(cold.analysis, warm.analysis);

        // The cold run executed every pass once; the warm run replayed
        // every pass from the cache.
        let report = opts.passes.as_ref().unwrap().report();
        for name in ["bind", "wire-alloc", "schedule", "buffer-size"] {
            let p = report.get(name).unwrap_or_else(|| panic!("{name} ran"));
            assert_eq!((p.runs, p.hits), (1, 1), "pass {name}: {p:?}");
        }
        assert!(pass_cache.stats().hits >= 4, "{}", pass_cache.stats());
        assert!(cache.stats().inserts > 0, "{}", cache.stats());
    }

    #[test]
    fn wcet_edit_replays_wcet_free_passes_only() {
        // The edit must keep the work ordering (and hence the greedy
        // placement) stable, like a small WCET refinement would.
        let app = pipeline_app(&[50, 90, 50], 8);
        let edited = pipeline_app(&[50, 97, 50], 8);
        let arch = Architecture::homogeneous("x", 3, Interconnect::noc_for_tiles(3)).unwrap();

        let opts = MapOptions {
            passes: Some(Arc::new(PassRunner::with_cache(Arc::new(PassCache::new())))),
            ..MapOptions::default()
        };
        let first = map_application(&app, &arch, &opts).unwrap();
        let second = map_application(&edited, &arch, &opts).unwrap();
        // The edit only touched a WCET, so the placement is unchanged and
        // the WCET-free passes replay; bind and buffer-size re-execute.
        let report = opts.passes.as_ref().unwrap().report();
        for name in ["wire-alloc", "schedule"] {
            let p = report.get(name).unwrap();
            assert_eq!((p.runs, p.hits), (1, 1), "pass {name}: {p:?}");
        }
        for name in ["bind", "buffer-size"] {
            let p = report.get(name).unwrap();
            assert_eq!((p.runs, p.hits), (2, 0), "pass {name}: {p:?}");
        }
        // And the results are honest re-computations.
        assert_eq!(
            first.mapping.binding.tile_of,
            second.mapping.binding.tile_of
        );
        assert_ne!(
            first.mapping.binding.wcet_of,
            second.mapping.binding.wcet_of
        );
    }

    #[test]
    fn more_tiles_do_not_hurt() {
        let app = pipeline_app(&[80, 80, 80], 8);
        let t1 = {
            let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
            map_application(&app, &arch, &MapOptions::default())
                .unwrap()
                .analysis
                .as_f64()
        };
        let t3 = {
            let arch = Architecture::homogeneous("x", 3, Interconnect::fsl()).unwrap();
            map_application(&app, &arch, &MapOptions::default())
                .unwrap()
                .analysis
                .as_f64()
        };
        assert!(
            t3 >= t1,
            "pipelining over 3 tiles ({t3}) should beat 1 tile ({t1})"
        );
    }
}
