//! Multi-application use-cases: incremental mapping with per-application
//! throughput guarantees.
//!
//! The MAMPS platform is explicitly designed to host several
//! throughput-constrained applications at once (paper §4), but the mapping
//! flow of §5.1 places one application at a time. This module closes the
//! gap with the standard design-time admission-control shape (after
//! Weichslgartner et al.'s design-time/run-time methodology, and Benhaoua
//! et al.'s run-time mapping on partially occupied NoCs):
//!
//! 1. Applications of a [`UseCase`] are admitted **one at a time**, in
//!    order. Each is bound by the configured
//!    [`BindingStrategy`](crate::strategy::BindingStrategy) against
//!    the *residual* resources ([`Occupancy`]) left by the applications
//!    admitted before it — remaining tile memory, remaining SDM NoC wires —
//!    and carried through the unchanged wire-allocation / scheduling /
//!    buffer-sizing pipeline of [`map_application`].
//! 2. Tiles shared between applications are arbitrated by **static-order
//!    round concatenation**: a shared tile executes application A's round,
//!    then B's round, cyclically (the MAMPS scheduler stays a lookup
//!    table). The admission step builds the combined analysis graph of
//!    every *interference group* (applications transitively sharing
//!    tiles), applies the Fig. 4 expansion and the static-order constraint
//!    rings, and re-runs the state-space analysis — each application's
//!    budget is thereby reduced by exactly the resource share the others
//!    consume.
//! 3. An application is **rejected with a structured reason**
//!    ([`RejectReason`]) when it cannot be bound on the residual
//!    resources, when the combined analysis fails (e.g. the concatenated
//!    static orders deadlock at the admitted buffer sizes), or when
//!    admitting it would drop any application's shared guarantee below
//!    its throughput constraint — including the constraints of
//!    previously admitted applications, which are re-verified on every
//!    admission.
//!
//! Within an interference group the concatenated static orders make the
//! applications proceed in lockstep: one combined iteration completes one
//! iteration of every member, so the group's guaranteed throughput is a
//! conservative per-application bound. Applications on disjoint tiles
//! interfere with nothing (FSL FIFOs are point-to-point, SDM wires are
//! exclusively allocated) and keep their isolation guarantee.
//!
//! The [`SharedSystem`] of each group is ready for the cycle-level
//! simulator: `mamps_sim::System::new_with_repetitions` runs all member
//! applications concurrently on the shared tiles and the measurement
//! validates every per-application bound (see `mamps_core::flow`'s
//! multi-application entry point and the `mamps map-multi` CLI command).

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use mamps_platform::arch::Architecture;
use mamps_platform::types::TileId;
use mamps_sdf::graph::{ActorId, ChannelId, SdfGraph, SdfGraphBuilder};
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::ratio::{gcd, Ratio};
use mamps_sdf::repetition::repetition_vector;
use mamps_sdf::state_space::{throughput, AnalysisOptions, ThroughputResult};

use crate::binding::Occupancy;
use crate::comm_expand::expand;
use crate::error::MapError;
use crate::flow::{map_application, run_pass, MapOptions, MappedApplication};
use crate::mapping::{Binding, ChannelAlloc, Mapping, ScheduleEntry};
use mamps_sdf::cache::GraphFingerprint;
use mamps_sdf::passes::fingerprint;
use serde::Serialize as _;

/// An ordered set of applications to host concurrently on one platform.
///
/// The order is the admission order: earlier applications get first pick
/// of the resources, mirroring a running system that admits applications
/// as they arrive. Application (graph) names must be unique — they prefix
/// the actor and channel names of the combined analysis graphs.
#[derive(Debug, Clone)]
pub struct UseCase {
    apps: Vec<ApplicationModel>,
}

impl UseCase {
    /// Builds a use-case from the applications in admission order.
    ///
    /// # Errors
    ///
    /// [`MapError::Infeasible`] if the list is empty or two applications
    /// share a graph name.
    pub fn new(apps: Vec<ApplicationModel>) -> Result<UseCase, MapError> {
        if apps.is_empty() {
            return Err(MapError::Infeasible(
                "use-case contains no applications".into(),
            ));
        }
        let mut names = BTreeSet::new();
        for app in &apps {
            if !names.insert(app.graph().name().to_string()) {
                return Err(MapError::Infeasible(format!(
                    "duplicate application name `{}` in use-case",
                    app.graph().name()
                )));
            }
        }
        Ok(UseCase { apps })
    }

    /// The applications in admission order.
    pub fn apps(&self) -> &[ApplicationModel] {
        &self.apps
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True if the use-case holds no applications (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

/// Why an application was not admitted.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RejectReason {
    /// The application could not be mapped on the residual resources
    /// (binding, wires, scheduling, buffer sizing, or its own constraint
    /// in isolation).
    Map(MapError),
    /// The combined shared-platform analysis failed — most commonly the
    /// concatenated static-order schedules deadlock at the admitted
    /// buffer sizes.
    SharedAnalysis(String),
    /// Admitting the application would drop `victim`'s shared guarantee
    /// below its throughput constraint. `victim` may be the candidate
    /// itself or any previously admitted application.
    GuaranteeViolated {
        /// The application whose constraint would be violated.
        victim: String,
        /// `victim`'s required throughput (iterations/cycle).
        required: Ratio,
        /// The shared guarantee admission would leave `victim` with.
        achieved: Ratio,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Map(e) => write!(f, "mapping failed: {e}"),
            RejectReason::SharedAnalysis(m) => {
                write!(f, "shared-platform analysis failed: {m}")
            }
            RejectReason::GuaranteeViolated {
                victim,
                required,
                achieved,
            } => write!(
                f,
                "admission would violate `{victim}`: requires {required} \
                 iterations/cycle, shared guarantee would be {achieved}"
            ),
        }
    }
}

/// An application the admission loop accepted.
#[derive(Debug, Clone)]
pub struct AdmittedApp {
    /// Position in the use-case's admission order.
    pub index: usize,
    /// The application's (graph) name.
    pub name: String,
    /// The mapping produced on the residual resources, with its
    /// *isolation* analysis (no sharing).
    pub mapped: MappedApplication,
    /// The application's own throughput constraint, if any.
    pub constraint: Option<Ratio>,
    /// The guaranteed throughput under sharing: the lockstep bound of the
    /// application's interference group. Equals the isolation bound when
    /// the application shares no tile.
    pub shared_guarantee: Ratio,
    /// Index of the application's interference group in
    /// [`UseCaseMapping::groups`].
    pub group: usize,
}

impl AdmittedApp {
    /// The tiles this application occupies, ascending.
    pub fn tiles(&self) -> Vec<TileId> {
        let set: BTreeSet<usize> = self
            .mapped
            .mapping
            .binding
            .tile_of
            .iter()
            .map(|t| t.0)
            .collect();
        set.into_iter().map(TileId).collect()
    }
}

/// An application the admission loop rejected.
#[derive(Debug, Clone)]
pub struct RejectedApp {
    /// Position in the use-case's admission order.
    pub index: usize,
    /// The application's (graph) name.
    pub name: String,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// One member of a [`SharedSystem`].
#[derive(Debug, Clone)]
pub struct GroupMember {
    /// Index into [`UseCaseMapping::admitted`].
    pub admitted: usize,
    /// The member's actor ids within the combined graph.
    pub actors: Range<usize>,
    /// The member's channel ids within the combined graph.
    pub channels: Range<usize>,
    /// The member's own repetition vector (indexed by its local actor id).
    pub q: Vec<u64>,
}

/// The combined executable system of one interference group: the
/// WCET-annotated union graph of all member applications and the combined
/// mapping whose per-tile schedules concatenate the members' rounds.
///
/// Ready for both the state-space analysis (via [`expand`]) and the
/// cycle-level simulator (`System::new_with_repetitions` with
/// [`SharedSystem::combined_repetitions`]).
#[derive(Debug, Clone)]
pub struct SharedSystem {
    /// The union graph; actor/channel names are `"{app}.{name}"`.
    pub graph: SdfGraph,
    /// The combined mapping (binding, concatenated schedules, channel
    /// allocations, and the group's guaranteed throughput).
    pub mapping: Mapping,
    /// The member applications, in admission order.
    pub members: Vec<GroupMember>,
    /// The group's worst-case throughput under sharing — one combined
    /// iteration completes one iteration of every member, so this is each
    /// member's guaranteed rate.
    pub analysis: ThroughputResult,
}

impl SharedSystem {
    /// The repetition vector of the union graph: each member's own vector,
    /// concatenated. (The union graph is disconnected, so this cannot be
    /// recomputed from the graph alone; pass it to
    /// `System::new_with_repetitions`.)
    pub fn combined_repetitions(&self) -> Vec<u64> {
        let n = self.graph.actor_count();
        let mut q = vec![0u64; n];
        for m in &self.members {
            for (local, global) in m.actors.clone().enumerate() {
                q[global] = m.q[local];
            }
        }
        q
    }

    /// Completed iterations of member `member` given per-actor firing
    /// counts of the combined graph (e.g. from a simulation measurement).
    pub fn member_iterations(&self, member: usize, firings: &[u64]) -> u64 {
        let m = &self.members[member];
        m.actors
            .clone()
            .enumerate()
            .map(|(local, global)| firings[global] / m.q[local].max(1))
            .min()
            .unwrap_or(0)
    }
}

/// The outcome of mapping a [`UseCase`]: the admitted applications with
/// their per-application guarantees, the rejected ones with structured
/// reasons, the combined executable system of every interference group,
/// and the final resource occupancy.
#[derive(Debug, Clone)]
pub struct UseCaseMapping {
    /// Admitted applications, in admission order.
    pub admitted: Vec<AdmittedApp>,
    /// Rejected applications, in admission order.
    pub rejected: Vec<RejectedApp>,
    /// Interference groups over the admitted applications.
    pub groups: Vec<SharedSystem>,
    /// Resources committed by the admitted applications.
    pub occupancy: Occupancy,
}

impl UseCaseMapping {
    /// True when every application of the use-case was admitted.
    pub fn fully_admitted(&self) -> bool {
        self.rejected.is_empty()
    }
}

fn analysis_options(max_states: usize) -> AnalysisOptions {
    AnalysisOptions {
        auto_concurrency: true,
        max_states,
        ..AnalysisOptions::default()
    }
}

/// Maps every application of `uc` onto `arch`, one at a time, verifying
/// all per-application guarantees under sharing after each admission.
///
/// `opts` configures the per-application mapping step (binding strategy,
/// wires, growth budget); each application's throughput target comes from
/// its own model constraint unless `opts.target` overrides it for all.
/// Applications that cannot be admitted are recorded in
/// [`UseCaseMapping::rejected`] — the loop continues with the remaining
/// ones, so a use-case result is always produced.
pub fn map_use_case(uc: &UseCase, arch: &Architecture, opts: &MapOptions) -> UseCaseMapping {
    let mut occupancy = Occupancy::empty(arch.tile_count());
    let mut admitted: Vec<AdmittedApp> = Vec::new();
    let mut rejected: Vec<RejectedApp> = Vec::new();
    let mut groups: Vec<SharedSystem> = Vec::new();

    for (index, app) in uc.apps().iter().enumerate() {
        let name = app.graph().name().to_string();
        let mut app_opts = opts.clone();
        app_opts.bind.occupancy = occupancy.clone();
        let mapped = match map_application(app, arch, &app_opts) {
            Ok(m) => m,
            Err(e) => {
                rejected.push(RejectedApp {
                    index,
                    name,
                    reason: RejectReason::Map(e),
                });
                continue;
            }
        };

        // Buffer-memory admission check: channel buffers live in tile data
        // memory, so the candidate's allocation plus the already-admitted
        // buffers must fit each PE tile's dmem (CA/IP tiles buffer in
        // dedicated NI/CA RAM and are exempt). The binder cannot see the
        // buffers — they are sized after binding — hence the post-hoc
        // check here.
        let cand_buf = mapped
            .mapping
            .buffer_bytes_per_tile(app.graph(), arch.tile_count());
        let overflow = (0..arch.tile_count()).find_map(|t| {
            let tile = TileId(t);
            if !matches!(
                arch.tile(tile).kind(),
                mamps_platform::tile::TileKind::Master | mamps_platform::tile::TileKind::Slave
            ) {
                return None;
            }
            let need = occupancy.buf_on(tile) + cand_buf[t];
            let dmem = arch.tile(tile).dmem_bytes();
            (need > dmem).then_some((t, need, dmem))
        });
        if let Some((t, need, dmem)) = overflow {
            rejected.push(RejectedApp {
                index,
                name,
                reason: RejectReason::Map(MapError::Infeasible(format!(
                    "channel buffers need {need} bytes of tile {t} data memory \
                     ({dmem} bytes of dmem)"
                ))),
            });
            continue;
        }

        // Trial admission: regroup and re-verify everybody under sharing.
        let mut members: Vec<(&ApplicationModel, &MappedApplication)> = admitted
            .iter()
            .map(|a| (&uc.apps()[a.index], &a.mapped))
            .collect();
        members.push((app, &mapped));
        match verify_shared(&members, &groups, arch, opts) {
            Ok(trial_groups) => {
                if let Some(reason) = first_violation(&members, &trial_groups, opts) {
                    rejected.push(RejectedApp {
                        index,
                        name,
                        reason,
                    });
                    continue;
                }
                // The interference groups deploy *grown* channel
                // allocations — batch-scaled by `combine_group` when
                // members' rounds are fused, and possibly grown further to
                // liveness by the shared analysis — so the buffer bytes
                // that actually land in tile memory are the groups'
                // totals, not the sum of the members' isolation sizings
                // checked above. Re-check the grown allocation against
                // dmem and charge it below.
                let mut grown = vec![0u64; arch.tile_count()];
                for g in &trial_groups {
                    let per_tile = g.mapping.buffer_bytes_per_tile(&g.graph, arch.tile_count());
                    for (t, b) in per_tile.into_iter().enumerate() {
                        grown[t] += b;
                    }
                }
                let overflow = (0..arch.tile_count()).find_map(|t| {
                    let tile = TileId(t);
                    if !matches!(
                        arch.tile(tile).kind(),
                        mamps_platform::tile::TileKind::Master
                            | mamps_platform::tile::TileKind::Slave
                    ) {
                        return None;
                    }
                    let dmem = arch.tile(tile).dmem_bytes();
                    (grown[t] > dmem).then_some((t, grown[t], dmem))
                });
                if let Some((t, need, dmem)) = overflow {
                    rejected.push(RejectedApp {
                        index,
                        name,
                        reason: RejectReason::Map(MapError::Infeasible(format!(
                            "shared channel buffers grow to {need} bytes of tile {t} \
                             data memory ({dmem} bytes of dmem)"
                        ))),
                    });
                    continue;
                }
                if let Err(e) = occupancy.occupy(app, &mapped.mapping) {
                    rejected.push(RejectedApp {
                        index,
                        name,
                        reason: RejectReason::Map(e),
                    });
                    continue;
                }
                // The groups partition the admitted applications, so their
                // grown totals replace the isolation-sized buffer charges
                // `occupy` just recorded.
                occupancy.tile_buf = grown;
                let constraint = effective_constraint(app, opts);
                admitted.push(AdmittedApp {
                    index,
                    name,
                    mapped,
                    constraint,
                    shared_guarantee: Ratio::ZERO, // refreshed below
                    group: 0,                      // refreshed below
                });
                groups = trial_groups;
                for (gi, g) in groups.iter().enumerate() {
                    for m in &g.members {
                        admitted[m.admitted].shared_guarantee = g.analysis.iterations_per_cycle;
                        admitted[m.admitted].group = gi;
                    }
                }
            }
            Err(reason) => rejected.push(RejectedApp {
                index,
                name,
                reason,
            }),
        }
    }

    UseCaseMapping {
        admitted,
        rejected,
        groups,
        occupancy,
    }
}

/// Partitions `members` into interference groups (transitive tile
/// sharing) and analyses each group's combined system. Groups whose
/// membership is unchanged from `prev` (the groups of the previous
/// admission step) are reused as-is — admitted members' mappings never
/// change, so only the group(s) the candidate merges need the expensive
/// combine + expansion + state-space pass.
fn verify_shared(
    members: &[(&ApplicationModel, &MappedApplication)],
    prev: &[SharedSystem],
    arch: &Architecture,
    opts: &MapOptions,
) -> Result<Vec<SharedSystem>, RejectReason> {
    // Union-find over members keyed by shared tiles.
    let tiles: Vec<BTreeSet<usize>> = members
        .iter()
        .map(|(_, m)| m.mapping.binding.tile_of.iter().map(|t| t.0).collect())
        .collect();
    let mut parent: Vec<usize> = (0..members.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for i in 0..members.len() {
        for j in i + 1..members.len() {
            if !tiles[i].is_disjoint(&tiles[j]) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    let (lo, hi) = (ri.min(rj), ri.max(rj));
                    parent[hi] = lo;
                }
            }
        }
    }
    // Groups in order of their first member.
    let mut roots: Vec<usize> = Vec::new();
    let mut group_members: Vec<Vec<usize>> = Vec::new();
    for i in 0..members.len() {
        let r = find(&mut parent, i);
        match roots.iter().position(|&x| x == r) {
            Some(g) => group_members[g].push(i),
            None => {
                roots.push(r);
                group_members.push(vec![i]);
            }
        }
    }

    let mut groups = Vec::with_capacity(group_members.len());
    for idxs in &group_members {
        // Unchanged membership (same admitted indices, and the candidate —
        // the last member — is not part of it): reuse the analysed system.
        if let Some(g) = prev.iter().find(|g| {
            g.members.len() == idxs.len()
                && g.members.iter().zip(idxs).all(|(m, &i)| m.admitted == i)
        }) {
            groups.push(g.clone());
            continue;
        }
        let selected: Vec<(usize, &ApplicationModel, &MappedApplication)> = idxs
            .iter()
            .map(|&i| (i, members[i].0, members[i].1))
            .collect();
        let (graph, mut mapping, spans) = combine_group(&selected, arch)
            .map_err(|e| RejectReason::SharedAnalysis(e.to_string()))?;
        let analysis = if selected.len() == 1 {
            // Nothing shares these tiles: the isolation analysis is exact.
            selected[0].2.analysis.clone()
        } else {
            // Concatenated (batched) rounds can need more buffer slack
            // than each member's isolation sizing provided; grow the
            // combined allocation to liveness exactly like the mapping
            // flow's phase 1. The simulator deploys the same grown
            // allocation, so the bound stays exact for the shared system.
            // Memoized as the `verify-shared` pass: an unchanged group
            // (same combined graph incl. WCETs, same mapping) replays its
            // grown allocation and analysis.
            let (grown_channels, analysis) = run_pass(
                &opts.passes,
                "verify-shared",
                || {
                    fingerprint(vec![
                        serde::Value::Int(i128::from(GraphFingerprint::of(&graph).hash())),
                        mapping.to_value(),
                        serde::Value::Int(opts.max_states as i128),
                    ])
                },
                || -> Result<(Vec<ChannelAlloc>, ThroughputResult), RejectReason> {
                    let mut m = mapping.clone();
                    let mut attempt = 0;
                    let analysis = loop {
                        let result = expand(&graph, &m, arch).and_then(|e| {
                            let aopts = analysis_options(opts.max_states);
                            match &opts.cache {
                                Some(cache) => cache.throughput(&e.graph, &aopts),
                                None => throughput(&e.graph, &aopts),
                            }
                            .map_err(MapError::Sdf)
                        });
                        match result {
                            Ok(t) => break t,
                            Err(MapError::Sdf(mamps_sdf::SdfError::Deadlock(msg))) => {
                                attempt += 1;
                                if attempt > crate::flow::DEADLOCK_GROWTH_ATTEMPTS {
                                    return Err(RejectReason::SharedAnalysis(format!(
                                        "combined static orders stay deadlocked after \
                                         {attempt} buffer-growth steps: {msg}"
                                    )));
                                }
                                crate::flow::grow_channels_one_step(&graph, &mut m.channels);
                            }
                            Err(e) => return Err(RejectReason::SharedAnalysis(e.to_string())),
                        }
                    };
                    Ok((m.channels, analysis))
                },
            )?;
            mapping.channels = grown_channels;
            analysis
        };
        mapping.guaranteed_iterations = analysis.iterations_per_cycle.numer().max(0) as u64;
        mapping.guaranteed_cycles = analysis.iterations_per_cycle.denom() as u64;
        groups.push(SharedSystem {
            graph,
            mapping,
            members: spans,
            analysis,
        });
    }
    Ok(groups)
}

/// The throughput an application must sustain: the global
/// [`MapOptions::target`] override when set, else the application's own
/// model constraint. Must match what [`map_application`] enforced in
/// isolation, so the shared verification and the recorded
/// [`AdmittedApp::constraint`] agree.
fn effective_constraint(app: &ApplicationModel, opts: &MapOptions) -> Option<Ratio> {
    opts.target
        .or_else(|| app.throughput_constraint().map(|c| c.as_ratio()))
}

/// The first per-application constraint the grouped guarantees violate,
/// in deterministic (group, member) order.
fn first_violation(
    members: &[(&ApplicationModel, &MappedApplication)],
    groups: &[SharedSystem],
    opts: &MapOptions,
) -> Option<RejectReason> {
    for g in groups {
        for m in &g.members {
            let (app, _) = members[m.admitted];
            if let Some(required) = effective_constraint(app, opts) {
                if g.analysis.iterations_per_cycle < required {
                    return Some(RejectReason::GuaranteeViolated {
                        victim: app.graph().name().to_string(),
                        required,
                        achieved: g.analysis.iterations_per_cycle,
                    });
                }
            }
        }
    }
    None
}

/// Builds the union graph and combined mapping of one interference group.
///
/// Actor and channel names are prefixed with the application name. Shared
/// tiles concatenate the members' static-order rounds: the per-tile
/// rounds-per-iteration of the combined mapping is the gcd of the
/// members' counts, and each member's round is batched by the matching
/// factor so every actor appears exactly once per combined round (the
/// static-order encoding requires batched orders).
fn combine_group(
    members: &[(usize, &ApplicationModel, &MappedApplication)],
    arch: &Architecture,
) -> Result<(SdfGraph, Mapping, Vec<GroupMember>), MapError> {
    let name = members
        .iter()
        .map(|(_, app, _)| app.graph().name())
        .collect::<Vec<_>>()
        .join("+");
    let mut b = SdfGraphBuilder::new(name);
    let mut spans: Vec<GroupMember> = Vec::with_capacity(members.len());
    let mut tile_of = Vec::new();
    let mut processor_of = Vec::new();
    let mut wcet_of = Vec::new();
    let mut channels = Vec::new();

    let mut a0 = 0usize;
    let mut c0 = 0usize;
    for &(admitted, app, mapped) in members {
        let g = app.graph();
        let prefix = g.name();
        for (aid, actor) in g.actors() {
            b.add_actor(
                format!("{prefix}.{}", actor.name()),
                mapped.mapping.binding.wcet_of[aid.0],
            );
        }
        for (_, ch) in g.channels() {
            b.add_channel_full(
                format!("{prefix}.{}", ch.name()),
                ActorId(a0 + ch.src().0),
                ch.production_rate(),
                ActorId(a0 + ch.dst().0),
                ch.consumption_rate(),
                ch.initial_tokens(),
                ch.token_size(),
            );
        }
        tile_of.extend_from_slice(&mapped.mapping.binding.tile_of);
        processor_of.extend_from_slice(&mapped.mapping.binding.processor_of);
        wcet_of.extend_from_slice(&mapped.mapping.binding.wcet_of);
        channels.extend_from_slice(&mapped.mapping.channels);
        let q = repetition_vector(g)?;
        spans.push(GroupMember {
            admitted,
            actors: a0..a0 + g.actor_count(),
            channels: c0..c0 + g.channel_count(),
            q: q.entries().to_vec(),
        });
        a0 += g.actor_count();
        c0 += g.channel_count();
    }
    let graph = b.build()?;

    // Per-tile schedules: members' rounds in admission order, batched to
    // the gcd of their rounds-per-iteration counts (the static-order
    // constraint encoding requires each actor to appear once per round).
    let tiles = arch.tile_count();
    let mut schedules: Vec<Vec<ScheduleEntry>> = vec![Vec::new(); tiles];
    let mut rounds: Vec<u64> = vec![1; tiles];
    // Batch factor per (member, tile): how many of the member's own
    // rounds are fused into one combined round on that tile.
    let mut batch_of: Vec<Vec<u64>> = vec![vec![1; tiles]; members.len()];
    for t in 0..tiles {
        let active: Vec<usize> = members
            .iter()
            .enumerate()
            .filter(|(_, (_, _, m))| !m.mapping.schedules[t].is_empty())
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            continue;
        }
        let g = active
            .iter()
            .map(|&i| members[i].2.mapping.rounds_per_iteration[t])
            .fold(0, gcd)
            .max(1);
        rounds[t] = g;
        for &i in &active {
            let (_, _, m) = members[i];
            let batch = m.mapping.rounds_per_iteration[t] / g;
            batch_of[i][t] = batch;
            let span = &spans[i];
            for entry in &m.mapping.schedules[t] {
                schedules[t].push(match *entry {
                    ScheduleEntry::Fire { actor, reps } => ScheduleEntry::Fire {
                        actor: ActorId(span.actors.start + actor.0),
                        reps: reps * batch,
                    },
                    ScheduleEntry::Send { channel, reps } => ScheduleEntry::Send {
                        channel: ChannelId(span.channels.start + channel.0),
                        reps: reps * batch,
                    },
                    ScheduleEntry::Receive { channel, reps } => ScheduleEntry::Receive {
                        channel: ChannelId(span.channels.start + channel.0),
                        reps: reps * batch,
                    },
                });
            }
        }
    }

    // Fusing a member's rounds moves proportionally more tokens per
    // combined round, so the member's buffer slack must scale with the
    // batch factor of the channel's endpoint tiles — otherwise a batched
    // round deadlocks at the isolation-sized allocation (e.g. a q=10
    // actor alone on a tile, fused from 10 rounds into 1, suddenly needs
    // 10 tokens of downstream space at once).
    for (i, &(_, app, _)) in members.iter().enumerate() {
        let span = &spans[i];
        for (cid, ch) in app.graph().channels() {
            let src_tile = tile_of[span.actors.start + ch.src().0];
            let dst_tile = tile_of[span.actors.start + ch.dst().0];
            let factor = batch_of[i][src_tile.0].max(batch_of[i][dst_tile.0]);
            if factor > 1 {
                let c = &mut channels[span.channels.start + cid.0];
                let d0 = ch.initial_tokens();
                c.alpha_src = d0 + (c.alpha_src - d0.min(c.alpha_src)) * factor;
                c.alpha_dst *= factor;
                c.local_capacity *= factor;
            }
        }
    }

    let mapping = Mapping {
        binding: Binding {
            tile_of,
            processor_of,
            wcet_of,
        },
        schedules,
        rounds_per_iteration: rounds,
        channels,
        guaranteed_iterations: 0,
        guaranteed_cycles: 1,
    };
    Ok((graph, mapping, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::{HomogeneousModelBuilder, ThroughputConstraint};

    fn pipeline_app(
        name: &str,
        wcets: &[u64],
        constraint: Option<ThroughputConstraint>,
    ) -> ApplicationModel {
        let n = wcets.len();
        let mut b = SdfGraphBuilder::new(name);
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_actor(format!("{name}_a{i}"), 1))
            .collect();
        for i in 0..n - 1 {
            b.add_channel_full(format!("{name}_e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &w) in wcets.iter().enumerate() {
            mb.actor(format!("{name}_a{i}"), w, 4096, 512);
        }
        mb.finish(g, constraint).unwrap()
    }

    #[test]
    fn two_apps_admitted_on_shared_platform() {
        let uc = UseCase::new(vec![
            pipeline_app("alpha", &[100, 100], None),
            pipeline_app("beta", &[50, 50], None),
        ])
        .unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert!(r.fully_admitted(), "rejections: {:?}", r.rejected);
        assert_eq!(r.admitted.len(), 2);
        // Both apps span both tiles -> one interference group.
        assert_eq!(r.groups.len(), 1);
        let g = &r.groups[0];
        assert_eq!(g.members.len(), 2);
        assert!(g.analysis.as_f64() > 0.0);
        // Shared guarantee can only be at or below each isolation bound.
        for a in &r.admitted {
            assert!(a.shared_guarantee <= a.mapped.analysis.iterations_per_cycle);
            assert_eq!(a.shared_guarantee, g.analysis.iterations_per_cycle);
        }
        // Occupancy recorded both applications' memory.
        assert!(r.occupancy.tile_mem.iter().sum::<u64>() > 0);
    }

    #[test]
    fn disjoint_apps_keep_isolation_guarantee() {
        // Two single-actor apps pinned to different tiles via admission
        // order on a 2-tile platform: greedy places the first app's two
        // actors... use 1-actor apps so each fits one tile.
        let uc = UseCase::new(vec![
            pipeline_app("solo1", &[100, 100], None),
            pipeline_app("solo2", &[100, 100], None),
        ])
        .unwrap();
        let arch = Architecture::homogeneous("x", 4, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert!(r.fully_admitted(), "rejections: {:?}", r.rejected);
        if r.groups.len() == 2 {
            for a in &r.admitted {
                assert_eq!(a.shared_guarantee, a.mapped.analysis.iterations_per_cycle);
            }
        }
    }

    #[test]
    fn infeasible_constraint_rejected_with_map_reason() {
        let uc = UseCase::new(vec![
            pipeline_app("ok", &[100, 100], None),
            pipeline_app(
                "greedyapp",
                &[1000, 1000],
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 10,
                }),
            ),
        ])
        .unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert_eq!(r.admitted.len(), 1);
        assert_eq!(r.rejected.len(), 1);
        let rej = &r.rejected[0];
        assert_eq!(rej.name, "greedyapp");
        assert!(matches!(
            rej.reason,
            RejectReason::Map(MapError::ConstraintUnmet(_))
        ));
        assert!(rej.reason.to_string().contains("mapping failed"));
    }

    #[test]
    fn admission_protects_admitted_guarantees() {
        // App 1 needs exactly its isolated bound on the single tile; any
        // sharing breaks it, so app 2 must be rejected with app 1 as the
        // victim.
        let uc = UseCase::new(vec![
            pipeline_app(
                "tight",
                &[50, 50],
                Some(ThroughputConstraint {
                    iterations: 1,
                    cycles: 100,
                }),
            ),
            pipeline_app("intruder", &[10, 10], None),
        ])
        .unwrap();
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert_eq!(r.admitted.len(), 1);
        assert_eq!(r.admitted[0].name, "tight");
        assert_eq!(r.rejected.len(), 1);
        match &r.rejected[0].reason {
            RejectReason::GuaranteeViolated {
                victim, required, ..
            } => {
                assert_eq!(victim, "tight");
                assert_eq!(*required, Ratio::new(1, 100));
            }
            other => panic!("expected GuaranteeViolated, got {other:?}"),
        }
    }

    #[test]
    fn global_target_override_enforced_under_sharing() {
        // Neither app carries a model constraint; the global target is
        // exactly the first app's isolated bound on the single tile, so
        // the first is admitted and the second must be rejected because
        // sharing would push everybody below the override.
        let uc = UseCase::new(vec![
            pipeline_app("lead", &[50, 50], None),
            pipeline_app("late", &[10, 10], None),
        ])
        .unwrap();
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let opts = MapOptions {
            target: Some(Ratio::new(1, 100)),
            ..MapOptions::default()
        };
        let r = map_use_case(&uc, &arch, &opts);
        assert_eq!(r.admitted.len(), 1);
        assert_eq!(r.admitted[0].name, "lead");
        assert_eq!(r.admitted[0].constraint, Some(Ratio::new(1, 100)));
        match &r.rejected[0].reason {
            RejectReason::GuaranteeViolated { required, .. } => {
                assert_eq!(*required, Ratio::new(1, 100));
            }
            other => panic!("expected GuaranteeViolated, got {other:?}"),
        }
    }

    #[test]
    fn rejection_reasons_are_deterministic() {
        let mk = || {
            UseCase::new(vec![
                pipeline_app("a1", &[80, 80], None),
                pipeline_app(
                    "a2",
                    &[500, 500],
                    Some(ThroughputConstraint {
                        iterations: 1,
                        cycles: 5,
                    }),
                ),
            ])
            .unwrap()
        };
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let r1 = map_use_case(&mk(), &arch, &MapOptions::default());
        let r2 = map_use_case(&mk(), &arch, &MapOptions::default());
        let render = |r: &UseCaseMapping| -> Vec<String> {
            r.rejected
                .iter()
                .map(|x| format!("{}: {}", x.name, x.reason))
                .collect()
        };
        assert_eq!(render(&r1), render(&r2));
        assert!(!render(&r1).is_empty());
    }

    #[test]
    fn combined_system_matches_member_spans() {
        let uc = UseCase::new(vec![
            pipeline_app("p", &[60, 60], None),
            pipeline_app("q", &[30, 30, 30], None),
        ])
        .unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert!(r.fully_admitted());
        let g = &r.groups[0];
        assert_eq!(g.graph.actor_count(), 5);
        assert_eq!(g.members[0].actors, 0..2);
        assert_eq!(g.members[1].actors, 2..5);
        let q = g.combined_repetitions();
        assert_eq!(q, vec![1; 5]);
        // Prefixed names resolve.
        assert!(g.graph.actor_by_name("p.p_a0").is_some());
        assert!(g.graph.actor_by_name("q.q_a2").is_some());
        // Validate the combined mapping structurally: every actor fired by
        // its tile's schedule.
        for m in &g.members {
            for a in m.actors.clone() {
                let t = g.mapping.binding.tile_of[a];
                assert!(g.mapping.schedules[t.0]
                    .iter()
                    .any(|e| matches!(e, ScheduleEntry::Fire { actor, .. } if actor.0 == a)));
            }
        }
    }

    #[test]
    fn admission_fails_on_buffer_memory() {
        // Two actors sharing one tile over a fat-token channel: the actor
        // footprints fit easily (a few KiB), but the channel buffer alone
        // (≥ 1 token × 140 000 bytes) exceeds the tile's 128 KiB dmem.
        // Before buffer accounting this use-case was admitted — the
        // regression this test pins down.
        let mut b = SdfGraphBuilder::new("fat");
        let x = b.add_actor("fx", 1);
        let y = b.add_actor("fy", 1);
        b.add_channel_full("fe", x, 1, y, 1, 0, 140_000);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("fx", 50, 2048, 256).actor("fy", 50, 2048, 256);
        let fat = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();

        let uc = UseCase::new(vec![fat.clone()]).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert!(r.admitted.is_empty());
        assert_eq!(r.rejected.len(), 1);
        match &r.rejected[0].reason {
            RejectReason::Map(MapError::Infeasible(m)) => {
                assert!(m.contains("channel buffers"), "{m}");
                assert!(m.contains("data memory"), "{m}");
            }
            other => panic!("expected a buffer-memory Infeasible reason, got {other:?}"),
        }

        // The same graph with small tokens is admitted, and its buffer
        // bytes are charged against the tile.
        let mut b = SdfGraphBuilder::new("thin");
        let x = b.add_actor("tx", 1);
        let y = b.add_actor("ty", 1);
        b.add_channel_full("te", x, 1, y, 1, 0, 16);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("tx", 50, 2048, 256).actor("ty", 50, 2048, 256);
        let thin = mb.finish(g, None).unwrap();
        let uc = UseCase::new(vec![thin]).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert_eq!(r.admitted.len(), 1);
        assert!(
            r.occupancy.tile_buf.iter().sum::<u64>() > 0,
            "admitted channel buffers must be charged: {:?}",
            r.occupancy
        );
    }

    #[test]
    fn admitted_buffers_shrink_the_residual_for_later_apps() {
        // App 1's 70 000-byte buffer eats half of tile 0's dmem; app 2's actors would
        // fit by implementation footprint alone, but the combined buffer
        // bytes cannot — so charging buffers against the residual must
        // reject it on the single tile.
        let fat_app = |name: &str, token: u64| {
            let mut b = SdfGraphBuilder::new(name);
            let x = b.add_actor(format!("{name}x"), 1);
            let y = b.add_actor(format!("{name}y"), 1);
            b.add_channel_full(format!("{name}e"), x, 1, y, 1, 0, token);
            let g = b.build().unwrap();
            let mut mb = HomogeneousModelBuilder::new("microblaze");
            mb.actor(format!("{name}x"), 50, 1024, 128)
                .actor(format!("{name}y"), 50, 1024, 128);
            mb.finish(g, None).unwrap()
        };
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let uc = UseCase::new(vec![fat_app("first", 70_000), fat_app("second", 70_000)]).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert_eq!(
            r.admitted
                .iter()
                .map(|a| a.name.as_str())
                .collect::<Vec<_>>(),
            vec!["first"],
            "rejections: {:?}",
            r.rejected
        );
        assert_eq!(r.rejected.len(), 1);
        assert_eq!(r.rejected[0].name, "second");
        assert!(
            r.rejected[0].reason.to_string().contains("buffer")
                || r.rejected[0].reason.to_string().contains("infeasible"),
            "unexpected reason: {}",
            r.rejected[0].reason
        );
    }

    /// `f0 --(prod 2, cons 1)--> f1` gives q = [1, 2]; with f1 alone on
    /// its tile, that tile runs 2 rounds per iteration in isolation.
    fn multirate_app(name: &str, token: u64) -> ApplicationModel {
        let mut b = SdfGraphBuilder::new(name);
        let f0 = b.add_actor(format!("{name}0"), 1);
        let f1 = b.add_actor(format!("{name}1"), 1);
        b.add_channel_full(format!("{name}e"), f0, 2, f1, 1, 0, token);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor(format!("{name}0"), 100, 4096, 512)
            .actor(format!("{name}1"), 10, 4096, 512);
        mb.finish(g, None).unwrap()
    }

    #[test]
    fn admission_charges_grown_group_buffers() {
        // App G joins f1's tile, forcing the combined round count down to
        // gcd(2, 1) = 1: f1's two rounds are fused into one, and
        // `combine_group` batch-scales the f0→f1 buffer allocation to
        // keep the fused round live. The *grown* allocation is what the
        // simulator deploys, so admission must charge it — before this
        // check the occupancy recorded only the isolation sizing and a
        // later app could overflow the tile's data memory.
        let uc =
            UseCase::new(vec![multirate_app("f", 16), pipeline_app("g", &[60], None)]).unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert!(r.fully_admitted(), "rejections: {:?}", r.rejected);

        // The shared group must actually batch: some channel allocation
        // grew past its isolation sizing.
        let g = &r.groups[r.admitted[0].group];
        assert!(g.members.len() == 2, "apps did not share a tile: {r:?}");
        let iso = &r.admitted[0].mapped.mapping.channels;
        let span = &g.members[0].channels;
        assert!(
            (span.clone()).any(|c| {
                let grown = g.mapping.channels[c];
                let i = iso[c - span.start];
                grown.alpha_src > i.alpha_src
                    || grown.alpha_dst > i.alpha_dst
                    || grown.local_capacity > i.local_capacity
            }),
            "expected a batch-scaled channel allocation"
        );

        // Occupancy records the grown group totals, not the isolation sums.
        let tiles = arch.tile_count();
        let mut grown = vec![0u64; tiles];
        for g in &r.groups {
            for (t, b) in g
                .mapping
                .buffer_bytes_per_tile(&g.graph, tiles)
                .into_iter()
                .enumerate()
            {
                grown[t] += b;
            }
        }
        assert_eq!(r.occupancy.tile_buf, grown);
        let isolation: u64 = r
            .admitted
            .iter()
            .map(|a| {
                let app = &uc.apps()[a.index];
                a.mapped
                    .mapping
                    .buffer_bytes_per_tile(app.graph(), tiles)
                    .iter()
                    .sum::<u64>()
            })
            .sum();
        assert!(
            grown.iter().sum::<u64>() > isolation,
            "grown {grown:?} should exceed isolation total {isolation}"
        );
    }

    #[test]
    fn admission_rejects_when_grown_buffers_overflow_dmem() {
        // With fat tokens the isolation sizing fits the 128 KiB dmem but
        // the batch-scaled shared allocation does not: the candidate that
        // triggers the growth must be rejected, not silently admitted
        // with an over-committed tile.
        let uc = UseCase::new(vec![
            multirate_app("f", 30_000),
            pipeline_app("g", &[60], None),
        ])
        .unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert_eq!(r.admitted.len(), 1, "rejections: {:?}", r.rejected);
        assert_eq!(r.admitted[0].name, "f");
        assert_eq!(r.rejected.len(), 1);
        let reason = r.rejected[0].reason.to_string();
        assert!(
            reason.contains("grow") && reason.contains("data memory"),
            "unexpected reason: {reason}"
        );
    }

    #[test]
    fn use_case_rejects_duplicate_names() {
        let a = pipeline_app("same", &[10, 10], None);
        let b = pipeline_app("same", &[20, 20], None);
        assert!(matches!(
            UseCase::new(vec![a, b]),
            Err(MapError::Infeasible(_))
        ));
        assert!(matches!(
            UseCase::new(Vec::new()),
            Err(MapError::Infeasible(_))
        ));
    }
}
