//! # mamps-bench — the benchmark harness regenerating the paper's tables
//! and figures
//!
//! Each bench target regenerates one evaluation artefact (printed to
//! stdout before the timing runs) and times the computational kernel
//! behind it with Criterion:
//!
//! | target | artefact |
//! |---|---|
//! | `fig6_fsl` | Fig. 6(a): worst-case vs expected vs measured, FSL |
//! | `fig6_noc` | Fig. 6(b): the same over the SDM NoC |
//! | `table1_effort` | Table 1: automated design steps, timed live |
//! | `overhead_ca` | §6.3: CA what-if speedup + communication breakdown |
//! | `noc_area` | §5.3.1: NoC flow-control slice overhead (~12 %) |
//! | `analysis_ablation` | state-space vs HSDF+MCR throughput analysis |
//! | `buffer_sweep` | guaranteed throughput vs buffer capacity |
//! | `mesh_scaling` | event vs lockstep simulator kernel on token-ring meshes |
//! | `state_space` | throughput-kernel fast path vs retained naive reference |
//! | `binders` | binding strategies: greedy vs spiral vs genetic on MJPEG |
//! | `use_cases` | multi-application admission: MJPEG + constrained pipeline |
//! | `dse_cache` | analysis cache: cold vs warm DSE sweep |
//! | `incremental` | pass cache: cold vs one-WCET-edit incremental re-map |
//!
//! Run all with `cargo bench`, or a single artefact with e.g.
//! `cargo bench -p mamps-bench --bench fig6_fsl`.
//!
//! Setting `MAMPS_BENCH_QUICK=1` shrinks warm-up and measurement times to
//! CI-smoke scale, and `MAMPS_BENCH_JSON=<file>` makes the harness append
//! one JSON line per measured benchmark (see `scripts/bench_json.sh`).
//!
//! ## Example
//!
//! The shared workload helpers are plain functions, usable outside the
//! Criterion harness too:
//!
//! ```
//! use mamps_bench::{bench_stream_config, mjpeg_expanded_graph};
//!
//! let cfg = bench_stream_config();
//! assert_eq!(cfg.frames, 1);
//! let (graph, opts) = mjpeg_expanded_graph(2);
//! assert!(graph.actor_count() > 5); // decoder actors + Fig. 4 helpers
//! assert!(opts.auto_concurrency);
//! ```

use criterion::Criterion;

/// A Criterion configuration short enough for the full suite to run in a
/// few minutes while still averaging over several samples. With
/// `MAMPS_BENCH_QUICK=1` in the environment the times shrink further, for
/// the CI smoke job's perf-trajectory snapshot.
pub fn short_criterion() -> Criterion {
    let quick = quick_mode();
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(if quick {
            200
        } else {
            2000
        }))
        .warm_up_time(std::time::Duration::from_millis(if quick {
            50
        } else {
            300
        }))
}

/// True when `MAMPS_BENCH_QUICK` requests the shortened CI configuration.
pub fn quick_mode() -> bool {
    std::env::var("MAMPS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The WCET-annotated, Fig. 4-expanded, statically-ordered analysis graph
/// of the MJPEG decoder mapped on `tiles` FSL tiles, plus the analysis
/// options the mapping flow uses on it. This is the realistic workload of
/// the throughput kernel: every candidate probed by the mapping step's
/// buffer growth re-analyses a graph of this shape.
pub fn mjpeg_expanded_graph(
    tiles: usize,
) -> (
    mamps_sdf::graph::SdfGraph,
    mamps_sdf::state_space::AnalysisOptions,
) {
    let cfg = bench_stream_config();
    let app = mamps_mjpeg::app_model::mjpeg_application(&cfg, None).unwrap();
    let arch = mamps_platform::arch::Architecture::homogeneous(
        "bench",
        tiles,
        mamps_platform::interconnect::Interconnect::fsl(),
    )
    .unwrap();
    let mapped = mamps_mapping::flow::map_application(
        &app,
        &arch,
        &mamps_mapping::flow::MapOptions::default(),
    )
    .unwrap();
    let opts = mamps_sdf::state_space::AnalysisOptions {
        auto_concurrency: true,
        max_states: 2_000_000,
        ..mamps_sdf::state_space::AnalysisOptions::default()
    };
    (mapped.expanded.graph, opts)
}

/// The stream geometry used by all benches: one frame of the small
/// configuration (12 MCUs), enough for stable steady-state measurement
/// with cycled traces.
pub fn bench_stream_config() -> mamps_mjpeg::encoder::StreamConfig {
    mamps_mjpeg::encoder::StreamConfig {
        frames: 1,
        ..mamps_mjpeg::encoder::StreamConfig::small()
    }
}

/// Simulated MCUs per measured point in the Fig. 6 benches.
pub const SIM_ITERATIONS: u64 = 150;

/// A token-ring workload on a `tiles`-tile NoC mesh for the `mesh_scaling`
/// bench: one actor per tile, unit rates, a single initial token
/// circulating the ring. At any instant almost every tile is idle waiting
/// for the token, which is exactly the shape where the discrete-event
/// kernel's sleeping components beat the lockstep engine's full scan.
///
/// The mapping is built by hand (the flow would never bind one actor per
/// tile on thousands of tiles): the ring-closing tile schedules its
/// `Send` first so the initial token — parked in that channel's
/// source-side buffer — enters the network before the tile blocks on its
/// own receive.
pub fn token_ring_system(
    tiles: usize,
) -> (
    mamps_sdf::graph::SdfGraph,
    mamps_mapping::mapping::Mapping,
    mamps_platform::arch::Architecture,
) {
    use mamps_mapping::mapping::{Binding, ChannelAlloc, Mapping, ScheduleEntry};
    use mamps_platform::types::{ProcessorType, TileId};
    use mamps_sdf::graph::{ChannelId, SdfGraphBuilder};

    assert!(tiles >= 2, "a ring needs at least two tiles");
    let wcet = 100u64;
    let mut b = SdfGraphBuilder::new("ring");
    let actors: Vec<_> = (0..tiles)
        .map(|i| b.add_actor(format!("a{i}"), 1))
        .collect();
    for i in 0..tiles {
        let next = (i + 1) % tiles;
        // One word per token; the ring-closing channel carries the single
        // initial token that keeps the ring live.
        let initial = u64::from(i == tiles - 1);
        b.add_channel_full(format!("c{i}"), actors[i], 1, actors[next], 1, initial, 4);
    }
    let graph = b.build().unwrap();

    let schedules = (0..tiles)
        .map(|i| {
            let inbound = ChannelId(if i == 0 { tiles - 1 } else { i - 1 });
            let outbound = ChannelId(i);
            if i == tiles - 1 {
                vec![
                    ScheduleEntry::Send {
                        channel: outbound,
                        reps: 1,
                    },
                    ScheduleEntry::Receive {
                        channel: inbound,
                        reps: 1,
                    },
                    ScheduleEntry::Fire {
                        actor: actors[i],
                        reps: 1,
                    },
                ]
            } else {
                vec![
                    ScheduleEntry::Receive {
                        channel: inbound,
                        reps: 1,
                    },
                    ScheduleEntry::Fire {
                        actor: actors[i],
                        reps: 1,
                    },
                    ScheduleEntry::Send {
                        channel: outbound,
                        reps: 1,
                    },
                ]
            }
        })
        .collect();

    let mapping = Mapping {
        binding: Binding {
            tile_of: (0..tiles).map(TileId).collect(),
            processor_of: vec![ProcessorType::microblaze(); tiles],
            wcet_of: vec![wcet; tiles],
        },
        schedules,
        rounds_per_iteration: vec![1; tiles],
        channels: vec![
            ChannelAlloc {
                wires: 1,
                alpha_src: 2,
                alpha_dst: 2,
                local_capacity: 2
            };
            tiles
        ],
        guaranteed_iterations: 1,
        guaranteed_cycles: (tiles as u64) * (wcet + 4),
    };

    let arch = mamps_platform::arch::Architecture::homogeneous(
        "mesh",
        tiles,
        mamps_platform::interconnect::Interconnect::noc_for_tiles(tiles),
    )
    .unwrap();
    (graph, mapping, arch)
}
