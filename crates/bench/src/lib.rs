//! # mamps-bench — the benchmark harness regenerating the paper's tables
//! and figures
//!
//! Each bench target regenerates one evaluation artefact (printed to
//! stdout before the timing runs) and times the computational kernel
//! behind it with Criterion:
//!
//! | target | artefact |
//! |---|---|
//! | `fig6_fsl` | Fig. 6(a): worst-case vs expected vs measured, FSL |
//! | `fig6_noc` | Fig. 6(b): the same over the SDM NoC |
//! | `table1_effort` | Table 1: automated design steps, timed live |
//! | `overhead_ca` | §6.3: CA what-if speedup + communication breakdown |
//! | `noc_area` | §5.3.1: NoC flow-control slice overhead (~12 %) |
//! | `analysis_ablation` | state-space vs HSDF+MCR throughput analysis |
//! | `buffer_sweep` | guaranteed throughput vs buffer capacity |
//! | `mesh_scaling` | MJPEG bound vs platform size, FSL and NoC |
//!
//! Run all with `cargo bench`, or a single artefact with e.g.
//! `cargo bench -p mamps-bench --bench fig6_fsl`.

use criterion::Criterion;

/// A Criterion configuration short enough for the full suite to run in a
/// few minutes while still averaging over several samples.
pub fn short_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

/// The stream geometry used by all benches: one frame of the small
/// configuration (12 MCUs), enough for stable steady-state measurement
/// with cycled traces.
pub fn bench_stream_config() -> mamps_mjpeg::encoder::StreamConfig {
    mamps_mjpeg::encoder::StreamConfig {
        frames: 1,
        ..mamps_mjpeg::encoder::StreamConfig::small()
    }
}

/// Simulated MCUs per measured point in the Fig. 6 benches.
pub const SIM_ITERATIONS: u64 = 150;
