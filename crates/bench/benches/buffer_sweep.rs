//! Ablation: guaranteed throughput as a function of buffer capacity.
//!
//! SDF3's buffer distributions trade memory for throughput (paper §5.1).
//! This bench sweeps the capacity of a producer-consumer channel, printing
//! the throughput staircase, and times the demand-driven buffer-sizing
//! search on a multirate graph.

use criterion::{criterion_group, criterion_main, Criterion};

use mamps_bench::short_criterion;
use mamps_sdf::buffer::{analyse, minimal_live_capacities, size_for_throughput};
use mamps_sdf::graph::{SdfGraph, SdfGraphBuilder};
use mamps_sdf::ratio::Ratio;
use mamps_sdf::state_space::AnalysisOptions;

fn producer_consumer() -> SdfGraph {
    let mut b = SdfGraphBuilder::new("pc");
    let p = b.add_actor("producer", 7);
    let c = b.add_actor("consumer", 5);
    b.add_channel("data", p, 2, c, 3);
    b.build().unwrap()
}

fn bench(c: &mut Criterion) {
    let g = producer_consumer();
    let opts = AnalysisOptions::default();

    println!("\nbuffer capacity vs guaranteed throughput (2->3 rates):");
    println!("{:<10} {:>16} {:>16}", "capacity", "it/cycle", "cycles/it");
    let min_caps = minimal_live_capacities(&g).unwrap();
    for extra in 0..6u64 {
        let caps = vec![min_caps[0] + extra];
        let t = analyse(&g, &caps, &opts).unwrap();
        println!(
            "{:<10} {:>16} {:>16.1}",
            caps[0],
            format!("{}", t.iterations_per_cycle),
            t.cycles_per_iteration()
        );
    }
    // Saturation: large buffers hit the producer bound — q = (3, 2), so
    // one iteration needs 3 producer firings of 7 cycles = 21 cycles.
    let saturated = analyse(&g, &[min_caps[0] + 32], &opts).unwrap();
    assert_eq!(saturated.iterations_per_cycle, Ratio::new(1, 21));

    c.bench_function("buffer/minimal_live_capacities", |b| {
        b.iter(|| std::hint::black_box(minimal_live_capacities(&g).unwrap()))
    });
    c.bench_function("buffer/size_for_target", |b| {
        b.iter(|| {
            std::hint::black_box(size_for_throughput(&g, Ratio::new(1, 21), &opts).unwrap().0)
        })
    });
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
