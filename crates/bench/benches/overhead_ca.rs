//! §6.3: overhead studies.
//!
//! * The communication-assist what-if: replacing PE-side (de-)serialization
//!   with a CA (same actor binding) raises the predicted throughput — the
//!   paper reports up to 300 %.
//! * The modelling-overhead breakdown: the fixed VLD output rate (padding)
//!   and the per-MCU subHeader tokens as fractions of the communication.

use criterion::{criterion_group, criterion_main, Criterion};

use mamps_bench::{bench_stream_config, short_criterion};
use mamps_core::experiments::{ca_overhead_experiment, ca_overhead_vs_serialization_cost};
use mamps_mjpeg::app_model::fig5_graph;
use mamps_mjpeg::cost;
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::repetition::repetition_vector;

fn communication_breakdown() {
    let cfg = bench_stream_config();
    let g = fig5_graph(&cfg);
    let q = repetition_vector(&g).unwrap();
    let mut total = 0u64;
    let mut sub = 0u64;
    let mut padding = 0u64;
    for (_, ch) in g.channels() {
        if ch.is_self_edge() {
            continue;
        }
        let words = q.of(ch.src()) * ch.production_rate() * ch.token_size().div_ceil(4);
        total += words;
        if ch.name().starts_with("subHeader") {
            sub += words;
        }
        if ch.name() == "vld2iqzz" {
            let pad_tokens = cost::MAX_BLOCKS_PER_MCU - cfg.blocks_per_mcu() as u64;
            padding += pad_tokens * ch.token_size().div_ceil(4);
        }
    }
    println!("communication breakdown (words per MCU):");
    println!("  total:            {total}");
    println!(
        "  subHeader init:   {sub} ({:.1} %)  [paper: ~1 %]",
        100.0 * sub as f64 / total as f64
    );
    println!(
        "  VLD rate padding: {padding} ({:.1} %)",
        100.0 * padding as f64 / total as f64
    );
}

fn bench(c: &mut Criterion) {
    let cfg = bench_stream_config();
    let r = ca_overhead_experiment(&cfg, 3, Interconnect::fsl()).expect("experiment runs");
    println!("\nSection 6.3 - communication assist what-if (same binding):");
    println!("  PE serialization bound: {:.4e} it/cycle", r.plain_bound);
    println!("  CA offload bound:       {:.4e} it/cycle", r.ca_bound);
    println!(
        "  predicted improvement:  {:.0} % (paper: up to 300 %)",
        (r.speedup() - 1.0) * 100.0
    );
    assert!(r.speedup() > 1.0);

    // Sensitivity: the speedup depends on the serialization/computation
    // ratio; sweeping the per-word software cost shows the crossover into
    // the paper's "up to 300 %" regime.
    println!("\n  speedup vs software serialization cost (5 tiles):");
    let sweep = ca_overhead_vs_serialization_cost(&cfg, 5, &[4, 16, 48, 96]).expect("sweep runs");
    for (cpw, s) in &sweep {
        println!("    {cpw:>3} cycles/word: +{:.0} %", (s - 1.0) * 100.0);
    }
    assert!(
        sweep.last().unwrap().1 > 3.0,
        "the sweep should reach the paper's regime"
    );
    communication_breakdown();

    c.bench_function("overhead_ca/what_if_analysis", |b| {
        b.iter(|| {
            std::hint::black_box(
                ca_overhead_experiment(&cfg, 3, Interconnect::fsl())
                    .unwrap()
                    .speedup(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
