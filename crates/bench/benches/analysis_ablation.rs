//! Ablation: the two throughput analyses.
//!
//! DESIGN.md commits to two independent analyses — self-timed state-space
//! exploration (primary, used in the flow) and HSDF conversion followed by
//! exact max-cycle-ratio (cross-check). This bench verifies they agree on
//! multirate rings of growing size and compares their runtimes, showing why
//! the state-space algorithm is the right default for the expanded graphs
//! (the HSDF expansion multiplies actor counts by the repetition vector).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mamps_bench::short_criterion;
use mamps_sdf::graph::{SdfGraph, SdfGraphBuilder};
use mamps_sdf::mcr::mcr_throughput;
use mamps_sdf::ratio::gcd;
use mamps_sdf::state_space::{throughput, AnalysisOptions};

/// A consistent multirate ring with `n` actors and a deterministic rate
/// pattern.
fn ring(n: usize) -> SdfGraph {
    let q: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % 3)).collect();
    let mut b = SdfGraphBuilder::new(format!("ring{n}"));
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_actor(format!("a{i}"), 3 + (i as u64 * 7) % 20))
        .collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let g = gcd(q[i], q[j]);
        // Enough initial tokens on every edge to keep the ring live.
        b.add_channel_with_tokens(
            format!("e{i}"),
            ids[i],
            q[j] / g,
            ids[j],
            q[i] / g,
            2 * (q[i] / g) * (q[j] / g) + 2,
        );
    }
    b.build().unwrap()
}

fn bench(c: &mut Criterion) {
    println!("\nablation: state-space vs HSDF+MCR throughput analysis");
    println!("{:<8} {:>18} {:>18}", "actors", "state-space", "hsdf+mcr");
    for n in [3usize, 6, 9, 12] {
        let g = ring(n);
        let ss = throughput(&g, &AnalysisOptions::default()).unwrap();
        let mc = mcr_throughput(&g).unwrap();
        assert_eq!(ss.iterations_per_cycle, mc, "analyses disagree at n={n}");
        println!(
            "{:<8} {:>18} {:>18}",
            n,
            format!("{}", ss.iterations_per_cycle),
            format!("{mc}")
        );
    }

    let mut group = c.benchmark_group("analysis");
    for n in [4usize, 8, 12] {
        let g = ring(n);
        group.bench_with_input(BenchmarkId::new("state_space", n), &g, |b, g| {
            b.iter(|| std::hint::black_box(throughput(g, &AnalysisOptions::default()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("hsdf_mcr", n), &g, |b, g| {
            b.iter(|| std::hint::black_box(mcr_throughput(g).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
