//! Binding-strategy comparison on the MJPEG decoder (4-tile mesh NoC):
//! wall-time of the full mapping step per binder, next to the guaranteed
//! throughput and NoC wire-links each one achieves.
//!
//! The artefact table is printed before the timing runs; the timed
//! benchmarks (`binders/greedy`, `binders/spiral`, `binders/genetic`)
//! measure `map_application` end-to-end with the respective strategy, so
//! the cost of the GA's analysis-in-the-loop fitness shows up honestly.
//!
//! `scripts/bench_json.sh binders` runs this target with
//! `MAMPS_BENCH_JSON` set and assembles `BENCH_binders.json`, the same
//! perf-trajectory path the state-space kernel bench uses.

use criterion::{criterion_group, criterion_main, Criterion};

use mamps_bench::{bench_stream_config, short_criterion};
use mamps_mapping::flow::{map_application, MapOptions};
use mamps_mapping::strategy;
use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;

fn arch() -> Architecture {
    Architecture::homogeneous("bench", 4, Interconnect::noc_for_tiles(4)).unwrap()
}

fn bench(c: &mut Criterion) {
    let cfg = bench_stream_config();
    let app = mamps_mjpeg::app_model::mjpeg_application(&cfg, None).unwrap();

    // Artefact: achieved guaranteed throughput and allocated wire-links
    // per strategy. Every strategy must produce a verified mapping.
    println!("\nbinding strategies on the MJPEG decoder, 4-tile NoC");
    println!("{:<10} {:>16} {:>7}", "binder", "it/cycle", "wires");
    for (name, make) in strategy::registry() {
        let a = arch();
        let opts = MapOptions::with_strategy(make());
        let mapped = map_application(&app, &a, &opts).unwrap();
        assert!(
            mapped.analysis.as_f64() > 0.0,
            "{name} produced a zero-throughput mapping"
        );
        println!(
            "{:<10} {:>16.3e} {:>7}",
            name,
            mapped.analysis.as_f64(),
            mapped.mapping.noc_wire_units(app.graph(), &a)
        );
    }

    for (name, make) in strategy::registry() {
        let a = arch();
        let opts = MapOptions::with_strategy(make());
        c.bench_function(&format!("binders/{name}"), |b| {
            b.iter(|| std::hint::black_box(map_application(&app, &a, &opts).unwrap()))
        });
    }
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
