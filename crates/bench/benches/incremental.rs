//! Pass-cache effectiveness: cold vs incremental use-case re-mapping
//! after a one-WCET edit.
//!
//! Maps the checked-in example use-case (the MJPEG decoder plus the small
//! pipeline, the corpus `scripts/incremental_equiv.sh` exercises) twice on
//! the 3-tile FSL platform: **cold** with fresh caches on the edited
//! inputs (what a from-scratch `mamps map-multi` pays), and
//! **incremental** with pass and analysis caches warmed by a prior run of
//! the *original* inputs, after editing one WCET of the pipeline
//! application (what `--cache-dir` delivers to a delta re-map). The edit
//! invalidates only the edited application's bind and buffer-size passes
//! and the combined verify-shared pass; the WCET-free wire-alloc and
//! schedule passes and everything about the untouched MJPEG
//! application — including its dominant buffer-size search — replay from
//! the cache.
//!
//! Before timing, cold and incremental outcomes are asserted byte-equal
//! to a plain-flow reference on the edited inputs — a speedup that
//! changed results would be meaningless — and the incremental run must
//! come out at least 5x faster (best of three wall-clock runs, each from
//! a fresh copy of the warmed caches); CI's quick snapshot enforces the
//! trajectory on every push.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mamps_bench::short_criterion;
use mamps_mapping::flow::MapOptions;
use mamps_mapping::multi::{map_use_case, UseCase, UseCaseMapping};
use mamps_platform::arch::Architecture;
use mamps_platform::xml::architecture_from_xml;
use mamps_sdf::cache::GlobalAnalysisCache;
use mamps_sdf::passes::{PassCache, PassRunner};
use mamps_sdf::xml::application_from_xml;
use serde::Serialize as _;

/// The warmed caches of one prior run, snapshot so every timed
/// incremental run starts from exactly the post-original-run state
/// (instead of accumulating the edited inputs' entries across runs).
struct WarmState {
    passes: Vec<mamps_sdf::passes::PassEntry>,
    analyses: Vec<mamps_sdf::cache::CacheEntry>,
}

impl WarmState {
    fn thaw(&self) -> (MapOptions, Arc<PassCache>) {
        let pass_cache = Arc::new(PassCache::new());
        pass_cache.import(self.passes.iter().cloned());
        let analysis_cache = Arc::new(GlobalAnalysisCache::new());
        analysis_cache.import(self.analyses.iter().cloned());
        let opts = MapOptions {
            cache: Some(analysis_cache),
            passes: Some(Arc::new(PassRunner::with_cache(Arc::clone(&pass_cache)))),
            ..MapOptions::default()
        };
        (opts, pass_cache)
    }
}

fn use_case(pipeline_xml: &str) -> UseCase {
    let mjpeg = application_from_xml(include_str!("../../../examples/data/mjpeg_small_app.xml"))
        .expect("checked-in example application parses");
    let pipeline = application_from_xml(pipeline_xml).expect("edited pipeline parses");
    UseCase::new(vec![mjpeg, pipeline]).expect("use-case is well-formed")
}

/// Canonical bytes of a use-case outcome — equality down to serialization.
fn outcome_bytes(o: &UseCaseMapping) -> String {
    let mut out = String::new();
    for a in &o.admitted {
        out.push_str(&format!(
            "admitted {} group {} shared {}\n",
            a.name, a.group, a.shared_guarantee
        ));
        serde::json::emit(&a.mapped.mapping.to_value(), &mut out);
        out.push('\n');
    }
    for r in &o.rejected {
        out.push_str(&format!("rejected {}: {}\n", r.name, r.reason));
    }
    for g in &o.groups {
        serde::json::emit(&g.mapping.to_value(), &mut out);
        out.push('\n');
    }
    out
}

fn bench(c: &mut Criterion) {
    let original_xml = include_str!("../../../examples/data/pipeline_small_app.xml");
    // The one-WCET edit: the work actor's 700-cycle execution time becomes
    // 707 (the string "700" appears exactly once, and the edit keeps the
    // decreasing-work placement order of the greedy binder stable, so the
    // WCET-free wire-alloc and schedule fingerprints survive).
    let edited_xml = original_xml.replace("\"700\"", "\"707\"");
    assert_ne!(
        original_xml, edited_xml,
        "the WCET edit must change the input"
    );
    let arch: Architecture =
        architecture_from_xml(include_str!("../../../examples/data/fsl_3tile_arch.xml"))
            .expect("checked-in example architecture parses");

    let original = use_case(original_xml);
    let edited = use_case(&edited_xml);

    // Plain-flow reference on the edited inputs.
    let reference = outcome_bytes(&map_use_case(&edited, &arch, &MapOptions::default()));

    // Warm the caches with one run of the original inputs, then snapshot.
    let warm = {
        let pass_cache = Arc::new(PassCache::new());
        let analysis_cache = Arc::new(GlobalAnalysisCache::new());
        let opts = MapOptions {
            cache: Some(Arc::clone(&analysis_cache)),
            passes: Some(Arc::new(PassRunner::with_cache(Arc::clone(&pass_cache)))),
            ..MapOptions::default()
        };
        map_use_case(&original, &arch, &opts);
        WarmState {
            passes: pass_cache.export(),
            analyses: analysis_cache.export(),
        }
    };

    // Equivalence first, then best-of-three wall clock per variant.
    let mut elapsed = [f64::INFINITY; 2]; // [cold, incremental]
    let mut last_stats = None;
    for _ in 0..3 {
        let fresh = MapOptions {
            cache: Some(Arc::new(GlobalAnalysisCache::new())),
            passes: Some(Arc::new(PassRunner::with_cache(Arc::new(PassCache::new())))),
            ..MapOptions::default()
        };
        let t0 = Instant::now();
        let cold = map_use_case(&edited, &arch, &fresh);
        elapsed[0] = elapsed[0].min(t0.elapsed().as_secs_f64());
        assert_eq!(outcome_bytes(&cold), reference, "cold run diverges");

        let (opts, pass_cache) = warm.thaw();
        let t0 = Instant::now();
        let incremental = map_use_case(&edited, &arch, &opts);
        elapsed[1] = elapsed[1].min(t0.elapsed().as_secs_f64());
        assert_eq!(
            outcome_bytes(&incremental),
            reference,
            "incremental run diverges"
        );
        last_stats = Some(pass_cache.stats());
    }
    println!(
        "\nuse-case re-map after one-WCET edit: cold {:.2}ms, incremental {:.2}ms ({:.1}x); pass cache {}",
        elapsed[0] * 1e3,
        elapsed[1] * 1e3,
        elapsed[0] / elapsed[1],
        last_stats.unwrap(),
    );
    assert!(
        elapsed[0] >= 5.0 * elapsed[1],
        "incremental re-map must be at least 5x faster than cold: cold {:.2}ms vs incremental {:.2}ms",
        elapsed[0] * 1e3,
        elapsed[1] * 1e3
    );

    let mut group = c.benchmark_group("incremental");
    group.bench_with_input(BenchmarkId::new("remap", "cold"), &(), |b, ()| {
        b.iter(|| {
            let fresh = MapOptions {
                cache: Some(Arc::new(GlobalAnalysisCache::new())),
                passes: Some(Arc::new(PassRunner::with_cache(Arc::new(PassCache::new())))),
                ..MapOptions::default()
            };
            std::hint::black_box(map_use_case(&edited, &arch, &fresh))
        })
    });
    group.bench_with_input(BenchmarkId::new("remap", "incremental"), &(), |b, ()| {
        b.iter(|| {
            let (opts, _) = warm.thaw();
            std::hint::black_box(map_use_case(&edited, &arch, &opts))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
