//! Multi-application admission on a shared platform: the MJPEG decoder
//! plus a synthetic constrained filter pipeline, admitted one at a time
//! onto a 4-tile platform (FSL and NoC variants).
//!
//! The artefact table printed before the timing runs shows what each
//! configuration admits and with what shared guarantee; the timed
//! benchmarks (`use_cases/fsl`, `use_cases/noc`) measure the full
//! admission loop — residual-resource binding, combined static-order
//! expansion, and the shared state-space verification — which is the
//! kernel behind both `mamps map-multi` and `mamps dse --apps`.
//!
//! `scripts/bench_json.sh use_cases` assembles `BENCH_use_cases.json`,
//! the same perf-trajectory path the other bench targets use.

use criterion::{criterion_group, criterion_main, Criterion};

use mamps_bench::{bench_stream_config, short_criterion};
use mamps_mapping::flow::MapOptions;
use mamps_mapping::multi::{map_use_case, UseCase};
use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::graph::SdfGraphBuilder;
use mamps_sdf::model::{ApplicationModel, HomogeneousModelBuilder, ThroughputConstraint};

/// The synthetic second application: a three-stage filter pipeline with a
/// modest throughput constraint, sized to co-exist with the decoder.
fn sidecar_app() -> ApplicationModel {
    let mut b = SdfGraphBuilder::new("sidecar");
    let prep = b.add_actor("prep", 1);
    let work = b.add_actor("work", 1);
    let emit = b.add_actor("emit", 1);
    b.add_channel_full("p2w", prep, 1, work, 1, 0, 16);
    b.add_channel_full("w2e", work, 1, emit, 1, 0, 16);
    let g = b.build().unwrap();
    let mut mb = HomogeneousModelBuilder::new("microblaze");
    mb.actor("prep", 300, 2048, 512)
        .actor("work", 700, 4096, 1024)
        .actor("emit", 300, 2048, 512);
    mb.finish(
        g,
        Some(ThroughputConstraint {
            iterations: 1,
            cycles: 200_000,
        }),
    )
    .unwrap()
}

fn use_case() -> UseCase {
    let cfg = bench_stream_config();
    let mjpeg = mamps_mjpeg::app_model::mjpeg_application(&cfg, None).unwrap();
    UseCase::new(vec![mjpeg, sidecar_app()]).unwrap()
}

fn bench(c: &mut Criterion) {
    let uc = use_case();
    let variants: [(&str, Interconnect); 2] = [
        ("fsl", Interconnect::fsl()),
        ("noc", Interconnect::noc_for_tiles(4)),
    ];

    // Artefact: admissions and shared guarantees per interconnect. Both
    // applications must be admitted with their guarantees intact.
    println!("\nmulti-application admission: MJPEG + constrained pipeline, 4 tiles");
    println!(
        "{:<6} {:>9} {:>18} {:>18}",
        "ic", "admitted", "mjpeg it/cycle", "sidecar it/cycle"
    );
    for (name, ic) in variants {
        let arch = Architecture::homogeneous("bench", 4, ic).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert!(
            r.fully_admitted(),
            "{name}: rejections: {:?}",
            r.rejected
                .iter()
                .map(|x| x.reason.to_string())
                .collect::<Vec<_>>()
        );
        let bound = |app: &str| {
            r.admitted
                .iter()
                .find(|a| a.name == app)
                .map(|a| a.shared_guarantee.to_f64())
                .unwrap_or(0.0)
        };
        println!(
            "{:<6} {:>9} {:>18.3e} {:>18.3e}",
            name,
            format!("{}/{}", r.admitted.len(), uc.len()),
            bound("mjpeg"),
            bound("sidecar")
        );
    }

    for (name, ic) in variants {
        let arch = Architecture::homogeneous("bench", 4, ic).unwrap();
        c.bench_function(&format!("use_cases/{name}"), |b| {
            b.iter(|| std::hint::black_box(map_use_case(&uc, &arch, &MapOptions::default())))
        });
    }
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
