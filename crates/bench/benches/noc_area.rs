//! §5.3.1: the area cost of integrating the SDM NoC into MAMPS.
//!
//! Adding credit-based flow control to the NoC router costs approximately
//! 12 % more slices; the NoC interconnect as a whole is larger than FSL
//! links ("more flexibility at the cost of a larger implementation").

use criterion::{criterion_group, criterion_main, Criterion};

use mamps_bench::short_criterion;
use mamps_core::experiments::noc_flow_control_overhead;
use mamps_platform::arch::Architecture;
use mamps_platform::area::{noc_router_base, noc_router_with_flow_control, platform_area};
use mamps_platform::interconnect::Interconnect;

fn bench(c: &mut Criterion) {
    println!("\nSection 5.3.1 - NoC flow-control area overhead:");
    println!("wires  base_slices  +flow_control  overhead");
    for wires in [1u32, 2, 4, 8] {
        let base = noc_router_base(wires).slices;
        let fc = noc_router_with_flow_control(wires).slices;
        println!(
            "{wires:<6} {base:<12} {fc:<14} {:.1} %  [paper: ~12 %]",
            noc_flow_control_overhead(wires) * 100.0
        );
    }

    println!("\ninterconnect area comparison (4 tiles, 3 links):");
    let fsl = Architecture::homogeneous("f", 4, Interconnect::fsl()).unwrap();
    let noc = Architecture::homogeneous("n", 4, Interconnect::noc_for_tiles(4)).unwrap();
    let a_fsl = platform_area(&fsl, 3);
    let a_noc = platform_area(&noc, 3);
    println!(
        "  FSL: {} slices interconnect, {} total",
        a_fsl.interconnect.slices, a_fsl.total.slices
    );
    println!(
        "  NoC: {} slices interconnect, {} total",
        a_noc.interconnect.slices, a_noc.total.slices
    );
    assert!(a_noc.interconnect.slices > a_fsl.interconnect.slices);

    c.bench_function("noc_area/platform_area_model", |b| {
        b.iter(|| std::hint::black_box(platform_area(&noc, 3)))
    });
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
