//! Simulator-kernel scaling: discrete-event vs lockstep on large meshes.
//!
//! Runs the token-ring workload ([`mamps_bench::token_ring_system`]) on
//! NoC meshes from 8×8 up to 64×64 tiles under both engines. The ring
//! keeps all but a handful of components idle at any instant, so the
//! lockstep engine's per-event full scan grows linearly with the mesh
//! while the event kernel only touches woken components.
//!
//! Before timing, both engines run once per mesh and their
//! [`Measurement`]s are asserted equal — the perf comparison is only
//! meaningful if the kernels agree bit for bit. On the largest mesh the
//! event kernel must come out strictly faster (best of three wall-clock
//! runs); CI's quick snapshot enforces that trajectory on every push.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mamps_bench::{quick_mode, short_criterion, token_ring_system};
use mamps_sim::{Engine, Measurement, System, WcetTimes};

const ITERATIONS: u64 = 4;
const MAX_CYCLES: u64 = u64::MAX / 4;

fn run_once(
    graph: &mamps_sdf::graph::SdfGraph,
    mapping: &mamps_mapping::mapping::Mapping,
    arch: &mamps_platform::arch::Architecture,
    engine: Engine,
) -> Measurement {
    let times = WcetTimes::new(mapping.binding.wcet_of.clone());
    System::new(graph, mapping, arch, &times)
        .unwrap()
        .with_engine(engine)
        .run(ITERATIONS, MAX_CYCLES)
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let meshes: &[usize] = if quick_mode() {
        &[64, 256]
    } else {
        &[256, 1024, 4096]
    };
    let largest = *meshes.last().unwrap();

    println!("\ntoken ring, {ITERATIONS} iterations per run:");
    println!(
        "{:<7} {:>12} {:>14} {:>14} {:>8}",
        "tiles", "cycles", "event", "lockstep", "speedup"
    );
    for &tiles in meshes {
        let (graph, mapping, arch) = token_ring_system(tiles);
        // Equivalence first: a speedup over a kernel that disagrees would
        // be meaningless. Best-of-three wall clock per engine.
        let mut elapsed = [f64::INFINITY; 2];
        let mut measured = Vec::new();
        for (slot, engine) in [Engine::Event, Engine::Lockstep].into_iter().enumerate() {
            for _ in 0..3 {
                let t0 = Instant::now();
                let m = run_once(&graph, &mapping, &arch, engine);
                elapsed[slot] = elapsed[slot].min(t0.elapsed().as_secs_f64());
                measured.push(m);
            }
        }
        assert!(
            measured.windows(2).all(|w| w[0] == w[1]),
            "engines diverge on the {tiles}-tile ring"
        );
        println!(
            "{:<7} {:>12} {:>12.2}ms {:>12.2}ms {:>7.1}x",
            tiles,
            measured[0].total_cycles,
            elapsed[0] * 1e3,
            elapsed[1] * 1e3,
            elapsed[1] / elapsed[0]
        );
        if tiles == largest {
            assert!(
                elapsed[0] < elapsed[1],
                "event kernel must beat lockstep on the largest mesh \
                 ({tiles} tiles): event {:.2}ms vs lockstep {:.2}ms",
                elapsed[0] * 1e3,
                elapsed[1] * 1e3
            );
        }
    }

    let mut group = c.benchmark_group("sim");
    for &tiles in meshes {
        let (graph, mapping, arch) = token_ring_system(tiles);
        for engine in [Engine::Event, Engine::Lockstep] {
            let label = match engine {
                Engine::Event => "event",
                Engine::Lockstep => "lockstep",
            };
            group.bench_with_input(BenchmarkId::new(label, tiles), &tiles, |b, _| {
                b.iter(|| std::hint::black_box(run_once(&graph, &mapping, &arch, engine)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
