//! Ablation: platform scaling for the MJPEG decoder.
//!
//! Sweeps the tile count for both interconnects, printing the guaranteed
//! bound, the near-square mesh chosen for the NoC (paper §5.3.1), and the
//! platform area; then times the full flow at two platform sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mamps_bench::{bench_stream_config, short_criterion};
use mamps_core::flow::{run_flow, FlowOptions};
use mamps_mjpeg::app_model::mjpeg_application;
use mamps_platform::area::platform_area;
use mamps_platform::interconnect::Interconnect;
use mamps_platform::noc::mesh_dimensions;

fn bench(c: &mut Criterion) {
    let cfg = bench_stream_config();
    let app = mjpeg_application(&cfg, None).unwrap();

    println!("\nMJPEG bound vs platform size:");
    println!(
        "{:<6} {:<7} {:<7} {:>14} {:>10}",
        "tiles", "ic", "mesh", "cycles/MCU", "slices"
    );
    for tiles in [1usize, 2, 3, 4, 5] {
        for (name, ic) in [
            ("fsl", Interconnect::fsl()),
            ("noc", Interconnect::noc_for_tiles(tiles)),
        ] {
            if let Ok(flow) = run_flow(&app, tiles, ic, &FlowOptions::default()) {
                let (w, h) = mesh_dimensions(tiles);
                let area = platform_area(&flow.arch, 4);
                println!(
                    "{:<6} {:<7} {:<7} {:>14.0} {:>10}",
                    tiles,
                    name,
                    if name == "noc" {
                        format!("{w}x{h}")
                    } else {
                        "-".into()
                    },
                    1.0 / flow.guaranteed_throughput(),
                    area.total.slices
                );
            }
        }
    }

    let mut group = c.benchmark_group("flow");
    for tiles in [2usize, 5] {
        group.bench_with_input(BenchmarkId::new("fsl", tiles), &tiles, |b, &t| {
            b.iter(|| {
                std::hint::black_box(
                    run_flow(&app, t, Interconnect::fsl(), &FlowOptions::default()).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
