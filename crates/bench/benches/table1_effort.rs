//! Table 1: designer effort. The manual rows are quoted from the paper;
//! the automated rows are measured on this machine — both as a one-shot
//! table and as Criterion benchmarks of each automated step.

use criterion::{criterion_group, criterion_main, Criterion};

use mamps_bench::{bench_stream_config, short_criterion};
use mamps_codegen::generate_project;
use mamps_core::experiments::table1;
use mamps_core::flow::{run_flow, FlowOptions};
use mamps_core::report::render_table1;
use mamps_mapping::flow::{map_application, MapOptions};
use mamps_mjpeg::app_model::mjpeg_application;
use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_sim::{System, WcetTimes};

fn bench(c: &mut Criterion) {
    let cfg = bench_stream_config();
    let app = mjpeg_application(&cfg, None).unwrap();

    // One-shot table.
    let flow = run_flow(&app, 3, Interconnect::fsl(), &FlowOptions::default()).unwrap();
    println!("\n{}", render_table1(&table1(&flow.timings)));

    // Step benchmarks.
    c.bench_function("table1/generate_architecture_model", |b| {
        b.iter(|| {
            std::hint::black_box(Architecture::homogeneous("auto", 3, Interconnect::fsl()).unwrap())
        })
    });
    let arch = Architecture::homogeneous("auto", 3, Interconnect::fsl()).unwrap();
    c.bench_function("table1/mapping_sdf3", |b| {
        b.iter(|| {
            std::hint::black_box(map_application(&app, &arch, &MapOptions::default()).unwrap())
        })
    });
    let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
    c.bench_function("table1/generate_project_mamps", |b| {
        b.iter(|| {
            std::hint::black_box(
                generate_project(&app, app.graph(), &mapped.mapping, &arch, "bench").unwrap(),
            )
        })
    });
    let wcet = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
    c.bench_function("table1/synthesis_boot", |b| {
        b.iter(|| {
            let sys = System::new(app.graph(), &mapped.mapping, &arch, &wcet).unwrap();
            std::hint::black_box(sys.run(3, 1_000_000_000).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
