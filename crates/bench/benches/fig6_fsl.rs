//! Fig. 6(a): measured and predicted worst-case throughput of the MJPEG
//! decoder over the FSL interconnect, for the synthetic sequence and the
//! five real-life test sequences.
//!
//! The table is printed once; Criterion then times the two kernels behind
//! the figure: the worst-case analysis of the mapped design and the
//! simulated platform decoding one sequence.

use criterion::{criterion_group, criterion_main, Criterion};

use mamps_bench::{bench_stream_config, short_criterion, SIM_ITERATIONS};
use mamps_core::experiments::fig6_experiment;
use mamps_core::report::render_fig6;
use mamps_mapping::flow::{map_application, MapOptions};
use mamps_mjpeg::app_model::mjpeg_application;
use mamps_mjpeg::sequences::{profile_sequence, synthetic, traces_of};
use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_sim::{System, TraceTimes};

fn bench(c: &mut Criterion) {
    let cfg = bench_stream_config();
    let (flow, rows) =
        fig6_experiment(&cfg, 3, Interconnect::fsl(), SIM_ITERATIONS).expect("fig6 runs");
    println!(
        "\n{}",
        render_fig6("Fig 6(a): FSL interconnect (MCU/MHz/s)", &rows)
    );
    for r in &rows {
        assert!(r.guarantee().holds(), "{} violated the bound", r.sequence);
    }

    let app = mjpeg_application(&cfg, None).unwrap();
    let arch = Architecture::homogeneous("bench", 3, Interconnect::fsl()).unwrap();
    c.bench_function("fig6a/worst_case_analysis", |b| {
        b.iter(|| {
            let mapped = map_application(&app, &arch, &MapOptions::default()).expect("mapping");
            std::hint::black_box(mapped.analysis.as_f64())
        })
    });

    let decoded = profile_sequence(&cfg, synthetic()).unwrap();
    let times = TraceTimes::new(
        traces_of(&decoded.profile),
        flow.mapped.mapping.binding.wcet_of.clone(),
    );
    c.bench_function("fig6a/measured_synthetic_150mcu", |b| {
        b.iter(|| {
            let sys = System::new(app.graph(), &flow.mapped.mapping, &flow.arch, &times)
                .expect("system builds");
            std::hint::black_box(
                sys.run(SIM_ITERATIONS, 100_000_000_000)
                    .expect("runs")
                    .steady_throughput(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
