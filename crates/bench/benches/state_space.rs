//! Ablation: the optimized state-space throughput kernel vs the retained
//! naive reference implementation.
//!
//! The self-timed exploration is the innermost loop of the whole flow
//! (buffer sizing, mapping and DSE bottom out in it), so its cost is
//! tracked as a first-class artefact: this bench times the fast kernel and
//! `mamps_sdf::state_space::reference` on the paper's Fig. 2 graph and on
//! the MJPEG decoder's expanded analysis graph, prints the kernel rates in
//! graphs/second, and asserts both that the results are identical and that
//! the fast path wins on the MJPEG expanded graph.
//!
//! `scripts/bench_json.sh` runs this target with `MAMPS_BENCH_JSON` set
//! and assembles `BENCH_state_space.json`, the perf-trajectory snapshot
//! checked in at the repository root.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use mamps_bench::{mjpeg_expanded_graph, quick_mode, short_criterion};
use mamps_sdf::graph::{SdfGraph, SdfGraphBuilder};
use mamps_sdf::state_space::{reference, throughput, AnalysisOptions};

/// Paper Fig. 2 with the execution times used throughout the test suite.
fn fig2() -> SdfGraph {
    let mut b = SdfGraphBuilder::new("fig2");
    let a = b.add_actor("A", 10);
    let bb = b.add_actor("B", 5);
    let c = b.add_actor("C", 7);
    b.add_channel("a2b", a, 2, bb, 1);
    b.add_channel("a2c", a, 1, c, 1);
    b.add_channel("b2c", bb, 1, c, 2);
    b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
    b.build().unwrap()
}

/// Median wall-clock of `runs` invocations of `f`, in seconds.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let fig2 = fig2();
    let fig2_opts = AnalysisOptions::default();
    let (mjpeg, mjpeg_opts) = mjpeg_expanded_graph(3);

    // The fast kernel and the reference must agree exactly — the whole
    // point of the optimization is that results stay bit-identical.
    for (name, g, o) in [
        ("fig2", &fig2, &fig2_opts),
        ("mjpeg_expanded", &mjpeg, &mjpeg_opts),
    ] {
        let fast = throughput(g, o).unwrap();
        let slow = reference::throughput(g, o).unwrap();
        assert_eq!(fast, slow, "kernels disagree on {name}");
    }

    // Kernel rate comparison (graphs analysed per second, medians).
    let runs = if quick_mode() { 5 } else { 15 };
    println!("\nstate-space kernel: fast path vs naive reference");
    println!(
        "{:<16} {:<10} {:>12} {:>14}",
        "graph", "kernel", "median", "graphs/sec"
    );
    let mut medians = [[0.0f64; 2]; 2];
    for (gi, (name, g, o)) in [
        ("fig2", &fig2, &fig2_opts),
        ("mjpeg_expanded", &mjpeg, &mjpeg_opts),
    ]
    .into_iter()
    .enumerate()
    {
        for (ki, kernel) in ["fast", "naive"].into_iter().enumerate() {
            let m = if kernel == "fast" {
                median_secs(runs, || {
                    std::hint::black_box(throughput(g, o).unwrap());
                })
            } else {
                median_secs(runs, || {
                    std::hint::black_box(reference::throughput(g, o).unwrap());
                })
            };
            medians[gi][ki] = m;
            println!(
                "{:<16} {:<10} {:>10.1}µs {:>14.0}",
                name,
                kernel,
                m * 1e6,
                1.0 / m
            );
        }
    }
    let speedup = medians[1][1] / medians[1][0];
    println!("mjpeg_expanded speedup: {speedup:.2}x");
    assert!(
        medians[1][0] < medians[1][1],
        "fast kernel must beat the naive reference on the MJPEG expanded \
         graph (fast {:.1}µs vs naive {:.1}µs)",
        medians[1][0] * 1e6,
        medians[1][1] * 1e6
    );

    c.bench_function("state_space/fig2", |b| {
        b.iter(|| std::hint::black_box(throughput(&fig2, &fig2_opts).unwrap()))
    });
    c.bench_function("state_space/fig2_naive", |b| {
        b.iter(|| std::hint::black_box(reference::throughput(&fig2, &fig2_opts).unwrap()))
    });
    c.bench_function("state_space/mjpeg_expanded", |b| {
        b.iter(|| std::hint::black_box(throughput(&mjpeg, &mjpeg_opts).unwrap()))
    });
    c.bench_function("state_space/mjpeg_expanded_naive", |b| {
        b.iter(|| std::hint::black_box(reference::throughput(&mjpeg, &mjpeg_opts).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
