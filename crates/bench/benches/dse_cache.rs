//! Analysis-cache effectiveness: cold vs warm DSE sweep over the example
//! corpus.
//!
//! Runs the same single-application binder sweep (the checked-in MJPEG
//! example application, the corpus `scripts/smoke.sh` exercises) twice:
//! **cold** with a fresh [`GlobalAnalysisCache`] (what the first
//! `mamps dse` invocation of a directory sees) and **warm** with a cache
//! pre-populated by an identical prior sweep (what `--cache-dir` delivers
//! to every later invocation, and what resumed or repeated sweeps of one
//! process see). The design points re-probe the same expanded graphs, so
//! the warm sweep answers nearly every throughput analysis from the
//! cache and pays only expansion + fingerprinting.
//!
//! Before timing, the cold and warm reports are asserted equal — a
//! speedup that changed results would be meaningless — and the warm sweep
//! must come out at least 2x faster (best of three wall-clock runs); CI's
//! quick snapshot enforces the trajectory on every push.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mamps_bench::{quick_mode, short_criterion};
use mamps_core::dse::{explore_report, DseReport};
use mamps_core::flow::FlowOptions;
use mamps_sdf::cache::GlobalAnalysisCache;
use mamps_sdf::model::ApplicationModel;
use mamps_sdf::xml::application_from_xml;

/// The MJPEG example application (15 actors): per-design-point analyses
/// are real state-space explorations, so the sweep's cost sits where the
/// cache can elide it.
fn sweep_app() -> ApplicationModel {
    application_from_xml(include_str!("../../../examples/data/mjpeg_small_app.xml"))
        .expect("checked-in example application parses")
}

fn sweep_opts(cache: &Arc<GlobalAnalysisCache>) -> FlowOptions {
    let mut opts = FlowOptions {
        binders: vec![
            mamps_mapping::strategy::by_name("greedy").unwrap(),
            mamps_mapping::strategy::by_name("spiral").unwrap(),
        ],
        ..FlowOptions::default()
    };
    opts.map.cache = Some(Arc::clone(cache));
    opts
}

fn sweep(app: &ApplicationModel, tiles: &[usize], cache: &Arc<GlobalAnalysisCache>) -> DseReport {
    explore_report(app, tiles, true, &sweep_opts(cache))
}

fn bench(c: &mut Criterion) {
    let app = sweep_app();
    let tiles: Vec<usize> = if quick_mode() {
        (1..=3).collect()
    } else {
        (1..=4).collect()
    };

    // The warm cache: one full sweep's analyses.
    let warm_cache = Arc::new(GlobalAnalysisCache::new());
    let reference = sweep(&app, &tiles, &warm_cache);

    // Equivalence first, then best-of-three wall clock per variant.
    let mut elapsed = [f64::INFINITY; 2]; // [cold, warm]
    for _ in 0..3 {
        let t0 = Instant::now();
        let cold_report = sweep(&app, &tiles, &Arc::new(GlobalAnalysisCache::new()));
        elapsed[0] = elapsed[0].min(t0.elapsed().as_secs_f64());
        assert_eq!(cold_report, reference, "cold sweep diverges");

        let t0 = Instant::now();
        let warm_report = sweep(&app, &tiles, &warm_cache);
        elapsed[1] = elapsed[1].min(t0.elapsed().as_secs_f64());
        assert_eq!(warm_report, reference, "warm sweep diverges");
    }
    let stats = warm_cache.stats();
    println!(
        "\ndse sweep over {} tile counts: cold {:.2}ms, warm {:.2}ms ({:.1}x); cache {stats}",
        tiles.len(),
        elapsed[0] * 1e3,
        elapsed[1] * 1e3,
        elapsed[0] / elapsed[1]
    );
    assert!(
        elapsed[0] >= 2.0 * elapsed[1],
        "warm sweep must be at least 2x faster than cold: cold {:.2}ms vs warm {:.2}ms",
        elapsed[0] * 1e3,
        elapsed[1] * 1e3
    );

    let mut group = c.benchmark_group("dse_cache");
    group.bench_with_input(BenchmarkId::new("sweep", "cold"), &(), |b, ()| {
        b.iter(|| std::hint::black_box(sweep(&app, &tiles, &Arc::new(GlobalAnalysisCache::new()))))
    });
    group.bench_with_input(BenchmarkId::new("sweep", "warm"), &(), |b, ()| {
        b.iter(|| std::hint::black_box(sweep(&app, &tiles, &warm_cache)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short_criterion();
    targets = bench
}
criterion_main!(benches);
