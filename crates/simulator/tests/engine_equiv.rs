//! Engine equivalence as an executable property.
//!
//! The discrete-event kernel (`sim::event`) must be *bit-identical* to the
//! lockstep reference engine (`sim::reference`) — not statistically close:
//! same iteration completion times, same firing counts, same per-worker
//! busy cycles, same trace events in the same order, same rendered Gantt
//! and trace text, and the same error verdict when the mapping is broken.
//!
//! Random SDF graphs × random platforms (FSL and NoC, 1–5 tiles,
//! multirate channels, varied token sizes) are mapped by the full flow and
//! run under both engines; multi-application union graphs go through
//! `map_use_case` and `new_with_repetitions` the same way. Graphs come
//! from the shared `mamps_sdf::gen` testkit — both the pipeline helper
//! and full generated topology families (split-joins, trees, cycles).

use proptest::prelude::*;

use mamps_mapping::flow::{map_application, MapOptions};
use mamps_mapping::multi::{map_use_case, UseCase};
use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::gen::{generate, pipeline_app, strategies};
use mamps_sim::{render_gantt, render_trace, Engine, System, WcetTimes};

fn strategy() -> impl Strategy<Value = (Vec<u64>, u64, usize, bool, Vec<u64>)> {
    (
        strategies::wcets(2..5),
        prop_oneof![Just(4u64), Just(16), Just(64), Just(200)],
        1usize..5,
        any::<bool>(),
        proptest::collection::vec(1u64..4, 2),
    )
}

/// Runs both engines over the same system and asserts exact agreement on
/// every observable: measurement fields, trace events, rendered output.
fn assert_engines_agree(
    app_graph: &mamps_sdf::graph::SdfGraph,
    mapping: &mamps_mapping::mapping::Mapping,
    arch: &Architecture,
    repetitions: Option<Vec<u64>>,
    iterations: u64,
) -> Result<(), TestCaseError> {
    let times = WcetTimes::new(mapping.binding.wcet_of.clone());
    let build = |engine| {
        let sys = match &repetitions {
            Some(q) => {
                System::new_with_repetitions(app_graph, mapping, arch, &times, q.clone()).unwrap()
            }
            None => System::new(app_graph, mapping, arch, &times).unwrap(),
        };
        sys.with_engine(engine)
            .run_traced(iterations, 500_000_000, 20_000)
    };
    let event = build(Engine::Event);
    let lockstep = build(Engine::Lockstep);
    match (event, lockstep) {
        (Ok((me, te)), Ok((ml, tl))) => {
            prop_assert_eq!(&me, &ml, "measurements diverge");
            prop_assert_eq!(&te, &tl, "traces diverge");
            let until = me.iteration_times.last().copied().unwrap_or(1_000);
            prop_assert_eq!(
                render_gantt(&te, until, 72),
                render_gantt(&tl, until, 72),
                "gantt output diverges"
            );
            prop_assert_eq!(render_trace(&te), render_trace(&tl), "trace text diverges");
        }
        (e, l) => {
            // Same verdict, same message — errors must agree too.
            prop_assert_eq!(e.map(|(m, _)| m), l.map(|(m, _)| m));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_single_app(
        (wcets, tok, tiles, noc, rates) in strategy()
    ) {
        let app = pipeline_app("p", &wcets, tok, &rates, None);
        let ic = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let arch = Architecture::homogeneous("x", tiles, ic).unwrap();
        let mapped = match map_application(&app, &arch, &MapOptions::default()) {
            Ok(m) => m,
            Err(_) => return Ok(()), // infeasible random configuration
        };
        assert_engines_agree(app.graph(), &mapped.mapping, &arch, None, 80)?;
    }

    #[test]
    fn engines_agree_on_broken_mappings(
        (wcets, tok, tiles, noc, rates) in strategy(),
        starve_dst in any::<bool>(),
    ) {
        let app = pipeline_app("p", &wcets, tok, &rates, None);
        let ic = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let arch = Architecture::homogeneous("x", tiles, ic).unwrap();
        let mut mapped = match map_application(&app, &arch, &MapOptions::default()) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        // Break the allocation: starved receivers or zero local capacity
        // produce deadlock/cycle-limit verdicts that must match exactly.
        for c in &mut mapped.mapping.channels {
            if starve_dst {
                c.alpha_dst = 0;
            } else {
                c.local_capacity = 0;
            }
        }
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let run = |engine| {
            System::new(app.graph(), &mapped.mapping, &arch, &times)
                .unwrap()
                .with_engine(engine)
                .run(20, 200_000)
        };
        prop_assert_eq!(run(Engine::Event), run(Engine::Lockstep));
    }

    #[test]
    fn engines_agree_on_generated_families(
        cfg in strategies::flow_config(),
        tiles in 1usize..4,
        noc in any::<bool>(),
    ) {
        let app = generate(&cfg).unwrap();
        let ic = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let arch = Architecture::homogeneous("x", tiles, ic).unwrap();
        let mapped = match map_application(&app, &arch, &MapOptions::default()) {
            Ok(m) => m,
            Err(_) => return Ok(()), // infeasible (scenario, platform) pair
        };
        assert_engines_agree(app.graph(), &mapped.mapping, &arch, None, 40)?;
    }

    #[test]
    fn engines_agree_on_multi_app_unions(
        wa in strategies::wcets(2..4),
        wb in strategies::wcets(2..4),
        tok in prop_oneof![Just(8u64), Just(32), Just(128)],
        tiles in 2usize..4,
    ) {
        let ua = pipeline_app("u", &wa, tok, &[1], None);
        let ub = pipeline_app("v", &wb, tok, &[1], None);
        let uc = UseCase::new(vec![ua, ub]).unwrap();
        let arch = Architecture::homogeneous("x", tiles, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        for group in &r.groups {
            assert_engines_agree(
                &group.graph,
                &group.mapping,
                &arch,
                Some(group.combined_repetitions()),
                60,
            )?;
        }
    }
}
