//! The paper's central claim as executable properties.
//!
//! For randomized applications mapped by the full flow:
//!
//! 1. **Tightness** — running the simulated platform with actual execution
//!    times equal to the WCETs reproduces the analysed bound exactly.
//! 2. **Conservativeness** — running with any actual times <= WCET yields a
//!    measured throughput at or above the bound.

use proptest::prelude::*;

use mamps_mapping::flow::{map_application, MapOptions};
use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::graph::SdfGraphBuilder;
use mamps_sdf::model::{ApplicationModel, HomogeneousModelBuilder};
use mamps_sim::{System, TraceTimes, WcetTimes};

fn pipeline_app(wcets: &[u64], token_size: u64, rates: &[u64]) -> ApplicationModel {
    let n = wcets.len();
    let mut b = SdfGraphBuilder::new("pipe");
    let ids: Vec<_> = (0..n).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
    for i in 0..n - 1 {
        // Alternate multirate patterns derived from `rates`.
        let p = rates[i % rates.len()];
        b.add_channel_full(format!("e{i}"), ids[i], p, ids[i + 1], p, 0, token_size);
    }
    let g = b.build().unwrap();
    let mut mb = HomogeneousModelBuilder::new("microblaze");
    for (i, &w) in wcets.iter().enumerate() {
        mb.actor(format!("a{i}"), w.max(1), 4096, 512);
    }
    mb.finish(g, None).unwrap()
}

fn strategy() -> impl Strategy<Value = (Vec<u64>, u64, usize, bool, Vec<u64>)> {
    (
        proptest::collection::vec(5u64..300, 2..5),
        prop_oneof![Just(4u64), Just(16), Just(64), Just(200)],
        2usize..5,
        any::<bool>(),
        proptest::collection::vec(1u64..4, 2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wcet_simulation_reproduces_bound_exactly(
        (wcets, tok, tiles, noc, rates) in strategy()
    ) {
        let app = pipeline_app(&wcets, tok, &rates);
        let ic = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let arch = Architecture::homogeneous("x", tiles, ic).unwrap();
        let mapped = match map_application(&app, &arch, &MapOptions::default()) {
            Ok(m) => m,
            Err(_) => return Ok(()), // infeasible random configuration
        };
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        let m = sys.run(300, 500_000_000).unwrap();
        let bound = mapped.analysis.as_f64();
        let meas = m.steady_throughput();
        prop_assert!(meas >= bound * (1.0 - 1e-9),
            "measured {meas} below bound {bound}");
        prop_assert!(meas <= bound * (1.0 + 1e-6),
            "measured {meas} exceeds bound {bound}: analysis not tight");
    }

    #[test]
    fn faster_actuals_stay_above_bound(
        (wcets, tok, tiles, noc, rates) in strategy(),
        seed in 0u64..1000,
    ) {
        let app = pipeline_app(&wcets, tok, &rates);
        let ic = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let arch = Architecture::homogeneous("x", tiles, ic).unwrap();
        let mapped = match map_application(&app, &arch, &MapOptions::default()) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        // Deterministic pseudo-random per-firing times in [1, wcet].
        let traces: Vec<Vec<u64>> = mapped
            .mapping
            .binding
            .wcet_of
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                (0..17)
                    .map(|k| {
                        let x = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((i as u64) * 31 + k);
                        1 + (x >> 33) % w.max(1)
                    })
                    .collect()
            })
            .collect();
        let times = TraceTimes::new(traces, mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        let m = sys.run(300, 500_000_000).unwrap();
        let bound = mapped.analysis.as_f64();
        let meas = m.steady_throughput();
        prop_assert!(
            meas >= bound * (1.0 - 1e-9),
            "measured {meas} below guaranteed bound {bound}"
        );
    }
}
