//! The paper's central claim as executable properties.
//!
//! For randomized applications mapped by the full flow:
//!
//! 1. **Tightness** — running the simulated platform with actual execution
//!    times equal to the WCETs reproduces the analysed bound exactly.
//! 2. **Conservativeness** — running with any actual times <= WCET yields a
//!    measured throughput at or above the bound.

use proptest::prelude::*;

use mamps_mapping::flow::{map_application, MapOptions};
use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::Interconnect;
use mamps_sdf::gen::{pipeline_app, strategies};
use mamps_sim::{System, TraceTimes, WcetTimes};

fn strategy() -> impl Strategy<Value = (Vec<u64>, u64, usize, bool, Vec<u64>)> {
    (
        strategies::wcets(2..5),
        prop_oneof![Just(4u64), Just(16), Just(64), Just(200)],
        2usize..5,
        any::<bool>(),
        proptest::collection::vec(1u64..4, 2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wcet_simulation_reproduces_bound_exactly(
        (wcets, tok, tiles, noc, rates) in strategy()
    ) {
        let app = pipeline_app("pipe", &wcets, tok, &rates, None);
        let ic = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let arch = Architecture::homogeneous("x", tiles, ic).unwrap();
        let mapped = match map_application(&app, &arch, &MapOptions::default()) {
            Ok(m) => m,
            Err(_) => return Ok(()), // infeasible random configuration
        };
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        let m = sys.run(300, 500_000_000).unwrap();
        let bound = mapped.analysis.as_f64();
        let meas = m.steady_throughput();
        prop_assert!(meas >= bound * (1.0 - 1e-9),
            "measured {meas} below bound {bound}");
        prop_assert!(meas <= bound * (1.0 + 1e-6),
            "measured {meas} exceeds bound {bound}: analysis not tight");
    }

    #[test]
    fn faster_actuals_stay_above_bound(
        (wcets, tok, tiles, noc, rates) in strategy(),
        seed in 0u64..1000,
    ) {
        let app = pipeline_app("pipe", &wcets, tok, &rates, None);
        let ic = if noc {
            Interconnect::noc_for_tiles(tiles)
        } else {
            Interconnect::fsl()
        };
        let arch = Architecture::homogeneous("x", tiles, ic).unwrap();
        let mapped = match map_application(&app, &arch, &MapOptions::default()) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        // Deterministic pseudo-random per-firing times in [1, wcet].
        let traces: Vec<Vec<u64>> = mapped
            .mapping
            .binding
            .wcet_of
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                (0..17)
                    .map(|k| {
                        let x = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((i as u64) * 31 + k);
                        1 + (x >> 33) % w.max(1)
                    })
                    .collect()
            })
            .collect();
        let times = TraceTimes::new(traces, mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        let m = sys.run(300, 500_000_000).unwrap();
        let bound = mapped.analysis.as_f64();
        let meas = m.steady_throughput();
        prop_assert!(
            meas >= bound * (1.0 - 1e-9),
            "measured {meas} below guaranteed bound {bound}"
        );
    }
}
