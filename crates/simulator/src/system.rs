//! The simulated MPSoC: construction from (application, mapping,
//! architecture) and the engine-independent system state.
//!
//! The simulator is an *independent* implementation of the platform
//! semantics — it shares no code with the SDF analysis. Agreement between
//! the two (measured >= guaranteed bound, with equality when actual firing
//! times equal the WCETs) is therefore a genuine validation of the flow,
//! mirroring the paper's FPGA measurements in Fig. 6.
//!
//! Two execution engines drive the shared `SimState`:
//!
//! * [`crate::event`] — the default discrete-event kernel: a binary-heap
//!   event queue keyed by `(next_tick, component_id)`; idle components
//!   sleep until a token arrival or timer wakes them.
//! * [`crate::reference`] — the original lockstep engine, kept intact as
//!   the bit-exactness oracle the event kernel is validated against.
//!
//! Both produce bit-identical traces, measurements, and error verdicts;
//! [`Engine`] selects between them.

use mamps_platform::arch::Architecture;
use mamps_platform::interconnect::CommParams;
use mamps_platform::tile::TileKind;
use mamps_sdf::graph::SdfGraph;
use mamps_sdf::repetition::repetition_vector;

use mamps_mapping::mapping::Mapping;

use crate::exec_time::FiringTimes;
use crate::fifo::{ChannelState, CrossChannelState, LocalChannelState, SelfEdgeState};
use crate::noc_sim::Connection;
use crate::processor::{Op, Worker, WorkerKind};
use crate::trace::{Measurement, SimError, TraceEvent};

/// Per-word cycles with setup amortized, rounded up — must match the
/// analysis model ([`mamps_mapping::comm_expand`]) so that WCET-driven
/// simulation reproduces the bound exactly.
fn per_word_cycles(setup: u64, cycles_per_word: u64, n: u64) -> u64 {
    cycles_per_word + setup.div_ceil(n.max(1))
}

/// Execution engine selection for [`System`].
///
/// Both engines implement identical platform semantics and are required
/// (by tests and by CI's `scripts/sim_equiv.sh`) to produce bit-identical
/// traces, measurements, and error verdicts. `Event` is the fast default;
/// `Lockstep` is the original cycle-scanning engine kept as the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Discrete-event kernel ([`crate::event`]): binary-heap event queue,
    /// idle components sleep until woken. `O(log n)` per event.
    #[default]
    Event,
    /// Lockstep reference engine ([`crate::reference`]): advances to the
    /// next event time, then rescans every worker. `O(workers)` per
    /// event instant.
    Lockstep,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "event" => Ok(Engine::Event),
            "lockstep" | "reference" => Ok(Engine::Lockstep),
            other => Err(format!(
                "unknown simulator engine `{other}` (expected `event` or `lockstep`)"
            )),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Event => "event",
            Engine::Lockstep => "lockstep",
        })
    }
}

/// The engine-independent state of a simulated system: the (application,
/// mapping, architecture) inputs plus every piece of mutable run state —
/// channel FIFOs, workers, firing counters, the clock, and the optional
/// trace buffer. Both engines operate on this exact structure, which is
/// what makes their outputs comparable field by field.
pub(crate) struct SimState<'a> {
    pub(crate) graph: &'a SdfGraph,
    pub(crate) mapping: &'a Mapping,
    pub(crate) arch: &'a Architecture,
    pub(crate) times: &'a dyn FiringTimes,
    pub(crate) channels: Vec<ChannelState>,
    pub(crate) workers: Vec<Worker>,
    /// Extra cycles charged per firing (CA posting overhead), per actor.
    pub(crate) fire_overhead: Vec<u64>,
    /// Completed firings per actor.
    pub(crate) firings: Vec<u64>,
    /// Repetition count per actor (an iteration completes when every actor
    /// `a` reached `q[a]` further firings).
    pub(crate) q: Vec<u64>,
    /// Iteration completion times.
    pub(crate) iteration_times: Vec<u64>,
    pub(crate) now: u64,
    /// Recorded operations (when tracing) and the event cap.
    pub(crate) trace: Option<(Vec<TraceEvent>, usize)>,
}

impl<'a> SimState<'a> {
    fn build(
        graph: &'a SdfGraph,
        mapping: &'a Mapping,
        arch: &'a Architecture,
        times: &'a dyn FiringTimes,
        repetitions: Vec<u64>,
    ) -> Result<SimState<'a>, SimError> {
        if mapping.channels.len() != graph.channel_count() {
            return Err(SimError::Build(format!(
                "mapping has {} channel allocations for {} channels",
                mapping.channels.len(),
                graph.channel_count()
            )));
        }
        if mapping.schedules.len() != arch.tile_count() {
            return Err(SimError::Build(format!(
                "mapping has {} schedules for {} tiles",
                mapping.schedules.len(),
                arch.tile_count()
            )));
        }
        let binding = &mapping.binding;
        let mut channels = Vec::with_capacity(graph.channel_count());
        for (cid, ch) in graph.channels() {
            let alloc = mapping.channels[cid.0];
            let state = if ch.is_self_edge() {
                ChannelState::SelfEdge(SelfEdgeState {
                    tokens: ch.initial_tokens(),
                    cons: ch.consumption_rate(),
                    prod: ch.production_rate(),
                })
            } else if !binding.crosses_tiles(ch.src(), ch.dst()) {
                if alloc.local_capacity < ch.initial_tokens() {
                    return Err(SimError::Build(format!(
                        "channel `{}` capacity below initial tokens",
                        ch.name()
                    )));
                }
                ChannelState::Local(LocalChannelState {
                    tokens: ch.initial_tokens(),
                    space: alloc.local_capacity - ch.initial_tokens(),
                    cons: ch.consumption_rate(),
                    prod: ch.production_rate(),
                })
            } else {
                let src_tile_id = binding.tile_of[ch.src().0];
                let dst_tile_id = binding.tile_of[ch.dst().0];
                let src_tile = arch.tile(src_tile_id);
                let dst_tile = arch.tile(dst_tile_id);
                let n_words = mamps_platform::types::words_per_token(ch.token_size());
                if alloc.alpha_src < ch.initial_tokens() {
                    return Err(SimError::Build(format!(
                        "channel `{}` alpha_src below initial tokens",
                        ch.name()
                    )));
                }
                let params = CommParams::for_connection(
                    arch.interconnect(),
                    src_tile_id,
                    dst_tile_id,
                    alloc.wires,
                );
                let offload_src = !matches!(src_tile.kind(), TileKind::Master | TileKind::Slave);
                let offload_dst = !matches!(dst_tile.kind(), TileKind::Master | TileKind::Slave);
                let (ser_setup, ser_cpw) = match src_tile.ca() {
                    Some(ca) => (ca.setup_cycles, ca.cycles_per_word),
                    None => (
                        src_tile.serialization().setup_cycles,
                        src_tile.serialization().cycles_per_word,
                    ),
                };
                let (des_setup, des_cpw) = match dst_tile.ca() {
                    Some(ca) => (ca.setup_cycles, ca.cycles_per_word),
                    None => (
                        dst_tile.serialization().setup_cycles,
                        dst_tile.serialization().cycles_per_word,
                    ),
                };
                ChannelState::Cross(CrossChannelState {
                    send_words: ch.initial_tokens() * n_words,
                    src_space: alloc.alpha_src - ch.initial_tokens(),
                    srel_progress: 0,
                    conn: Connection::new(params),
                    asm_progress: 0,
                    assembled: 0,
                    dst_word_space: alloc.alpha_dst * n_words,
                    n_words,
                    ser_word: per_word_cycles(ser_setup, ser_cpw, n_words),
                    des_word: per_word_cycles(des_setup, des_cpw, n_words),
                    prod: ch.production_rate(),
                    cons: ch.consumption_rate(),
                    src_tile: src_tile_id,
                    dst_tile: dst_tile_id,
                    offload_src,
                    offload_dst,
                })
            };
            channels.push(state);
        }

        // Workers: one PE per tile with a non-empty schedule (IP tiles run
        // their actor autonomously), plus CA/NI engines for offloaded
        // channel endpoints.
        let mut workers = Vec::new();
        for t in 0..arch.tile_count() {
            match arch.tile(mamps_platform::types::TileId(t)).kind() {
                TileKind::HardwareIp => {
                    for a in binding.actors_on(mamps_platform::types::TileId(t)) {
                        workers.push(Worker::new(WorkerKind::Ip { actor: a }));
                    }
                }
                _ => {
                    if !mapping.schedules[t].is_empty() {
                        workers.push(Worker::new(WorkerKind::Pe { tile: t }));
                    }
                }
            }
        }
        for (cid, st) in channels.iter().enumerate() {
            if let ChannelState::Cross(c) = st {
                if c.offload_src {
                    workers.push(Worker::new(WorkerKind::EngineSend {
                        channel: mamps_sdf::graph::ChannelId(cid),
                    }));
                }
                if c.offload_dst {
                    workers.push(Worker::new(WorkerKind::EngineRecv {
                        channel: mamps_sdf::graph::ChannelId(cid),
                    }));
                }
            }
        }

        // CA/IP posting overhead per firing (mirrors the analysis model).
        let mut fire_overhead = vec![0u64; graph.actor_count()];
        for (aid, _) in graph.actors() {
            let tile = arch.tile(binding.tile_of[aid.0]);
            if !matches!(tile.kind(), TileKind::Master | TileKind::Slave) {
                for &cid in graph.outgoing(aid) {
                    let ch = graph.channel(cid);
                    if !ch.is_self_edge() && binding.crosses_tiles(ch.src(), ch.dst()) {
                        fire_overhead[aid.0] += ch.production_rate() * tile.pe_token_overhead(0);
                    }
                }
                for &cid in graph.incoming(aid) {
                    let ch = graph.channel(cid);
                    if !ch.is_self_edge() && binding.crosses_tiles(ch.src(), ch.dst()) {
                        fire_overhead[aid.0] += ch.consumption_rate() * tile.pe_token_overhead(0);
                    }
                }
            }
        }

        Ok(SimState {
            graph,
            mapping,
            arch,
            times,
            channels,
            workers,
            fire_overhead,
            firings: vec![0; graph.actor_count()],
            q: repetitions,
            iteration_times: Vec::new(),
            now: 0,
            trace: None,
        })
    }

    /// Records a completed operation of worker `w` into the trace buffer
    /// (when tracing, honoring the event cap). Shared by both engines so
    /// trace contents are identical by construction.
    pub(crate) fn record_completion(&mut self, w: usize, op: Op) {
        if let Some((events, cap)) = &mut self.trace {
            if events.len() < *cap {
                events.push(TraceEvent {
                    worker: self.workers[w].kind,
                    op,
                    start: self.workers[w].op_started,
                    end: self.now,
                });
            }
        }
    }

    /// Assembles the final [`Measurement`] from the run state. Shared by
    /// both engines so the field contents match exactly.
    pub(crate) fn measurement(&mut self) -> Measurement {
        Measurement::new(
            std::mem::take(&mut self.iteration_times),
            self.now,
            self.firings.clone(),
            self.workers
                .iter()
                .map(|w| (w.kind, w.busy_cycles))
                .collect(),
            self.arch.clock_mhz(),
        )
    }
}

/// The simulated system: engine-independent state plus the selected
/// execution engine (see [`Engine`]; defaults to the event kernel).
pub struct System<'a> {
    st: SimState<'a>,
    engine: Engine,
}

impl<'a> System<'a> {
    /// Builds a system ready to run from cycle 0.
    ///
    /// # Errors
    ///
    /// [`SimError::Build`] if the mapping and graph disagree (missing
    /// schedules, channel allocation mismatches).
    pub fn new(
        graph: &'a SdfGraph,
        mapping: &'a Mapping,
        arch: &'a Architecture,
        times: &'a dyn FiringTimes,
    ) -> Result<System<'a>, SimError> {
        let q = repetition_vector(graph).map_err(|e| SimError::Build(e.to_string()))?;
        let st = SimState::build(graph, mapping, arch, times, q.entries().to_vec())?;
        Ok(System {
            st,
            engine: Engine::default(),
        })
    }

    /// Like [`new`](Self::new) but with a caller-provided repetition
    /// vector.
    ///
    /// This is the multi-application entry point: the union graph of
    /// several applications sharing one platform is disconnected (the
    /// applications exchange no tokens), so no single repetition vector
    /// can be derived from the graph — the caller passes the members'
    /// vectors concatenated (see `mamps_mapping::multi::SharedSystem::
    /// combined_repetitions`). An "iteration" then completes when *every*
    /// application has completed one of its own iterations, which is the
    /// lockstep rate the shared static-order schedules guarantee.
    ///
    /// # Errors
    ///
    /// [`SimError::Build`] if `repetitions` does not cover every actor or
    /// contains a zero, plus the mapping/graph mismatch errors of
    /// [`new`](Self::new).
    pub fn new_with_repetitions(
        graph: &'a SdfGraph,
        mapping: &'a Mapping,
        arch: &'a Architecture,
        times: &'a dyn FiringTimes,
        repetitions: Vec<u64>,
    ) -> Result<System<'a>, SimError> {
        if repetitions.len() != graph.actor_count() {
            return Err(SimError::Build(format!(
                "repetition vector covers {} of {} actors",
                repetitions.len(),
                graph.actor_count()
            )));
        }
        if repetitions.contains(&0) {
            return Err(SimError::Build(
                "repetition vector contains a zero entry".into(),
            ));
        }
        let st = SimState::build(graph, mapping, arch, times, repetitions)?;
        Ok(System {
            st,
            engine: Engine::default(),
        })
    }

    /// Selects the execution engine (builder style).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> System<'a> {
        self.engine = engine;
        self
    }

    /// The selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Like [`run`](Self::run) but records up to `max_events` completed
    /// operations for trace/Gantt inspection.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_traced(
        mut self,
        iterations: u64,
        max_cycles: u64,
        max_events: usize,
    ) -> Result<(Measurement, Vec<TraceEvent>), SimError> {
        self.st.trace = Some((Vec::new(), max_events));
        let result = self.run_mut(iterations, max_cycles);
        let events_out = self.st.trace.take().map(|(ev, _)| ev).unwrap_or_default();
        result.map(|m| (m, events_out))
    }

    /// Runs until `iterations` graph iterations completed (or `max_cycles`).
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] if no worker can progress and no event is
    ///   pending before the target is reached.
    /// * [`SimError::CycleLimit`] if `max_cycles` elapses first.
    pub fn run(mut self, iterations: u64, max_cycles: u64) -> Result<Measurement, SimError> {
        self.run_mut(iterations, max_cycles)
    }

    fn run_mut(&mut self, iterations: u64, max_cycles: u64) -> Result<Measurement, SimError> {
        match self.engine {
            Engine::Event => crate::event::run(&mut self.st, iterations, max_cycles),
            Engine::Lockstep => crate::reference::run(&mut self.st, iterations, max_cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_time::WcetTimes;
    use mamps_mapping::flow::{map_application, MapOptions};
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    fn pipeline_app(wcets: &[u64], token_size: u64) -> mamps_sdf::model::ApplicationModel {
        let n = wcets.len();
        let mut b = SdfGraphBuilder::new("pipe");
        let ids: Vec<_> = (0..n).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
        for i in 0..n - 1 {
            b.add_channel_full(format!("e{i}"), ids[i], 1, ids[i + 1], 1, 0, token_size);
        }
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        for (i, &w) in wcets.iter().enumerate() {
            mb.actor(format!("a{i}"), w, 4096, 512);
        }
        mb.finish(g, None).unwrap()
    }

    /// End-to-end check on a single tile: two actors, sequential schedule,
    /// period = sum of WCETs.
    #[test]
    fn single_tile_sequential_period() {
        let app = pipeline_app(&[30, 70], 4);
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        let m = sys.run(50, 1_000_000).unwrap();
        let thr = m.steady_throughput();
        assert!((thr - 0.01).abs() < 1e-6, "expected 1/100, got {thr}");
    }

    /// Measured (WCET) throughput must meet the analysed guarantee.
    #[test]
    fn wcet_simulation_meets_guarantee_two_tiles() {
        let app = pipeline_app(&[100, 100], 64);
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        let m = sys.run(100, 10_000_000).unwrap();
        let guaranteed = mapped.analysis.as_f64();
        let measured = m.steady_throughput();
        assert!(
            measured >= guaranteed * (1.0 - 1e-9),
            "measured {measured} below guarantee {guaranteed}"
        );
    }

    /// Faster actual times can only help.
    #[test]
    fn faster_actuals_beat_wcet_run() {
        let app = pipeline_app(&[100, 100], 16);
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let wcet = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let fast = WcetTimes::new(vec![50, 50]);
        let m_wcet = System::new(app.graph(), &mapped.mapping, &arch, &wcet)
            .unwrap()
            .run(100, 10_000_000)
            .unwrap();
        let m_fast = System::new(app.graph(), &mapped.mapping, &arch, &fast)
            .unwrap()
            .run(100, 10_000_000)
            .unwrap();
        assert!(m_fast.steady_throughput() > m_wcet.steady_throughput());
    }

    #[test]
    fn noc_platform_runs() {
        let app = pipeline_app(&[60, 60, 60], 32);
        let arch = Architecture::homogeneous("x", 3, Interconnect::noc_for_tiles(3)).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        let m = sys.run(50, 10_000_000).unwrap();
        assert!(m.steady_throughput() > 0.0);
        assert!(m.steady_throughput() >= mapped.analysis.as_f64() * (1.0 - 1e-9));
    }

    #[test]
    fn ca_platform_outperforms_plain_for_big_tokens() {
        let app = pipeline_app(&[100, 100], 512);
        let arch_p = Architecture::homogeneous("p", 2, Interconnect::fsl()).unwrap();
        let arch_c = Architecture::homogeneous_with_ca("c", 2, Interconnect::fsl()).unwrap();
        let mp = map_application(&app, &arch_p, &MapOptions::default()).unwrap();
        let mc = map_application(&app, &arch_c, &MapOptions::default()).unwrap();
        let tp = WcetTimes::new(mp.mapping.binding.wcet_of.clone());
        let tc = WcetTimes::new(mc.mapping.binding.wcet_of.clone());
        let m_p = System::new(app.graph(), &mp.mapping, &arch_p, &tp)
            .unwrap()
            .run(60, 50_000_000)
            .unwrap();
        let m_c = System::new(app.graph(), &mc.mapping, &arch_c, &tc)
            .unwrap()
            .run(60, 50_000_000)
            .unwrap();
        assert!(
            m_c.steady_throughput() > m_p.steady_throughput(),
            "CA {} <= plain {}",
            m_c.steady_throughput(),
            m_p.steady_throughput()
        );
    }

    #[test]
    fn deadlock_reported_for_broken_mapping() {
        // Zero-capacity local buffer on a single tile: the producer can
        // never fire, nothing else is active -> hard deadlock.
        let app = pipeline_app(&[10, 10], 4);
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let mut mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        for c in &mut mapped.mapping.channels {
            c.local_capacity = 0;
        }
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        assert!(matches!(sys.run(10, 1_000_000), Err(SimError::Deadlock(_))));
    }

    #[test]
    fn starved_receiver_hits_cycle_limit_not_phantom_progress() {
        // No destination buffer space: the receiver never de-serializes, so
        // no iteration ever completes even though the sender stays busy.
        let app = pipeline_app(&[10, 10], 4);
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let mut mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        for c in &mut mapped.mapping.channels {
            c.alpha_dst = 0;
        }
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        match sys.run(10, 100_000) {
            Err(SimError::CycleLimit(_)) | Err(SimError::Deadlock(_)) => {}
            other => panic!("expected starvation, got {other:?}"),
        }
    }

    /// Two applications admitted onto shared tiles: the union graph is
    /// disconnected, so the simulator takes the members' concatenated
    /// repetition vectors, runs both apps concurrently under the
    /// concatenated static orders, and the measured lockstep throughput
    /// must meet the shared-analysis bound.
    #[test]
    fn multi_app_union_meets_shared_bound() {
        use mamps_mapping::multi::{map_use_case, UseCase};

        let mk = |name: &str, wcets: &[u64]| {
            let n = wcets.len();
            let mut b = SdfGraphBuilder::new(name);
            let ids: Vec<_> = (0..n)
                .map(|i| b.add_actor(format!("{name}{i}"), 1))
                .collect();
            for i in 0..n - 1 {
                b.add_channel_full(format!("{name}e{i}"), ids[i], 1, ids[i + 1], 1, 0, 16);
            }
            let g = b.build().unwrap();
            let mut mb = HomogeneousModelBuilder::new("microblaze");
            for (i, &w) in wcets.iter().enumerate() {
                mb.actor(format!("{name}{i}"), w, 4096, 512);
            }
            mb.finish(g, None).unwrap()
        };
        let uc = UseCase::new(vec![mk("u", &[100, 100]), mk("v", &[40, 40, 40])]).unwrap();
        let arch = Architecture::homogeneous("x", 2, Interconnect::fsl()).unwrap();
        let r = map_use_case(&uc, &arch, &MapOptions::default());
        assert!(r.fully_admitted(), "rejections: {:?}", r.rejected);
        let group = &r.groups[0];
        assert_eq!(group.members.len(), 2, "apps must share tiles");

        let times = WcetTimes::new(group.mapping.binding.wcet_of.clone());
        let sys = System::new_with_repetitions(
            &group.graph,
            &group.mapping,
            &arch,
            &times,
            group.combined_repetitions(),
        )
        .unwrap();
        let m = sys.run(100, 100_000_000).unwrap();
        let bound = group.analysis.as_f64();
        let measured = m.steady_throughput();
        assert!(
            measured >= bound * (1.0 - 1e-9),
            "measured {measured} below shared bound {bound}"
        );
        // Every member progresses at least at the lockstep rate.
        for i in 0..group.members.len() {
            assert!(group.member_iterations(i, &m.firings) >= m.iteration_times.len() as u64);
        }
    }

    #[test]
    fn explicit_repetitions_validated() {
        let app = pipeline_app(&[10, 10], 4);
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        assert!(matches!(
            System::new_with_repetitions(app.graph(), &mapped.mapping, &arch, &times, vec![1]),
            Err(SimError::Build(_))
        ));
        assert!(matches!(
            System::new_with_repetitions(app.graph(), &mapped.mapping, &arch, &times, vec![1, 0]),
            Err(SimError::Build(_))
        ));
        // A valid explicit vector behaves exactly like `new`.
        let m =
            System::new_with_repetitions(app.graph(), &mapped.mapping, &arch, &times, vec![1, 1])
                .unwrap()
                .run(50, 1_000_000)
                .unwrap();
        assert!(m.steady_throughput() > 0.0);
    }

    #[test]
    fn cycle_limit_enforced() {
        let app = pipeline_app(&[1000, 1000], 4);
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let sys = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
        assert!(matches!(
            sys.run(1000, 5000),
            Err(SimError::CycleLimit(5000))
        ));
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("event".parse::<Engine>().unwrap(), Engine::Event);
        assert_eq!("lockstep".parse::<Engine>().unwrap(), Engine::Lockstep);
        assert_eq!("reference".parse::<Engine>().unwrap(), Engine::Lockstep);
        assert!("cycle".parse::<Engine>().is_err());
        assert_eq!(Engine::Event.to_string(), "event");
        assert_eq!(Engine::Lockstep.to_string(), "lockstep");
        assert_eq!(Engine::default(), Engine::Event);
    }

    /// Both engines must agree bit-for-bit: identical measurements (times,
    /// firings, busy cycles), identical traces, and identical error
    /// verdicts. This is the in-crate counterpart of the corpus-wide
    /// `scripts/sim_equiv.sh` CI gate and the `engine_equiv` proptest.
    #[test]
    fn engines_agree_bit_for_bit() {
        for (wcets, tok, tiles, noc) in [
            (vec![30u64, 70], 4u64, 1usize, false),
            (vec![100, 100], 64, 2, false),
            (vec![60, 60, 60], 32, 3, true),
            (vec![25, 90, 40], 200, 4, true),
        ] {
            let app = pipeline_app(&wcets, tok);
            let ic = if noc {
                Interconnect::noc_for_tiles(tiles)
            } else {
                Interconnect::fsl()
            };
            let arch = Architecture::homogeneous("x", tiles, ic).unwrap();
            let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
            let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
            let run = |engine| {
                System::new(app.graph(), &mapped.mapping, &arch, &times)
                    .unwrap()
                    .with_engine(engine)
                    .run_traced(60, 50_000_000, 10_000)
                    .unwrap()
            };
            let (me, te) = run(Engine::Event);
            let (ml, tl) = run(Engine::Lockstep);
            assert_eq!(me, ml, "measurements diverge for {wcets:?}/{tok}/{tiles}");
            assert_eq!(te, tl, "traces diverge for {wcets:?}/{tok}/{tiles}");
        }
    }

    /// Error verdicts agree too: same variant, same message.
    #[test]
    fn engines_agree_on_errors() {
        let app = pipeline_app(&[10, 10], 4);
        let arch = Architecture::homogeneous("x", 1, Interconnect::fsl()).unwrap();
        let mut mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        for c in &mut mapped.mapping.channels {
            c.local_capacity = 0;
        }
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
        let run = |engine| {
            System::new(app.graph(), &mapped.mapping, &arch, &times)
                .unwrap()
                .with_engine(engine)
                .run(10, 1_000_000)
                .unwrap_err()
        };
        assert_eq!(run(Engine::Event), run(Engine::Lockstep));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::exec_time::WcetTimes;
    use crate::trace::{render_gantt, render_trace};
    use mamps_mapping::flow::{map_application, MapOptions};
    use mamps_platform::interconnect::Interconnect;
    use mamps_sdf::graph::SdfGraphBuilder;
    use mamps_sdf::model::HomogeneousModelBuilder;

    #[test]
    fn traced_run_matches_untraced_and_renders() {
        let mut b = SdfGraphBuilder::new("t");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel_full("e", x, 1, y, 1, 0, 16);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 40, 2048, 256).actor("y", 70, 2048, 256);
        let app = mb.finish(g, None).unwrap();
        let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
        let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
        let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());

        let plain = System::new(app.graph(), &mapped.mapping, &arch, &times)
            .unwrap()
            .run(50, 10_000_000)
            .unwrap();
        let (traced, events) = System::new(app.graph(), &mapped.mapping, &arch, &times)
            .unwrap()
            .run_traced(50, 10_000_000, 500)
            .unwrap();
        assert_eq!(plain.steady_throughput(), traced.steady_throughput());
        assert!(!events.is_empty());
        assert!(events.len() <= 500);
        assert!(events.iter().all(|e| e.end >= e.start));
        let gantt = render_gantt(&events, 1000, 64);
        assert!(gantt.contains("PE tile"));
        let text = render_trace(&events);
        assert_eq!(text.lines().count(), events.len());
        assert!(text.contains("fire"));
    }
}
