//! `sim::reference` — the original lockstep execution engine, kept intact
//! as the bit-exactness oracle for the discrete-event kernel
//! ([`crate::event`]), exactly as `state_space::reference` anchors the
//! optimized throughput analysis.
//!
//! Each step advances the clock to the next interesting instant (earliest
//! worker completion or word delivery), applies all deliveries, then
//! *rescans every worker* — once to complete finished operations and in a
//! fixpoint loop to start new ones. That rescan is `O(workers)` per
//! instant, which is exactly the cost the event kernel removes; keeping
//! this engine verbatim (its own start/complete logic, its own delivery
//! queue — no code shared with the kernel beyond the passive
//! `SimState`) is what makes the equivalence tests and CI's
//! `scripts/sim_equiv.sh` a genuine cross-check rather than a tautology.

use std::collections::BinaryHeap;

use mamps_mapping::mapping::ScheduleEntry;
use mamps_sdf::graph::{ActorId, ChannelId};

use crate::fifo::ChannelState;
use crate::processor::{Op, WorkerKind};
use crate::system::SimState;
use crate::trace::{Measurement, SimError};

/// Runs `st` with the lockstep reference engine.
pub(crate) fn run(
    st: &mut SimState<'_>,
    iterations: u64,
    max_cycles: u64,
) -> Result<Measurement, SimError> {
    Lockstep {
        st,
        events: BinaryHeap::new(),
    }
    .run_inner(iterations, max_cycles)
}

/// The lockstep engine: the shared system state plus the in-flight word
/// delivery queue `(time, channel idx)`.
struct Lockstep<'s, 'a> {
    st: &'s mut SimState<'a>,
    events: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
}

impl Lockstep<'_, '_> {
    fn run_inner(&mut self, iterations: u64, max_cycles: u64) -> Result<Measurement, SimError> {
        while (self.st.iteration_times.len() as u64) < iterations {
            // Fixpoint: start every worker that can start at `now`.
            loop {
                let mut progressed = false;
                for w in 0..self.st.workers.len() {
                    if self.st.workers[w].is_idle() && self.try_start(w) {
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            if (self.st.iteration_times.len() as u64) >= iterations {
                break;
            }
            // Advance to the next event: worker completion or word delivery.
            let next_worker = self
                .st
                .workers
                .iter()
                .filter(|w| !w.is_idle())
                .map(|w| w.busy_until)
                .min();
            let next_delivery = self.events.peek().map(|&std::cmp::Reverse((t, _))| t);
            let next = match (next_worker, next_delivery) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    return Err(SimError::Deadlock(format!(
                        "no progress at cycle {} after {} iterations",
                        self.st.now,
                        self.st.iteration_times.len()
                    )));
                }
            };
            if next > max_cycles {
                return Err(SimError::CycleLimit(max_cycles));
            }
            self.st.now = next;
            // Deliveries first (they can unblock completions at equal time
            // either way; effects at the same instant are order-insensitive
            // because all pools only grow here).
            while let Some(&std::cmp::Reverse((t, cid))) = self.events.peek() {
                if t != self.st.now {
                    break;
                }
                self.events.pop();
                if let ChannelState::Cross(c) = &mut self.st.channels[cid] {
                    c.deliver_word();
                }
            }
            for w in 0..self.st.workers.len() {
                if !self.st.workers[w].is_idle() && self.st.workers[w].busy_until == self.st.now {
                    self.complete(w);
                }
            }
        }
        Ok(self.st.measurement())
    }

    /// Attempts to start the next operation of worker `w` at `now`.
    fn try_start(&mut self, w: usize) -> bool {
        match self.st.workers[w].kind {
            WorkerKind::Pe { tile } => {
                let round = &self.st.mapping.schedules[tile];
                let pc = self.st.workers[w].pc;
                let entry = round[pc];
                match entry {
                    ScheduleEntry::Fire { actor, .. } => self.try_fire(w, actor),
                    ScheduleEntry::Send { channel, .. } => self.try_send_word(w, channel),
                    ScheduleEntry::Receive { channel, .. } => self.try_recv_word(w, channel),
                }
            }
            WorkerKind::EngineSend { channel } => self.try_send_word(w, channel),
            WorkerKind::EngineRecv { channel } => self.try_recv_word(w, channel),
            WorkerKind::Ip { actor } => self.try_fire(w, actor),
        }
    }

    /// Firing admission: checks and consumes start-time resources.
    fn try_fire(&mut self, w: usize, actor: ActorId) -> bool {
        // Check every endpoint first (no partial consumption).
        for &cid in self.st.graph.incoming(actor) {
            let ok = match &self.st.channels[cid.0] {
                ChannelState::SelfEdge(s) => s.tokens >= s.cons,
                ChannelState::Local(l) => l.tokens >= l.cons,
                ChannelState::Cross(c) => c.assembled >= c.cons,
            };
            if !ok {
                return false;
            }
        }
        for &cid in self.st.graph.outgoing(actor) {
            let ok = match &self.st.channels[cid.0] {
                ChannelState::SelfEdge(_) => true, // checked as incoming
                ChannelState::Local(l) => l.space >= l.prod,
                ChannelState::Cross(c) => c.src_space >= c.prod,
            };
            if !ok {
                return false;
            }
        }
        // Consume.
        for &cid in self.st.graph.incoming(actor) {
            match &mut self.st.channels[cid.0] {
                ChannelState::SelfEdge(s) => s.tokens -= s.cons,
                ChannelState::Local(l) => l.tokens -= l.cons,
                ChannelState::Cross(c) => c.assembled -= c.cons,
            }
        }
        for &cid in self.st.graph.outgoing(actor) {
            match &mut self.st.channels[cid.0] {
                ChannelState::SelfEdge(_) => {}
                ChannelState::Local(l) => l.space -= l.prod,
                ChannelState::Cross(c) => c.src_space -= c.prod,
            }
        }
        let duration =
            self.st.times.cycles(actor, self.st.firings[actor.0]) + self.st.fire_overhead[actor.0];
        let now = self.st.now;
        let worker = &mut self.st.workers[w];
        worker.op = Some(Op::Fire { actor });
        worker.op_started = now;
        worker.busy_until = now + duration;
        worker.busy_cycles += duration;
        true
    }

    fn try_send_word(&mut self, w: usize, channel: ChannelId) -> bool {
        let c = match &mut self.st.channels[channel.0] {
            ChannelState::Cross(c) => c,
            _ => return false,
        };
        if c.send_words == 0 || c.conn.credits == 0 {
            return false;
        }
        c.send_words -= 1;
        c.conn.credits -= 1;
        let dur = c.ser_word;
        let now = self.st.now;
        let worker = &mut self.st.workers[w];
        worker.op = Some(Op::SendWord { channel });
        worker.op_started = now;
        worker.busy_until = now + dur;
        worker.busy_cycles += dur;
        true
    }

    fn try_recv_word(&mut self, w: usize, channel: ChannelId) -> bool {
        let c = match &mut self.st.channels[channel.0] {
            ChannelState::Cross(c) => c,
            _ => return false,
        };
        if c.conn.delivered == 0 || c.dst_word_space == 0 {
            return false;
        }
        c.conn.delivered -= 1;
        c.dst_word_space -= 1;
        let dur = c.des_word;
        let now = self.st.now;
        let worker = &mut self.st.workers[w];
        worker.op = Some(Op::RecvWord { channel });
        worker.op_started = now;
        worker.busy_until = now + dur;
        worker.busy_cycles += dur;
        true
    }

    /// Applies completion effects of worker `w` at `now`.
    fn complete(&mut self, w: usize) {
        let op = self.st.workers[w].op.take().expect("busy workers have ops");
        self.st.record_completion(w, op);
        match op {
            Op::Fire { actor } => {
                for &cid in self.st.graph.outgoing(actor) {
                    match &mut self.st.channels[cid.0] {
                        ChannelState::SelfEdge(s) => s.tokens += s.prod,
                        ChannelState::Local(l) => l.tokens += l.prod,
                        ChannelState::Cross(c) => c.send_words += c.prod * c.n_words,
                    }
                }
                for &cid in self.st.graph.incoming(actor) {
                    match &mut self.st.channels[cid.0] {
                        ChannelState::SelfEdge(_) => {}
                        ChannelState::Local(l) => l.space += l.cons,
                        ChannelState::Cross(c) => c.dst_word_space += c.cons * c.n_words,
                    }
                }
                self.st.firings[actor.0] += 1;
                // An iteration completes when the slowest actor (relative to
                // its repetition count) crosses the next multiple.
                let completed = self
                    .st
                    .firings
                    .iter()
                    .zip(&self.st.q)
                    .map(|(&f, &q)| f / q)
                    .min()
                    .unwrap_or(0);
                while (self.st.iteration_times.len() as u64) < completed {
                    self.st.iteration_times.push(self.st.now);
                }
            }
            Op::SendWord { channel } => {
                if let ChannelState::Cross(c) = &mut self.st.channels[channel.0] {
                    let delivery = c.conn.push_word(self.st.now);
                    self.events.push(std::cmp::Reverse((delivery, channel.0)));
                    c.srel_progress += 1;
                    if c.srel_progress == c.n_words {
                        c.srel_progress = 0;
                        c.src_space += 1;
                    }
                }
            }
            Op::RecvWord { channel } => {
                if let ChannelState::Cross(c) = &mut self.st.channels[channel.0] {
                    c.asm_progress += 1;
                    if c.asm_progress == c.n_words {
                        c.asm_progress = 0;
                        c.assembled += 1;
                    }
                }
            }
        }
        // Advance PE schedule position.
        if let WorkerKind::Pe { tile } = self.st.workers[w].kind {
            let round = &self.st.mapping.schedules[tile];
            let entry = round[self.st.workers[w].pc];
            let total_units = match entry {
                ScheduleEntry::Fire { reps, .. } => reps,
                ScheduleEntry::Send { channel, reps } => {
                    let n = match &self.st.channels[channel.0] {
                        ChannelState::Cross(c) => c.n_words,
                        _ => 1,
                    };
                    reps * n
                }
                ScheduleEntry::Receive { channel, reps } => {
                    let n = match &self.st.channels[channel.0] {
                        ChannelState::Cross(c) => c.n_words,
                        _ => 1,
                    };
                    reps * n
                }
            };
            let worker = &mut self.st.workers[w];
            worker.done_in_entry += 1;
            if worker.done_in_entry >= total_units {
                worker.done_in_entry = 0;
                worker.pc = (worker.pc + 1) % round.len();
            }
        }
    }
}
