//! Per-firing execution-time providers.
//!
//! The analysis uses WCETs; the simulated platform executes *actual* firing
//! times — on the real FPGA these come from the actor code and its data. The
//! paper's Fig. 6 compares three quantities built from the same machinery:
//!
//! * **worst-case analysis** — WCET-based SDF3 bound;
//! * **expected** — the analysis re-run with measured execution times;
//! * **measured** — the platform running actual per-firing times.
//!
//! [`FiringTimes`] abstracts the time source so the simulator serves both
//! the "measured" role (per-firing traces from the MJPEG decoder) and
//! back-to-back validation (WCET in, bound out — tightness check).

use mamps_sdf::graph::ActorId;

/// Source of per-firing execution times, in cycles.
pub trait FiringTimes {
    /// Execution time of the `firing`-th firing (0-based, global count) of
    /// `actor`.
    fn cycles(&self, actor: ActorId, firing: u64) -> u64;
}

/// Constant WCET per actor — makes the simulator reproduce the worst case.
#[derive(Debug, Clone)]
pub struct WcetTimes {
    wcets: Vec<u64>,
}

impl WcetTimes {
    /// Creates the provider from per-actor WCETs (indexed by actor id).
    pub fn new(wcets: Vec<u64>) -> WcetTimes {
        WcetTimes { wcets }
    }
}

impl FiringTimes for WcetTimes {
    fn cycles(&self, actor: ActorId, _firing: u64) -> u64 {
        self.wcets[actor.0]
    }
}

/// Per-firing traces, cycled when the simulation runs longer than the trace
/// (a periodic input sequence, as in the MJPEG test sequences).
#[derive(Debug, Clone)]
pub struct TraceTimes {
    traces: Vec<Vec<u64>>,
    fallback: Vec<u64>,
}

impl TraceTimes {
    /// Creates the provider from per-actor firing traces plus a fallback
    /// (typically the WCET) for actors with empty traces.
    pub fn new(traces: Vec<Vec<u64>>, fallback: Vec<u64>) -> TraceTimes {
        TraceTimes { traces, fallback }
    }

    /// The mean execution time per actor (used to build the "expected"
    /// analysis graph), rounded up to stay conservative in the comparison.
    pub fn mean_cycles(&self, actor: ActorId) -> u64 {
        let t = &self.traces[actor.0];
        if t.is_empty() {
            self.fallback[actor.0]
        } else {
            let sum: u128 = t.iter().map(|&x| x as u128).sum();
            (sum.div_ceil(t.len() as u128)) as u64
        }
    }

    /// The maximum observed execution time per actor.
    pub fn max_cycles(&self, actor: ActorId) -> u64 {
        let t = &self.traces[actor.0];
        t.iter().copied().max().unwrap_or(self.fallback[actor.0])
    }
}

impl FiringTimes for TraceTimes {
    fn cycles(&self, actor: ActorId, firing: u64) -> u64 {
        let t = &self.traces[actor.0];
        if t.is_empty() {
            self.fallback[actor.0]
        } else {
            t[(firing % t.len() as u64) as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcet_is_constant() {
        let w = WcetTimes::new(vec![5, 7]);
        assert_eq!(w.cycles(ActorId(0), 0), 5);
        assert_eq!(w.cycles(ActorId(0), 99), 5);
        assert_eq!(w.cycles(ActorId(1), 3), 7);
    }

    #[test]
    fn traces_cycle() {
        let t = TraceTimes::new(vec![vec![1, 2, 3]], vec![9]);
        assert_eq!(t.cycles(ActorId(0), 0), 1);
        assert_eq!(t.cycles(ActorId(0), 4), 2);
        assert_eq!(t.cycles(ActorId(0), 5), 3);
    }

    #[test]
    fn empty_trace_falls_back() {
        let t = TraceTimes::new(vec![vec![]], vec![42]);
        assert_eq!(t.cycles(ActorId(0), 7), 42);
        assert_eq!(t.mean_cycles(ActorId(0)), 42);
    }

    #[test]
    fn statistics() {
        let t = TraceTimes::new(vec![vec![10, 20, 31]], vec![0]);
        assert_eq!(t.mean_cycles(ActorId(0)), 21); // ceil(61/3)
        assert_eq!(t.max_cycles(ActorId(0)), 31);
    }
}
