//! `sim::event` — the discrete-event execution kernel.
//!
//! The lockstep reference engine ([`crate::reference`]) rescans every
//! worker at every interesting instant, which is `O(workers)` per instant
//! and makes large meshes (the `mesh_scaling` bench) interactively
//! unusable. This kernel replaces the rescan with a sleeping/waking
//! scheme:
//!
//! * Every active entity — each tile PE, CA/NI engine, hardware-IP actor
//!   (the [`Worker`]s) and each NoC/FSL link (`LinkComponent`) — is a
//!   [`Component`]: it knows when it next has something to do
//!   ([`Component::next_tick`]) and what happens then
//!   ([`Component::advance`]).
//! * A binary-heap event queue keyed by `(next_tick, component_id)`
//!   drives the system: links get ids `0..C` (one per channel) and
//!   workers `C..C+W`, so at equal times word deliveries apply before
//!   worker completions and completions apply in worker-index order —
//!   the reference engine's exact order.
//! * Idle components hold no queue entry at all: a blocked worker sleeps
//!   until a *wake* — a state change on a channel it watches (token
//!   arrival, freed space, returned credit) or its own completion (its
//!   schedule position advanced). Each channel's watcher set is the at
//!   most four workers whose admission can depend on it: the producer's
//!   and consumer's firing workers and, for cross-tile channels, the
//!   serializing and de-serializing workers. Wakes are conservative
//!   (spurious wakes just fail admission again); completeness is what
//!   guarantees equivalence with the reference's exhaustive rescan.
//!
//! Channel FIFOs themselves are passive state ([`crate::fifo`]): they
//! change only as an effect of worker/link events, so they never appear
//! in the queue — they are reached through the wake lists instead.

use std::collections::{BinaryHeap, VecDeque};

use mamps_mapping::mapping::ScheduleEntry;
use mamps_sdf::graph::{ActorId, ChannelId};

use crate::fifo::ChannelState;
use crate::processor::{Op, Worker, WorkerKind};
use crate::system::SimState;
use crate::trace::{Measurement, SimError};

/// A schedulable unit of the event kernel: something that knows when it
/// next has an effect due and can apply it when the clock reaches that
/// instant.
pub trait Component {
    /// The time of this component's next scheduled effect, if any. Idle
    /// components return `None` and hold no event-queue entry.
    fn next_tick(&self) -> Option<u64>;

    /// Advances the component to `now`, returning the effect that is due
    /// (or `None` when nothing is due at `now` — a spurious pop, which
    /// the kernel treats as a no-op). The kernel commits the returned
    /// effect against the shared `SimState`.
    fn advance(&mut self, now: u64) -> Option<Effect>;
}

/// The effect a component applies when the kernel advances it. The
/// affected channel or worker is identified by the component's queue id,
/// so the effect itself only names the kind of state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// A word reached the receiving NI: its flow-control credit returns
    /// to the sender and the word becomes available for de-serialization.
    Deliver,
    /// The component's current operation completes (firing effects,
    /// serialization progress, schedule-position advance).
    Complete,
}

/// One channel's interconnect link as a component: the delivery times of
/// its in-flight words. [`crate::noc_sim::Connection::push_word`]
/// guarantees per-connection delivery times are non-decreasing, so a
/// plain FIFO queue suffices.
struct LinkComponent {
    pending: VecDeque<u64>,
}

impl Component for LinkComponent {
    fn next_tick(&self) -> Option<u64> {
        self.pending.front().copied()
    }

    fn advance(&mut self, now: u64) -> Option<Effect> {
        if self.pending.front() == Some(&now) {
            self.pending.pop_front();
            Some(Effect::Deliver)
        } else {
            None
        }
    }
}

impl Component for Worker {
    fn next_tick(&self) -> Option<u64> {
        Worker::next_tick(self)
    }

    fn advance(&mut self, now: u64) -> Option<Effect> {
        if !self.is_idle() && self.busy_until == now {
            Some(Effect::Complete)
        } else {
            None
        }
    }
}

/// Runs `st` with the event-driven kernel.
pub(crate) fn run(
    st: &mut SimState<'_>,
    iterations: u64,
    max_cycles: u64,
) -> Result<Measurement, SimError> {
    EventKernel::new(st).run_inner(iterations, max_cycles)
}

struct EventKernel<'s, 'a> {
    st: &'s mut SimState<'a>,
    /// Link components, indexed by channel id (empty for non-cross
    /// channels, which have no interconnect link).
    links: Vec<LinkComponent>,
    /// Event queue: `Reverse((next_tick, component_id))` with links at
    /// ids `0..C` and workers at `C..C+W`. Exactly one entry per
    /// outstanding worker operation and per in-flight word, so no entry
    /// is ever stale.
    queue: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    /// Per channel: the workers whose admission can depend on its state.
    watchers: Vec<Vec<usize>>,
    /// Wake flags and list (sorted before use) of workers to re-try.
    woken: Vec<bool>,
    wake_list: Vec<usize>,
}

impl<'s, 'a> EventKernel<'s, 'a> {
    fn new(st: &'s mut SimState<'a>) -> EventKernel<'s, 'a> {
        // Locate each actor's firing worker and each tile's PE so the
        // watcher sets can be assembled per channel.
        let mut pe_of_tile = vec![None; st.arch.tile_count()];
        let mut ip_of_actor = vec![None; st.graph.actor_count()];
        let mut engine_send = vec![None; st.channels.len()];
        let mut engine_recv = vec![None; st.channels.len()];
        for (w, worker) in st.workers.iter().enumerate() {
            match worker.kind {
                WorkerKind::Pe { tile } => pe_of_tile[tile] = Some(w),
                WorkerKind::Ip { actor } => ip_of_actor[actor.0] = Some(w),
                WorkerKind::EngineSend { channel } => engine_send[channel.0] = Some(w),
                WorkerKind::EngineRecv { channel } => engine_recv[channel.0] = Some(w),
            }
        }
        let fire_worker =
            |a: ActorId| ip_of_actor[a.0].or(pe_of_tile[st.mapping.binding.tile_of[a.0].0]);
        let mut watchers = Vec::with_capacity(st.channels.len());
        for (cid, ch) in st.graph.channels() {
            let mut ws = Vec::with_capacity(4);
            ws.extend(fire_worker(ch.src()));
            ws.extend(fire_worker(ch.dst()));
            if let ChannelState::Cross(c) = &st.channels[cid.0] {
                ws.extend(engine_send[cid.0].or(pe_of_tile[c.src_tile.0]));
                ws.extend(engine_recv[cid.0].or(pe_of_tile[c.dst_tile.0]));
            }
            ws.sort_unstable();
            ws.dedup();
            watchers.push(ws);
        }
        let links = (0..st.channels.len())
            .map(|_| LinkComponent {
                pending: VecDeque::new(),
            })
            .collect();
        // Every worker starts woken: cycle 0 admission is tried for all.
        let n = st.workers.len();
        EventKernel {
            st,
            links,
            queue: BinaryHeap::new(),
            watchers,
            woken: vec![true; n],
            wake_list: (0..n).collect(),
        }
    }

    fn run_inner(&mut self, iterations: u64, max_cycles: u64) -> Result<Measurement, SimError> {
        let n_channels = self.st.channels.len();
        loop {
            if (self.st.iteration_times.len() as u64) >= iterations {
                break;
            }
            self.start_phase();
            // Advance to the next event, or report the verdict.
            let next = match self.queue.peek() {
                Some(&std::cmp::Reverse((t, _))) => t,
                None => {
                    return Err(SimError::Deadlock(format!(
                        "no progress at cycle {} after {} iterations",
                        self.st.now,
                        self.st.iteration_times.len()
                    )));
                }
            };
            if next > max_cycles {
                return Err(SimError::CycleLimit(max_cycles));
            }
            self.st.now = next;
            // Apply the whole batch at `next`: the heap pops deliveries
            // (ids < C) before completions, completions in worker order.
            while let Some(&std::cmp::Reverse((t, id))) = self.queue.peek() {
                if t != next {
                    break;
                }
                self.queue.pop();
                if id < n_channels {
                    let due = self.links[id].advance(t);
                    debug_assert_eq!(due, Some(Effect::Deliver), "stale link event");
                    if due.is_some() {
                        if let ChannelState::Cross(c) = &mut self.st.channels[id] {
                            c.deliver_word();
                        }
                        self.wake_watchers(id);
                    }
                } else {
                    let w = id - n_channels;
                    let due = self.st.workers[w].advance(t);
                    debug_assert_eq!(due, Some(Effect::Complete), "stale worker event");
                    if due.is_some() {
                        self.complete(w);
                    }
                }
            }
        }
        Ok(self.st.measurement())
    }

    /// Tries to start every woken worker, in ascending worker index — the
    /// reference engine's scan order. One pass suffices: starting an
    /// operation only *consumes* channel pools, so no start can enable
    /// another start at the same instant (pools grow only in deliveries
    /// and completions, which wake their watchers for the next pass).
    fn start_phase(&mut self) {
        self.wake_list.sort_unstable();
        let mut i = 0;
        while i < self.wake_list.len() {
            let w = self.wake_list[i];
            i += 1;
            self.woken[w] = false;
            if self.st.workers[w].is_idle() {
                self.try_start(w);
            }
        }
        self.wake_list.clear();
    }

    fn wake(&mut self, w: usize) {
        if !self.woken[w] {
            self.woken[w] = true;
            self.wake_list.push(w);
        }
    }

    fn wake_watchers(&mut self, cid: usize) {
        for i in 0..self.watchers[cid].len() {
            let w = self.watchers[cid][i];
            self.wake(w);
        }
    }

    /// Schedules worker `w`'s just-started operation in the queue.
    fn schedule_completion(&mut self, w: usize) {
        let t = self.st.workers[w]
            .next_tick()
            .expect("just-started workers are busy");
        let n_channels = self.st.channels.len();
        self.queue.push(std::cmp::Reverse((t, n_channels + w)));
    }

    /// Attempts to start the next operation of worker `w` at `now`.
    fn try_start(&mut self, w: usize) -> bool {
        match self.st.workers[w].kind {
            WorkerKind::Pe { tile } => {
                let round = &self.st.mapping.schedules[tile];
                let pc = self.st.workers[w].pc;
                let entry = round[pc];
                match entry {
                    ScheduleEntry::Fire { actor, .. } => self.try_fire(w, actor),
                    ScheduleEntry::Send { channel, .. } => self.try_send_word(w, channel),
                    ScheduleEntry::Receive { channel, .. } => self.try_recv_word(w, channel),
                }
            }
            WorkerKind::EngineSend { channel } => self.try_send_word(w, channel),
            WorkerKind::EngineRecv { channel } => self.try_recv_word(w, channel),
            WorkerKind::Ip { actor } => self.try_fire(w, actor),
        }
    }

    /// Firing admission: checks and consumes start-time resources.
    fn try_fire(&mut self, w: usize, actor: ActorId) -> bool {
        // Check every endpoint first (no partial consumption).
        for &cid in self.st.graph.incoming(actor) {
            let ok = match &self.st.channels[cid.0] {
                ChannelState::SelfEdge(s) => s.tokens >= s.cons,
                ChannelState::Local(l) => l.tokens >= l.cons,
                ChannelState::Cross(c) => c.assembled >= c.cons,
            };
            if !ok {
                return false;
            }
        }
        for &cid in self.st.graph.outgoing(actor) {
            let ok = match &self.st.channels[cid.0] {
                ChannelState::SelfEdge(_) => true, // checked as incoming
                ChannelState::Local(l) => l.space >= l.prod,
                ChannelState::Cross(c) => c.src_space >= c.prod,
            };
            if !ok {
                return false;
            }
        }
        // Consume.
        for &cid in self.st.graph.incoming(actor) {
            match &mut self.st.channels[cid.0] {
                ChannelState::SelfEdge(s) => s.tokens -= s.cons,
                ChannelState::Local(l) => l.tokens -= l.cons,
                ChannelState::Cross(c) => c.assembled -= c.cons,
            }
        }
        for &cid in self.st.graph.outgoing(actor) {
            match &mut self.st.channels[cid.0] {
                ChannelState::SelfEdge(_) => {}
                ChannelState::Local(l) => l.space -= l.prod,
                ChannelState::Cross(c) => c.src_space -= c.prod,
            }
        }
        let duration =
            self.st.times.cycles(actor, self.st.firings[actor.0]) + self.st.fire_overhead[actor.0];
        let now = self.st.now;
        let worker = &mut self.st.workers[w];
        worker.op = Some(Op::Fire { actor });
        worker.op_started = now;
        worker.busy_until = now + duration;
        worker.busy_cycles += duration;
        self.schedule_completion(w);
        true
    }

    fn try_send_word(&mut self, w: usize, channel: ChannelId) -> bool {
        let c = match &mut self.st.channels[channel.0] {
            ChannelState::Cross(c) => c,
            _ => return false,
        };
        if c.send_words == 0 || c.conn.credits == 0 {
            return false;
        }
        c.send_words -= 1;
        c.conn.credits -= 1;
        let dur = c.ser_word;
        let now = self.st.now;
        let worker = &mut self.st.workers[w];
        worker.op = Some(Op::SendWord { channel });
        worker.op_started = now;
        worker.busy_until = now + dur;
        worker.busy_cycles += dur;
        self.schedule_completion(w);
        true
    }

    fn try_recv_word(&mut self, w: usize, channel: ChannelId) -> bool {
        let c = match &mut self.st.channels[channel.0] {
            ChannelState::Cross(c) => c,
            _ => return false,
        };
        if c.conn.delivered == 0 || c.dst_word_space == 0 {
            return false;
        }
        c.conn.delivered -= 1;
        c.dst_word_space -= 1;
        let dur = c.des_word;
        let now = self.st.now;
        let worker = &mut self.st.workers[w];
        worker.op = Some(Op::RecvWord { channel });
        worker.op_started = now;
        worker.busy_until = now + dur;
        worker.busy_cycles += dur;
        self.schedule_completion(w);
        true
    }

    /// Applies completion effects of worker `w` at `now`, waking the
    /// watchers of every channel whose pools grew (and `w` itself — its
    /// schedule position advanced, so its next entry may be admissible).
    fn complete(&mut self, w: usize) {
        let op = self.st.workers[w].op.take().expect("busy workers have ops");
        self.st.record_completion(w, op);
        match op {
            Op::Fire { actor } => {
                for &cid in self.st.graph.outgoing(actor) {
                    match &mut self.st.channels[cid.0] {
                        ChannelState::SelfEdge(s) => s.tokens += s.prod,
                        ChannelState::Local(l) => l.tokens += l.prod,
                        ChannelState::Cross(c) => c.send_words += c.prod * c.n_words,
                    }
                }
                for &cid in self.st.graph.incoming(actor) {
                    match &mut self.st.channels[cid.0] {
                        ChannelState::SelfEdge(_) => {}
                        ChannelState::Local(l) => l.space += l.cons,
                        ChannelState::Cross(c) => c.dst_word_space += c.cons * c.n_words,
                    }
                }
                self.st.firings[actor.0] += 1;
                // An iteration completes when the slowest actor (relative to
                // its repetition count) crosses the next multiple.
                let completed = self
                    .st
                    .firings
                    .iter()
                    .zip(&self.st.q)
                    .map(|(&f, &q)| f / q)
                    .min()
                    .unwrap_or(0);
                while (self.st.iteration_times.len() as u64) < completed {
                    self.st.iteration_times.push(self.st.now);
                }
                let graph = self.st.graph;
                for &cid in graph.outgoing(actor) {
                    self.wake_watchers(cid.0);
                }
                for &cid in graph.incoming(actor) {
                    self.wake_watchers(cid.0);
                }
            }
            Op::SendWord { channel } => {
                if let ChannelState::Cross(c) = &mut self.st.channels[channel.0] {
                    let delivery = c.conn.push_word(self.st.now);
                    // New in-flight word: the link component owns its
                    // delivery. push_word keeps per-connection delivery
                    // times non-decreasing, so back-of-queue is in order.
                    self.links[channel.0].pending.push_back(delivery);
                    self.queue.push(std::cmp::Reverse((delivery, channel.0)));
                    c.srel_progress += 1;
                    if c.srel_progress == c.n_words {
                        c.srel_progress = 0;
                        c.src_space += 1;
                    }
                }
                self.wake_watchers(channel.0);
            }
            Op::RecvWord { channel } => {
                if let ChannelState::Cross(c) = &mut self.st.channels[channel.0] {
                    c.asm_progress += 1;
                    if c.asm_progress == c.n_words {
                        c.asm_progress = 0;
                        c.assembled += 1;
                    }
                }
                self.wake_watchers(channel.0);
            }
        }
        self.wake(w);
        // Advance PE schedule position.
        if let WorkerKind::Pe { tile } = self.st.workers[w].kind {
            let round = &self.st.mapping.schedules[tile];
            let entry = round[self.st.workers[w].pc];
            let total_units = match entry {
                ScheduleEntry::Fire { reps, .. } => reps,
                ScheduleEntry::Send { channel, reps } => {
                    let n = match &self.st.channels[channel.0] {
                        ChannelState::Cross(c) => c.n_words,
                        _ => 1,
                    };
                    reps * n
                }
                ScheduleEntry::Receive { channel, reps } => {
                    let n = match &self.st.channels[channel.0] {
                        ChannelState::Cross(c) => c.n_words,
                        _ => 1,
                    };
                    reps * n
                }
            };
            let worker = &mut self.st.workers[w];
            worker.done_in_entry += 1;
            if worker.done_in_entry >= total_units {
                worker.done_in_entry = 0;
                worker.pc = (worker.pc + 1) % round.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_component_delivers_in_order() {
        let mut link = LinkComponent {
            pending: VecDeque::from([5, 5, 9]),
        };
        assert_eq!(link.next_tick(), Some(5));
        assert_eq!(link.advance(5), Some(Effect::Deliver));
        assert_eq!(link.advance(5), Some(Effect::Deliver));
        // Nothing due at 5 anymore: spurious pops are no-ops.
        assert_eq!(link.advance(5), None);
        assert_eq!(link.next_tick(), Some(9));
        assert_eq!(link.advance(9), Some(Effect::Deliver));
        assert_eq!(link.next_tick(), None);
    }

    #[test]
    fn worker_component_reports_completion() {
        let mut w = Worker::new(WorkerKind::Pe { tile: 0 });
        assert_eq!(Component::next_tick(&w), None);
        w.op = Some(Op::Fire { actor: ActorId(0) });
        w.busy_until = 42;
        assert_eq!(Component::next_tick(&w), Some(42));
        assert_eq!(w.advance(41), None);
        assert_eq!(w.advance(42), Some(Effect::Complete));
    }
}
