//! Channel state of the simulated platform.
//!
//! Three channel flavours exist at runtime:
//!
//! * **Self-edges** — actor state/concurrency bounds, kept as plain token
//!   counters (consumed at firing start, produced at completion).
//! * **Local channels** — both endpoints on one tile: a memory buffer with
//!   `tokens` available to the consumer and `space` available to the
//!   producer (paper §3's buffer-size restriction, operationally).
//! * **Cross-tile channels** — the full NI-to-NI path: a fragmentation
//!   queue of words awaiting serialization, the source buffer space
//!   (`alpha_src` tokens, freed as tokens finish serializing), the
//!   [`Connection`], the receive-side assembly
//!   state, and the destination buffer space (`alpha_dst` tokens tracked in
//!   word units, freed when the consumer fires).

use mamps_platform::types::TileId;

use crate::noc_sim::Connection;

/// A self-edge: plain token counter.
#[derive(Debug, Clone)]
pub struct SelfEdgeState {
    /// Tokens currently on the edge.
    pub tokens: u64,
    /// Tokens consumed per firing.
    pub cons: u64,
    /// Tokens produced per firing.
    pub prod: u64,
}

/// A channel whose endpoints share a tile.
#[derive(Debug, Clone)]
pub struct LocalChannelState {
    /// Tokens available to the consumer.
    pub tokens: u64,
    /// Free space available to the producer (capacity minus fill).
    pub space: u64,
    /// Tokens consumed per firing of the destination.
    pub cons: u64,
    /// Tokens produced per firing of the source.
    pub prod: u64,
}

/// A cross-tile channel: the operational Fig. 4 path.
#[derive(Debug, Clone)]
pub struct CrossChannelState {
    /// Words waiting to be serialized (tokens already produced, fragmented).
    pub send_words: u64,
    /// Source buffer space, in tokens (`alpha_src` pool).
    pub src_space: u64,
    /// Words serialized since the last source-space release.
    pub srel_progress: u64,
    /// The interconnect connection.
    pub conn: Connection,
    /// Words de-serialized toward the next token.
    pub asm_progress: u64,
    /// Assembled tokens available to the consumer.
    pub assembled: u64,
    /// Destination buffer space in words (`alpha_dst * n_words` pool).
    pub dst_word_space: u64,
    /// Words per token.
    pub n_words: u64,
    /// Sender per-word serialization cycles (setup amortized).
    pub ser_word: u64,
    /// Receiver per-word de-serialization cycles.
    pub des_word: u64,
    /// Tokens produced per firing of the source.
    pub prod: u64,
    /// Tokens consumed per firing of the destination.
    pub cons: u64,
    /// Sending tile.
    pub src_tile: TileId,
    /// Receiving tile.
    pub dst_tile: TileId,
    /// Serialization runs on a CA/NI engine instead of the source PE.
    pub offload_src: bool,
    /// De-serialization runs on a CA/NI engine instead of the sink PE.
    pub offload_dst: bool,
}

impl CrossChannelState {
    /// Applies the arrival of one word at the receiving NI: the flow-control
    /// credit returns to the sender and the word becomes available to the
    /// de-serializer. Shared by both engines so a delivery means exactly
    /// the same state change under either.
    pub(crate) fn deliver_word(&mut self) {
        self.conn.credits += 1;
        self.conn.delivered += 1;
    }
}

/// Runtime representation of one application channel.
#[derive(Debug, Clone)]
pub enum ChannelState {
    /// A self-edge.
    SelfEdge(SelfEdgeState),
    /// A same-tile channel.
    Local(LocalChannelState),
    /// A cross-tile channel.
    Cross(CrossChannelState),
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_platform::interconnect::CommParams;

    #[test]
    fn variants_construct() {
        let s = ChannelState::SelfEdge(SelfEdgeState {
            tokens: 1,
            cons: 1,
            prod: 1,
        });
        let l = ChannelState::Local(LocalChannelState {
            tokens: 0,
            space: 4,
            cons: 2,
            prod: 1,
        });
        let c = ChannelState::Cross(CrossChannelState {
            send_words: 0,
            src_space: 2,
            srel_progress: 0,
            conn: Connection::new(CommParams {
                w: 1,
                alpha_n: 16,
                latency: 1,
                cycles_per_word: 1,
            }),
            asm_progress: 0,
            assembled: 0,
            dst_word_space: 8,
            n_words: 4,
            ser_word: 5,
            des_word: 5,
            prod: 1,
            cons: 1,
            src_tile: TileId(0),
            dst_tile: TileId(1),
            offload_src: false,
            offload_dst: false,
        });
        assert!(matches!(s, ChannelState::SelfEdge(_)));
        assert!(matches!(l, ChannelState::Local(_)));
        assert!(matches!(c, ChannelState::Cross(_)));
    }
}
